#!/usr/bin/env bash
# Compares the last two records in BENCH_micro.json (the JSONL perf
# trajectory that scripts/bench.sh appends to) and reports per-metric
# deltas, so a PR's kernel/serving numbers are read against the previous
# run instead of eyeballed in isolation.
#
# Direction is inferred from the metric name: throughputs and speedups
# (`*_per_sec`, `*speedup*`, `relative_throughput`) are better-higher;
# timings (`*_ns`, `*_seconds`, `overhead_ns`) are better-lower. Config
# fields (shapes, thread counts, request counts) are compared only to
# warn when the two runs measured different workloads.
#
# A >10% move in the worse direction is a RED FLAG and the script exits
# nonzero — wire it as a non-fatal (continue-on-error) CI step: bench
# numbers from shared runners are advisory, the exit code is a nudge to
# look, not a gate.
#
# Usage:
#   scripts/bench_diff.sh                # diff repo-root BENCH_micro.json
#   scripts/bench_diff.sh path/to.json   # diff another trajectory file
set -euo pipefail
cd "$(dirname "$0")/.."

FILE="${1:-BENCH_micro.json}"

python3 - "$FILE" <<'EOF'
import json, sys

path = sys.argv[1]
try:
    with open(path) as f:
        records = [json.loads(line) for line in f if line.strip()]
except FileNotFoundError:
    print(f"bench_diff: {path} not found — nothing to diff")
    sys.exit(0)

if len(records) < 2:
    print(f"bench_diff: {path} holds {len(records)} record(s); need 2 — nothing to diff")
    sys.exit(0)

prev, curr = records[-2], records[-1]

HIGHER = ("_per_sec", "speedup", "relative_throughput")

def direction(key):
    if any(h in key for h in HIGHER):
        return "higher"
    leaf = key.rsplit(".", 1)[-1]
    if leaf.endswith("_ns") or "seconds" in leaf:
        return "lower"
    return None

def flatten(node, prefix, out):
    if isinstance(node, dict):
        for k, v in node.items():
            out = flatten(v, f"{prefix}.{k}" if prefix else k, out)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            label = v.get("case", v.get("mode", str(i))) if isinstance(v, dict) else str(i)
            out = flatten(v, f"{prefix}[{label}]", out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)
    return out

a, b = flatten(prev, "", {}), flatten(curr, "", {})
shared = [k for k in b if k in a]

red_flags, deltas, config_drift = [], [], []
for key in shared:
    old, new = a[key], b[key]
    d = direction(key)
    if d is None:
        if old != new and not key.endswith("max_abs_diff"):
            config_drift.append(f"  {key}: {old:g} -> {new:g}")
        continue
    if old == 0.0:
        continue
    pct = (new - old) / abs(old) * 100.0
    worse = (d == "higher" and pct < 0) or (d == "lower" and pct > 0)
    line = f"  {key}: {old:.4g} -> {new:.4g}  ({pct:+.1f}%)"
    deltas.append(line)
    if worse and abs(pct) > 10.0:
        red_flags.append(line)

print(f"bench_diff: {path} — record {len(records)-1} vs {len(records)} ({len(deltas)} metrics)")
for line in deltas:
    print(line)
if config_drift:
    print("config drift (the two runs measured different workloads):")
    for line in config_drift:
        print(line)
if red_flags:
    print(f"RED FLAG: {len(red_flags)} metric(s) regressed >10%:")
    for line in red_flags:
        print(line)
    sys.exit(1)
print("bench_diff: no >10% regressions")
EOF
