#!/usr/bin/env bash
# Kernel micro-benchmark runner: times the blocked/parallel GEMM backend
# against the seed's naive kernels, measures serving throughput — direct
# batch ("serve"), the queued, coalescing front-end ("serve_queue"), and
# the supervised 4-shard router tier vs direct on the same producer
# threads ("route", with a bitwise routed == direct guard) —
# training throughput through the data-parallel session stack ("train":
# windows/sec at 1 and N worker threads, weights asserted bitwise-equal
# across the two), plus pool dispatch overhead ("dispatch") and the
# MIN_PAR_WORK calibration sweep ("par_gate"), and appends one JSON
# record per run to BENCH_micro.json (repo root), so the perf trajectory
# accumulates PR over PR.
#
# Usage:
#   scripts/bench.sh                 # bench at the default thread count
#   KD_THREADS=1 scripts/bench.sh    # pin the worker count
#   scripts/bench.sh --criterion     # also run the full criterion micro bench
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p kdselector-bench --bin micro_kernels

if [[ "${1:-}" == "--criterion" ]]; then
    cargo bench -p kdselector-bench --bench micro
fi
