//! # kdselector — facade crate
//!
//! Re-exports the full KDSelector workspace behind one dependency. See
//! [`kdselector_core`] for the framework itself and the README for a guided
//! tour.
//!
//! ```no_run
//! use kdselector::core::pipeline::{Pipeline, PipelineConfig};
//!
//! let pipeline = Pipeline::prepare(PipelineConfig::quick()).expect("labels");
//! let outcome = pipeline.train_nn_selector();
//! println!("avg AUC-PR: {:.3}", outcome.report.average_auc_pr());
//! ```

pub use kdselector_core as core;
pub use tsad_models as detectors;
pub use tsclassic as classic;
pub use tsdata as data;
pub use tsfeatures as features;
pub use tslinalg as linalg;
pub use tslsh as lsh;
pub use tsmetrics as metrics;
pub use tsnn as nn;
pub use tstext as text;
