//! Offline stand-in for `serde_derive`.
//!
//! crates.io is unreachable in this build environment, so these derive
//! macros are written directly against `proc_macro` token streams — no
//! `syn`/`quote`. They support exactly the shapes this workspace uses:
//!
//! * structs with named fields,
//! * enums whose variants are unit or have named fields.
//!
//! Generated code targets the sibling `serde` shim's `Value` data model:
//! structs become objects, unit variants become strings, and struct variants
//! become single-key objects (`{"Variant": {fields...}}`) — the same
//! externally-tagged layout real serde_json produces.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input: just names — field *types* never matter because the
/// generated code defers to `Serialize`/`Deserialize` impls.
enum Input {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    /// Variant field list is `None` for unit variants.
    Enum {
        name: String,
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), serde::Serialize::serialize(&self.{f})),")
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!("{name}::{v} => serde::Value::Str(String::from(\"{v}\")),"),
                    Some(fs) => {
                        let binds = fs.join(", ");
                        let pairs: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), serde::Serialize::serialize({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => serde::Value::Object(vec![\
                                 (String::from(\"{v}\"), serde::Value::Object(vec![{pairs}]))\
                             ]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => {
            let inits: String = fields.iter().map(|f| field_init(name, f, "v")).collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::Object(_) => Ok(Self {{ {inits} }}),\n\
                             other => Err(serde::Error::expected(\"object for {name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fs| (v, fs)))
                .map(|(v, fs)| {
                    let inits: String = fs.iter().map(|f| field_init(name, f, "inner")).collect();
                    format!("\"{v}\" => Ok({name}::{v} {{ {inits} }}),")
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(serde::Error::msg(format!(\n\
                                     \"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     {unit_arms}\n\
                                     other => Err(serde::Error::msg(format!(\n\
                                         \"unknown {name} variant {{other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(serde::Error::expected(\"{name} variant\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Deserialize impl must parse")
}

/// `field: Deserialize::deserialize(<src>.get("field") …)?,` with a
/// path-qualified error message.
fn field_init(type_name: &str, field: &str, src: &str) -> String {
    format!(
        "{field}: serde::Deserialize::deserialize(\
             {src}.get(\"{field}\").unwrap_or(&serde::Value::Null))\
             .map_err(|e| serde::Error::msg(\
                 format!(\"{type_name}.{field}: {{}}\", e.0)))?,"
    )
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected `struct` or `enum`, got {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected type name, got {t}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derives do not support generic types ({name})");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => i += 1, // e.g. `where` clauses (unused here)
            None => panic!("no braced body found for {name}"),
        }
    };
    match kind.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_named_fields(body.stream()),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(body.stream()),
        },
        k => panic!("cannot derive serde traits for `{k}` items"),
    }
}

/// Skips `#[...]` attributes (incl. doc comments) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` named-field lists, tracking `<...>` nesting so
/// commas inside generic arguments don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected field name, got {t}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("expected `:` after field `{field}`, got {t}"),
        }
        // Consume the type up to a top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Parses enum variants: `Unit` or `Variant { fields }` (tuple variants are
/// rejected — the workspace has none that derive serde).
fn parse_variants(stream: TokenStream) -> Vec<(String, Option<Vec<String>>)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected variant name, got {t}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derives do not support tuple variants ({variant})")
            }
            _ => None,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((variant, fields));
    }
    variants
}
