//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, dependency-free implementation of the `rand` 0.9 surface it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] sampling methods (`random`, `random_range`, `random_bool`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and fully deterministic per seed. It is **not** the same
//! stream as upstream `StdRng` (ChaCha12); everything in this workspace that
//! depends on randomness is calibrated against this generator.

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface over a raw `u64` stream.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (unit interval for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample(self) < p
    }
}

/// Types samplable from the full-range/unit-interval "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let hit = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + hit) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let hit = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + hit) as $t
            }
        }
    )*};
}
uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = lo + (hi - lo) * unit;
                // Guard against rounding up to the open bound. `next_down`
                // is sign-correct for negative/zero bounds, unlike bit
                // arithmetic on the raw representation.
                if v >= hi { hi.next_down().max(lo) } else { v }
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws a uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded via SplitMix64. Deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors to avoid correlated low-entropy states.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = r.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = r.random_range(0usize..=4);
            assert!(j <= 4);
            let f = r.random_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let n = r.random_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn float_ranges_with_nonpositive_bounds_stay_in_range() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..2000 {
            let a = r.random_range(-2.0f32..-1.0);
            assert!((-2.0..-1.0).contains(&a), "{a}");
            let b = r.random_range(-1.0f64..0.0);
            assert!((-1.0..0.0).contains(&b), "{b}");
        }
        // Degenerate one-ULP-wide ranges must not panic or escape.
        let hi = 1.0f32;
        let lo = hi.next_down();
        for _ in 0..100 {
            let v = r.random_range(lo..hi);
            assert!(v >= lo && v < hi, "{v}");
        }
    }

    #[test]
    fn random_bool_probability_roughly_holds() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn full_range_ints_cover_high_bits() {
        let mut r = StdRng::seed_from_u64(4);
        let any_high = (0..100).any(|_| r.next_u64() > u64::MAX / 2);
        assert!(any_high);
    }
}
