//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`], the
//! builder knobs (`sample_size`, `measurement_time`, `warm_up_time`) and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Statistics are
//! deliberately simple — per-sample mean wall-clock with min/median/max over
//! samples printed to stdout — but timing methodology follows criterion's
//! shape: a calibration pass picks an iteration count per sample so each
//! sample runs ≥ `measurement_time / sample_size`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration + runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let cfg = self.clone();
        let mut b = Bencher {
            cfg,
            name: name.to_string(),
            ran: false,
        };
        f(&mut b);
        assert!(b.ran, "benchmark {name:?} never called Bencher::iter");
        self
    }

    /// Opens a named group of benchmarks sharing configuration tweaks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            prefix: name.to_string(),
            overrides: None,
        }
    }
}

/// A group of related benchmarks (names are prefixed with the group name).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    prefix: String,
    overrides: Option<Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let base = self.overrides.take().unwrap_or_else(|| self.parent.clone());
        self.overrides = Some(base.sample_size(n));
        self
    }

    /// Overrides the measurement time within this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        let base = self.overrides.take().unwrap_or_else(|| self.parent.clone());
        self.overrides = Some(base.measurement_time(d));
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let cfg = self
            .overrides
            .clone()
            .unwrap_or_else(|| self.parent.clone());
        let full = format!("{}/{}", self.prefix, name);
        let mut b = Bencher {
            cfg,
            name: full.clone(),
            ran: false,
        };
        f(&mut b);
        assert!(b.ran, "benchmark {full:?} never called Bencher::iter");
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times one closure.
pub struct Bencher {
    cfg: Criterion,
    name: String,
    ran: bool,
}

impl Bencher {
    /// Measures `f`, printing mean/min/median/max per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.ran = true;

        // Warm-up + calibration: count iterations that fit the warm-up
        // window to size the per-sample batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)).ceil() as u64).clamp(1, 10_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.cfg.sample_size);
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = samples[samples.len() / 2];
        println!(
            "{:<40} time: [{} {} {}]  (mean {}, {} samples × {} iters)",
            self.name,
            fmt_time(samples[0]),
            fmt_time(median),
            fmt_time(*samples.last().unwrap()),
            fmt_time(mean),
            samples.len(),
            batch,
        );
    }
}

/// Human-formats seconds.
pub fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_prints() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls = calls.wrapping_add(1)));
        assert!(calls > 0);
    }

    #[test]
    fn groups_prefix_names_and_override_samples() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn fmt_time_scales() {
        assert!(fmt_time(2e-9).ends_with("ns"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2.0).ends_with(" s"));
    }
}
