//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest surface this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, range
//! strategies for the numeric primitives, [`collection::vec`],
//! [`bool::ANY`], tuple strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated inputs' debug representation (cases are deterministic per
//! test, so failures reproduce exactly). Each `#[test]` runs
//! `ProptestConfig::cases` random cases from a fixed seed.

use rand::rngs::StdRng;
pub use rand::Rng as _;
use rand::SeedableRng;

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Unused compatibility knob.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named test.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name so each test gets its own stream.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: std::fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: std::fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(usize, u64, u32, i64, i32, f32, f64);

/// Single-value strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A strategy generating vectors of `element` draws.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests. Each `fn` becomes a `#[test]` that runs
/// `config.cases` deterministic random cases; bindings left of `in` are
/// drawn from the strategy expression on the right.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( fn $name( $($pat in $strat),+ ) $body )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategy_work() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..100 {
            let x = (1usize..5).generate(&mut rng);
            assert!((1..5).contains(&x));
            let v = crate::collection::vec(0.0f64..1.0, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&f| (0.0..1.0).contains(&f)));
            let fixed = crate::collection::vec(0i32..3, 4).generate(&mut rng);
            assert_eq!(fixed.len(), 4);
        }
    }

    #[test]
    fn tuple_and_map_strategies_compose() {
        let mut rng = crate::test_rng("tuple");
        let s = crate::collection::vec((0.0f64..1.0, crate::bool::ANY), 3..5)
            .prop_map(|v| v.into_iter().unzip::<f64, bool, Vec<f64>, Vec<bool>>());
        let (xs, ys) = s.generate(&mut rng);
        assert_eq!(xs.len(), ys.len());
    }

    #[test]
    fn deterministic_per_test_name() {
        let a = (0u64..1_000_000).generate(&mut crate::test_rng("t"));
        let b = (0u64..1_000_000).generate(&mut crate::test_rng("t"));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_runs_and_binds((xs, flag) in (crate::collection::vec(0.0f64..1.0, 1..4), crate::bool::ANY)) {
            prop_assert!(xs.len() < 4, "len={}", xs.len());
            let _ = flag;
        }

        #[test]
        fn multiple_bindings(a in 1usize..10, b in 1usize..10) {
            prop_assert!(a * b < 100);
            prop_assert_eq!(a * b, b * a);
        }
    }
}
