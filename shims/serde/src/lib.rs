//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of serde the workspace uses: [`Serialize`]/[`Deserialize`] traits
//! over a JSON-shaped [`Value`] model, implementations for the primitive and
//! container types that appear in the workspace's data structures, and the
//! `#[derive(Serialize, Deserialize)]` macros (re-exported from the sibling
//! `serde_derive` proc-macro crate).
//!
//! Unlike real serde there is no zero-copy visitor machinery: serialization
//! always materialises a [`Value`] tree, which `serde_json` then prints or
//! parses. That is ample for the workspace's config/manifest/cache files.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent, negative).
    Int(i64),
    /// Unsigned integer (JSON number without fraction/exponent).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view as `f64` (ints coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric view as `u64` (rejects negatives and fractional floats).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable path + expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// Type-mismatch helper.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Serialization into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn serialize(&self) -> Value;
}

/// Deserialization from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| Error::msg(format!("{u} out of range")))
            }
        }
    )*};
}
serde_uint!(u8, u16, u32, u64, usize);

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::msg(format!("{i} out of range")))
            }
        }
    )*};
}
serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            _ => T::deserialize(v).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            _ => Err(Error::expected("2-element array", v)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            _ => Err(Error::expected("3-element array", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&3usize.serialize()), Ok(3));
        assert_eq!(f32::deserialize(&1.5f32.serialize()), Ok(1.5));
        assert_eq!(String::deserialize(&"hi".serialize()), Ok("hi".to_string()));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(i64::deserialize(&(-7i64).serialize()), Ok(-7));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::deserialize(&v.serialize()), Ok(v));
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&o.serialize()), Ok(None));
        let p = ("a".to_string(), 0.5f64);
        assert_eq!(<(String, f64)>::deserialize(&p.serialize()), Ok(p));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::deserialize(&Value::UInt(4)), Ok(4.0));
        assert_eq!(u64::deserialize(&Value::Float(4.0)), Ok(4));
        assert!(u64::deserialize(&Value::Float(4.5)).is_err());
        assert!(u64::deserialize(&Value::Int(-1)).is_err());
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::deserialize(&Value::Str("x".into())).is_err());
        assert!(Vec::<f64>::deserialize(&Value::Bool(true)).is_err());
    }
}
