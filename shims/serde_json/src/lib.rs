//! Offline stand-in for `serde_json`.
//!
//! Implements the entry points the workspace uses — `to_string`,
//! `to_string_pretty`, `to_vec`, `to_vec_pretty`, `from_str`, `from_slice`,
//! the [`json!`] macro and the [`Value`] type — over the `serde` shim's
//! value model. The parser is a straightforward recursive-descent JSON
//! reader with the usual escapes; numbers parse to integers when they have
//! no fraction/exponent and to `f64` otherwise.

pub use serde::Value;

/// Parse or serialization error.
pub type Error = serde::Error;

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes a value to indented JSON bytes.
pub fn to_vec_pretty<T: serde::Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    T::deserialize(&v)
}

/// Parses a value from JSON bytes (must be UTF-8).
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Converts any serializable value to a [`Value`] (used by [`json!`]).
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.serialize()
}

/// Builds a [`Value`] from JSON-like syntax. Object values and array
/// elements are arbitrary expressions implementing `serde::Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $( $key:literal : $val:expr ),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

/// JSON has no NaN/Infinity; mirror serde_json by emitting `null`.
fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Ensure round-trip as a float, not an integer.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::msg(format!("bad number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::msg(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::msg(format!("bad number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in [
            "null",
            "true",
            "false",
            "42",
            "-17",
            "0.5",
            "\"hi\\nthere\"",
        ] {
            let v: Value = from_str(json).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{json}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let src = r#"{"a": [1, 2.5, {"b": null}], "c": "x", "d": true}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Str("x".into())));
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn floats_keep_float_shape() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let v: Value = from_str(&s).unwrap();
        assert_eq!(v, Value::Float(2.0));
    }

    #[test]
    fn json_macro_builds_objects() {
        let rows = vec![1u32, 2, 3];
        let v = json!({
            "name": "bench",
            "rows": rows,
            "nested": json!({ "ok": true }),
            "list": json!([1, "two"]),
            "sum": 1.0 + 0.5,
        });
        assert_eq!(v.get("name"), Some(&Value::Str("bench".into())));
        assert_eq!(v.get("nested").unwrap().get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("sum"), Some(&Value::Float(1.5)));
        let text = to_string(&v).unwrap();
        assert!(text.contains("\"rows\":[1,2,3]"), "{text}");
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<Value>("{bad}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let v: Value = from_str(r#""éé""#).unwrap();
        assert_eq!(v, Value::Str("éé".into()));
        let s = to_string(&Value::Str("tab\tquote\"".into())).unwrap();
        assert_eq!(
            from_str::<Value>(&s).unwrap(),
            Value::Str("tab\tquote\"".into())
        );
    }
}
