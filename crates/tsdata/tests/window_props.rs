//! Property tests for window extraction: across arbitrary series lengths,
//! window lengths and strides, every tail point must be covered by some
//! window and no window may be emitted twice. These pin the simplified
//! tail-cover condition (the last emitted start alone decides whether the
//! tail window is added).

use proptest::prelude::*;
use tsdata::series::TimeSeries;
use tsdata::stream::StreamWindower;
use tsdata::windows::{extract_windows, WindowConfig};

fn series(n: usize) -> TimeSeries {
    TimeSeries::new(
        "prop",
        "D",
        (0..n).map(|i| (i as f64 * 0.37).sin()).collect(),
        vec![],
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    #[test]
    fn every_point_covered_and_no_window_twice(
        n in 1usize..300,
        length in 1usize..64,
        stride in 1usize..80,
    ) {
        let cfg = WindowConfig { length, stride, znormalize: false };
        let ws = extract_windows(&series(n), 0, &cfg);

        // At least one window, each of exactly `length` values.
        prop_assert!(!ws.is_empty(), "n={} len={} stride={}", n, length, stride);
        for w in &ws {
            prop_assert_eq!(w.values.len(), length);
        }

        // Starts strictly ascend — no window emitted twice.
        for pair in ws.windows(2) {
            prop_assert!(
                pair[0].start < pair[1].start,
                "duplicate/unsorted starts {} {} (n={} len={} stride={})",
                pair[0].start, pair[1].start, n, length, stride
            );
        }

        if n < length {
            // Short series: one padded window starting at 0.
            prop_assert_eq!(ws.len(), 1);
            prop_assert_eq!(ws[0].start, 0);
        } else {
            let mut covered = vec![false; n];
            for w in &ws {
                prop_assert!(w.start + length <= n, "window overruns the series");
                for c in &mut covered[w.start..w.start + length] {
                    *c = true;
                }
            }
            // Every tail point is covered — the guarantee the tail clause
            // exists to provide. (With stride > length interior gaps are
            // intentional subsampling, so only the tail is promised.)
            if let Some(gap) = covered[n - length..].iter().position(|&c| !c) {
                prop_assert!(
                    false,
                    "tail point {} uncovered (n={} len={} stride={})",
                    n - length + gap, n, length, stride
                );
            }
            // With stride <= length windows overlap or abut: full cover.
            if stride <= length {
                if let Some(gap) = covered.iter().position(|&c| !c) {
                    prop_assert!(
                        false,
                        "point {} uncovered (n={} len={} stride={})",
                        gap, n, length, stride
                    );
                }
            }
            // The final window ends exactly at the series end.
            prop_assert_eq!(ws.last().unwrap().start, n - length);
            // Non-tail windows sit on the stride grid.
            for w in &ws[..ws.len() - 1] {
                prop_assert_eq!(w.start % stride, 0);
            }
        }
    }

    /// Incremental streaming extraction ≡ batch `extract_windows`,
    /// bitwise, across n × length × stride × append-chunking sweeps —
    /// including at every intermediate append boundary (prefix
    /// equivalence), not just at the end of the stream. Chunk sizes are
    /// drawn per-append from the same generator, so the sweep covers
    /// single-sample trickles, window-straddling chunks, and one-shot
    /// appends of the whole series.
    #[test]
    fn streaming_extraction_is_bitwise_equal_to_batch(
        n in 1usize..300,
        length in 1usize..64,
        stride in 1usize..80,
        znormalize in proptest::bool::ANY,
        chunks in proptest::collection::vec(1usize..90, 1..40),
    ) {
        let cfg = WindowConfig { length, stride, znormalize };
        let ts = series(n);
        let mut sw = StreamWindower::new(0, cfg);
        let mut emitted = Vec::new();
        let mut fed = 0;
        let mut chunk_iter = chunks.iter().cycle();
        while fed < n {
            let chunk = (*chunk_iter.next().expect("cycle")).min(n - fed);
            emitted.extend(sw.append(&ts.values[fed..fed + chunk]));
            fed += chunk;

            // Prefix equivalence at this append boundary.
            let mut streamed = emitted.clone();
            streamed.extend(sw.tail_windows());
            let reference = extract_windows(&series(fed), 0, &cfg);
            prop_assert_eq!(
                streamed.len(), reference.len(),
                "window count diverges at prefix {} (n={} len={} stride={})",
                fed, n, length, stride
            );
            for (s, r) in streamed.iter().zip(&reference) {
                prop_assert_eq!(s.start, r.start);
                prop_assert_eq!(s.values.len(), r.values.len());
                for (a, b) in s.values.iter().zip(&r.values) {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "window at start {} diverges bitwise at prefix {}",
                        s.start, fed
                    );
                }
            }
        }
        // Steady-state memory: one window length retained, regardless of n.
        prop_assert!(sw.retained() <= length);
        prop_assert_eq!(sw.len(), n);
    }
}
