//! Clean base-signal generators for the synthetic benchmark families.

use crate::anomaly::gaussian;
use rand::rngs::StdRng;
use rand::Rng;
use std::f64::consts::PI;

/// Which clean signal a dataset family is built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaseSignal {
    /// Sum of a few sinusoids; `period` is the dominant one.
    SineMix { period: usize, harmonics: usize },
    /// Synthetic heartbeat train (Gaussian P/QRS/T bumps per cycle).
    EcgBeat { period: usize },
    /// Mackey–Glass chaotic series (τ = 17).
    MackeyGlass,
    /// Mean-reverting AR(1) process, optionally with linear drift.
    Ar1 { phi: f64, drift: f64 },
    /// Rectangular pulse train with the given duty cycle, smoothed.
    PulseTrain { period: usize, duty: f64 },
    /// Piecewise-constant regimes switching every ~`dwell` points.
    StepRegime { dwell: usize, levels: usize },
    /// Sawtooth wave.
    Sawtooth { period: usize },
}

impl BaseSignal {
    /// Characteristic period of the signal (used to size anomalies and the
    /// detectors' subsequence windows).
    pub fn period(&self) -> usize {
        match *self {
            BaseSignal::SineMix { period, .. } => period,
            BaseSignal::EcgBeat { period } => period,
            BaseSignal::MackeyGlass => 50,
            BaseSignal::Ar1 { .. } => 32,
            BaseSignal::PulseTrain { period, .. } => period,
            BaseSignal::StepRegime { dwell, .. } => dwell,
            BaseSignal::Sawtooth { period } => period,
        }
    }

    /// Generates `n` points of the clean signal.
    ///
    /// The RNG drives per-series variation (phases, regime levels, AR noise)
    /// so that two series of the same family are related but not identical.
    pub fn generate(&self, n: usize, rng: &mut StdRng) -> Vec<f64> {
        match *self {
            BaseSignal::SineMix { period, harmonics } => sine_mix(n, period, harmonics, rng),
            BaseSignal::EcgBeat { period } => ecg_beat(n, period, rng),
            BaseSignal::MackeyGlass => mackey_glass(n, rng),
            BaseSignal::Ar1 { phi, drift } => ar1(n, phi, drift, rng),
            BaseSignal::PulseTrain { period, duty } => pulse_train(n, period, duty, rng),
            BaseSignal::StepRegime { dwell, levels } => step_regime(n, dwell, levels, rng),
            BaseSignal::Sawtooth { period } => sawtooth(n, period, rng),
        }
    }
}

fn sine_mix(n: usize, period: usize, harmonics: usize, rng: &mut StdRng) -> Vec<f64> {
    let base_phase: f64 = rng.random_range(0.0..2.0 * PI);
    let mut comps = vec![(1.0f64, 1.0f64, base_phase)];
    for h in 1..=harmonics {
        let freq_mult = (h + 1) as f64 * rng.random_range(0.95..1.05);
        let amp = rng.random_range(0.15..0.45) / h as f64;
        let phase = rng.random_range(0.0..2.0 * PI);
        comps.push((freq_mult, amp, phase));
    }
    (0..n)
        .map(|t| {
            let x = 2.0 * PI * t as f64 / period as f64;
            comps.iter().map(|&(f, a, p)| a * (f * x + p).sin()).sum()
        })
        .collect()
}

fn ecg_beat(n: usize, period: usize, rng: &mut StdRng) -> Vec<f64> {
    // P, Q, R, S, T bumps at fixed fractions of the cycle.
    let bumps: [(f64, f64, f64); 5] = [
        (0.18, 0.12, 0.035), // P wave
        (0.38, -0.18, 0.012),
        (0.42, 1.0, 0.014), // R spike
        (0.46, -0.28, 0.012),
        (0.68, 0.30, 0.055), // T wave
    ];
    let rate_jitter: f64 = rng.random_range(0.97..1.03);
    let amp_jitter: f64 = rng.random_range(0.9..1.1);
    (0..n)
        .map(|t| {
            let phase = (t as f64 * rate_jitter / period as f64).fract();
            bumps
                .iter()
                .map(|&(center, amp, width)| {
                    let d = phase - center;
                    amp_jitter * amp * (-(d * d) / (2.0 * width * width)).exp()
                })
                .sum()
        })
        .collect()
}

fn mackey_glass(n: usize, rng: &mut StdRng) -> Vec<f64> {
    const TAU: usize = 17;
    const BETA: f64 = 0.2;
    const GAMMA: f64 = 0.1;
    const N_EXP: i32 = 10;
    let warmup = 200;
    let total = n + warmup + TAU;
    let mut x = vec![0.0f64; total];
    for slot in x.iter_mut().take(TAU + 1) {
        *slot = 1.2 + 0.05 * gaussian(rng);
    }
    for t in TAU..total - 1 {
        let delayed = x[t - TAU];
        let dx = BETA * delayed / (1.0 + delayed.powi(N_EXP)) - GAMMA * x[t];
        x[t + 1] = x[t] + dx;
    }
    x[warmup + TAU..].to_vec()
}

fn ar1(n: usize, phi: f64, drift: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut x = gaussian(rng);
    for t in 0..n {
        x = phi * x + gaussian(rng) * 0.3;
        out.push(x + drift * t as f64);
    }
    out
}

fn pulse_train(n: usize, period: usize, duty: f64, rng: &mut StdRng) -> Vec<f64> {
    let phase_off: f64 = rng.random_range(0.0..1.0);
    let height: f64 = rng.random_range(0.9..1.1);
    let raw: Vec<f64> = (0..n)
        .map(|t| {
            let phase = (t as f64 / period as f64 + phase_off).fract();
            if phase < duty {
                height
            } else {
                0.0
            }
        })
        .collect();
    // Light smoothing so edges are not perfectly sharp.
    smooth3(&raw)
}

fn step_regime(n: usize, dwell: usize, levels: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut level: f64 = rng.random_range(0..levels) as f64;
    let mut remaining = jittered_dwell(dwell, rng);
    for _ in 0..n {
        if remaining == 0 {
            level = rng.random_range(0..levels) as f64;
            remaining = jittered_dwell(dwell, rng);
        }
        remaining -= 1;
        out.push(level);
    }
    smooth3(&out)
}

fn jittered_dwell(dwell: usize, rng: &mut StdRng) -> usize {
    let lo = (dwell / 2).max(2);
    let hi = dwell * 3 / 2 + 2;
    rng.random_range(lo..hi)
}

fn sawtooth(n: usize, period: usize, rng: &mut StdRng) -> Vec<f64> {
    let phase_off: f64 = rng.random_range(0.0..1.0);
    (0..n)
        .map(|t| 2.0 * ((t as f64 / period as f64 + phase_off).fract()) - 1.0)
        .collect()
}

fn smooth3(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    (0..n)
        .map(|i| {
            let a = xs[i.saturating_sub(1)];
            let b = xs[i];
            let c = xs[(i + 1).min(n - 1)];
            (a + 2.0 * b + c) / 4.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tslinalg_shim::autocorr;

    /// Tiny local autocorrelation (avoid a dev-dependency cycle).
    mod tslinalg_shim {
        pub fn autocorr(xs: &[f64], lag: usize) -> f64 {
            let n = xs.len();
            let m = xs.iter().sum::<f64>() / n as f64;
            let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
            if denom < 1e-12 {
                return 0.0;
            }
            let num: f64 = (0..n - lag).map(|i| (xs[i] - m) * (xs[i + lag] - m)).sum();
            num / denom
        }
    }

    #[test]
    fn all_generators_produce_finite_values_of_requested_length() {
        let signals = [
            BaseSignal::SineMix {
                period: 24,
                harmonics: 3,
            },
            BaseSignal::EcgBeat { period: 48 },
            BaseSignal::MackeyGlass,
            BaseSignal::Ar1 {
                phi: 0.9,
                drift: 0.001,
            },
            BaseSignal::PulseTrain {
                period: 50,
                duty: 0.3,
            },
            BaseSignal::StepRegime {
                dwell: 40,
                levels: 4,
            },
            BaseSignal::Sawtooth { period: 30 },
        ];
        let mut rng = StdRng::seed_from_u64(11);
        for s in signals {
            let v = s.generate(500, &mut rng);
            assert_eq!(v.len(), 500, "{s:?}");
            assert!(v.iter().all(|x| x.is_finite()), "{s:?}");
        }
    }

    #[test]
    fn sine_mix_is_periodic() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = BaseSignal::SineMix {
            period: 25,
            harmonics: 0,
        }
        .generate(500, &mut rng);
        // The biased ACF estimator tops out at (n-lag)/n = 0.95 for a
        // perfect sine; require most of that.
        assert!(autocorr(&v, 25) > 0.9);
    }

    #[test]
    fn ecg_beat_has_periodic_r_spikes() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = BaseSignal::EcgBeat { period: 50 }.generate(1000, &mut rng);
        assert!(autocorr(&v, 50) > 0.7, "acf={}", autocorr(&v, 50));
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 0.7, "R peak expected, max={max}");
    }

    #[test]
    fn mackey_glass_is_bounded_and_aperiodic() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = BaseSignal::MackeyGlass.generate(2000, &mut rng);
        assert!(v.iter().all(|&x| x > 0.0 && x < 2.0));
        // Chaotic: autocorrelation at large lag decays below periodic level.
        assert!(autocorr(&v, 500).abs() < 0.9);
    }

    #[test]
    fn ar1_is_mean_reverting_without_drift() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = BaseSignal::Ar1 {
            phi: 0.8,
            drift: 0.0,
        }
        .generate(5000, &mut rng);
        let m = v.iter().sum::<f64>() / v.len() as f64;
        assert!(m.abs() < 0.3, "mean={m}");
    }

    #[test]
    fn pulse_train_duty_cycle_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(13);
        let v = BaseSignal::PulseTrain {
            period: 40,
            duty: 0.25,
        }
        .generate(4000, &mut rng);
        let high = v.iter().filter(|&&x| x > 0.5).count() as f64 / v.len() as f64;
        assert!((high - 0.25).abs() < 0.08, "duty={high}");
    }

    #[test]
    fn step_regime_uses_multiple_levels() {
        let mut rng = StdRng::seed_from_u64(15);
        let v = BaseSignal::StepRegime {
            dwell: 30,
            levels: 4,
        }
        .generate(2000, &mut rng);
        let distinct: std::collections::BTreeSet<i64> =
            v.iter().map(|&x| (x * 10.0).round() as i64).collect();
        assert!(distinct.len() >= 3, "levels used: {}", distinct.len());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = BaseSignal::MackeyGlass.generate(200, &mut StdRng::seed_from_u64(1));
        let b = BaseSignal::MackeyGlass.generate(200, &mut StdRng::seed_from_u64(1));
        let c = BaseSignal::MackeyGlass.generate(200, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
