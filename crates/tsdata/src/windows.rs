//! Fixed-length window extraction (§2 of the paper).
//!
//! The selector classifies fixed-length subsequences; per-series selection is
//! a majority vote over the window predictions. Windows are z-normalised by
//! default, the standard preprocessing for time-series classification.

use crate::series::TimeSeries;

/// Window extraction parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WindowConfig {
    /// Window length `L`.
    pub length: usize,
    /// Hop between consecutive windows.
    pub stride: usize,
    /// Z-normalise each window.
    pub znormalize: bool,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            length: 64,
            stride: 64,
            znormalize: true,
        }
    }
}

/// One extracted window.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Index of the source series in the caller's collection.
    pub series_index: usize,
    /// Start offset within the source series.
    pub start: usize,
    /// The (possibly z-normalised) values, as `f32` for the NN substrate.
    pub values: Vec<f32>,
}

/// Extracts windows from a series.
///
/// If the series is shorter than `length`, a single window padded by edge
/// replication is emitted so every series yields at least one window.
pub fn extract_windows(ts: &TimeSeries, series_index: usize, cfg: &WindowConfig) -> Vec<Window> {
    assert!(
        cfg.length > 0 && cfg.stride > 0,
        "length and stride must be positive"
    );
    let n = ts.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    if n < cfg.length {
        let mut values: Vec<f32> = ts.values.iter().map(|&v| v as f32).collect();
        values.resize(cfg.length, *values.last().expect("non-empty"));
        if cfg.znormalize {
            znorm(&mut values);
        }
        out.push(Window {
            series_index,
            start: 0,
            values,
        });
        return out;
    }
    let mut start = 0;
    while start + cfg.length <= n {
        let mut values: Vec<f32> = ts.values[start..start + cfg.length]
            .iter()
            .map(|&v| v as f32)
            .collect();
        if cfg.znormalize {
            znorm(&mut values);
        }
        out.push(Window {
            series_index,
            start,
            values,
        });
        start += cfg.stride;
    }
    // Cover the tail if the stride skipped it. (Checking the last emitted
    // start is sufficient on its own: the loop above emits `last_start`
    // exactly when it is a stride multiple, and emitted starts ascend, so
    // a divisibility re-check would be redundant.)
    let last_start = n - cfg.length;
    if out.last().map(|w| w.start) != Some(last_start) {
        let mut values: Vec<f32> = ts.values[last_start..].iter().map(|&v| v as f32).collect();
        if cfg.znormalize {
            znorm(&mut values);
        }
        out.push(Window {
            series_index,
            start: last_start,
            values,
        });
    }
    out
}

/// Extracts window *values* into caller-provided buffers — the pooled
/// twin of [`extract_windows`] for allocation-free serving hot paths.
///
/// `take_buf` supplies an empty (cleared) `Vec<f32>` per window —
/// typically recycled from a scratch arena — and each filled buffer is
/// pushed onto `out` in window order. The window boundaries, `f64 → f32`
/// conversion, edge padding and z-normalisation replay
/// [`extract_windows`] exactly, so the produced values are bitwise
/// identical to `extract_windows(ts, _, cfg)`'s `values` fields: both
/// paths map the same source slices through the same `as f32` casts and
/// the same [`znorm`] call, and buffer provenance cannot affect
/// arithmetic.
pub fn extract_window_values_into(
    ts: &TimeSeries,
    cfg: &WindowConfig,
    mut take_buf: impl FnMut() -> Vec<f32>,
    out: &mut Vec<Vec<f32>>,
) {
    assert!(
        cfg.length > 0 && cfg.stride > 0,
        "length and stride must be positive"
    );
    let n = ts.len();
    if n == 0 {
        return;
    }
    let mut fill = |src: &[f64]| {
        let mut values = take_buf();
        debug_assert!(values.is_empty(), "take_buf must supply cleared buffers");
        values.extend(src.iter().map(|&v| v as f32));
        values
    };
    if n < cfg.length {
        let mut values = fill(&ts.values);
        values.resize(cfg.length, *values.last().expect("non-empty"));
        if cfg.znormalize {
            znorm(&mut values);
        }
        out.push(values);
        return;
    }
    let mut start = 0;
    let mut last_emitted = None;
    while start + cfg.length <= n {
        let mut values = fill(&ts.values[start..start + cfg.length]);
        if cfg.znormalize {
            znorm(&mut values);
        }
        out.push(values);
        last_emitted = Some(start);
        start += cfg.stride;
    }
    // Tail coverage, mirroring `extract_windows` (see the comment there).
    let last_start = n - cfg.length;
    if last_emitted != Some(last_start) {
        let mut values = fill(&ts.values[last_start..]);
        if cfg.znormalize {
            znorm(&mut values);
        }
        out.push(values);
    }
}

pub(crate) fn znorm(values: &mut [f32]) {
    let n = values.len() as f32;
    // Lane-striped reductions from the compute core; the mean/variance
    // summation order is canonical (see `tsnn::simd`), so results do not
    // depend on whether the lane path or its scalar fallback runs.
    let mean = tsnn::simd::sum(values) / n;
    let var = tsnn::simd::sum_sq_diff(values, mean) / n;
    let std = var.sqrt();
    // Flat-window guard, **relative** to the window's magnitude. An
    // absolute `std < 1e-6` misses constant windows around a large
    // baseline: a window of 64 copies of `1e6 + 0.3` accumulates a few
    // ulps of f32 rounding in the striped mean (ulp(1e6) = 0.0625), so
    // `x - mean` is a nonzero constant, std lands around 0.25, and every
    // z-score comes out as the same garbage value (−1-ish) instead of the
    // zeros the constant-window contract promises. Relative variation
    // below 1e-6 (≈ 8 f32 ulps) is indistinguishable from that rounding
    // noise, so it is flattened to zeros deterministically. The threshold
    // is a pure function of `mean`/`std`, which the lane and scalar
    // reduction paths compute bitwise-identically, so the branch taken
    // never depends on the SIMD policy.
    if std < 1e-6 * mean.abs().max(1.0) {
        for v in values.iter_mut() {
            *v = 0.0;
        }
    } else {
        for v in values.iter_mut() {
            *v = (*v - mean) / std;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> TimeSeries {
        TimeSeries::new("t", "D", (0..n).map(|i| i as f64).collect(), vec![])
    }

    #[test]
    fn window_count_matches_stride() {
        let ts = series(100);
        let cfg = WindowConfig {
            length: 20,
            stride: 20,
            znormalize: false,
        };
        let ws = extract_windows(&ts, 0, &cfg);
        assert_eq!(ws.len(), 5);
        assert_eq!(ws[2].start, 40);
        assert_eq!(ws[2].values[0], 40.0);
    }

    #[test]
    fn overlapping_windows() {
        let ts = series(100);
        let cfg = WindowConfig {
            length: 40,
            stride: 20,
            znormalize: false,
        };
        let ws = extract_windows(&ts, 0, &cfg);
        assert_eq!(ws.len(), 4); // starts 0,20,40,60
    }

    #[test]
    fn tail_window_added_when_stride_skips_it() {
        let ts = series(105);
        let cfg = WindowConfig {
            length: 20,
            stride: 20,
            znormalize: false,
        };
        let ws = extract_windows(&ts, 0, &cfg);
        assert_eq!(ws.last().unwrap().start, 85);
    }

    #[test]
    fn short_series_padded() {
        let ts = series(10);
        let cfg = WindowConfig {
            length: 20,
            stride: 20,
            znormalize: false,
        };
        let ws = extract_windows(&ts, 3, &cfg);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].values.len(), 20);
        assert_eq!(ws[0].series_index, 3);
        assert_eq!(ws[0].values[15], 9.0); // edge replication
    }

    #[test]
    fn znormalized_windows_have_zero_mean() {
        let ts = series(128);
        let cfg = WindowConfig {
            length: 64,
            stride: 64,
            znormalize: true,
        };
        for w in extract_windows(&ts, 0, &cfg) {
            let mean: f32 = w.values.iter().sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn constant_window_znorms_to_zero() {
        let ts = TimeSeries::new("t", "D", vec![5.0; 64], vec![]);
        let ws = extract_windows(&ts, 0, &WindowConfig::default());
        assert!(ws[0].values.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn constant_window_at_large_offset_znorms_to_zero_on_both_simd_paths() {
        use tsnn::simd::{set_simd_policy, SimdPolicy};
        // Regression: these baselines are not exactly representable as f32
        // multiples, so the striped f32 mean picks up rounding noise and
        // the old absolute `std < 1e-6` guard let a *constant* window emit
        // a constant garbage z-score (−1 at 1e6 + 0.3) instead of zeros.
        for base in [1e6 + 0.3, 12345.678, 2.5e6 + 0.7, -1e6 - 0.3] {
            for policy in [SimdPolicy::Lanes, SimdPolicy::Scalar] {
                set_simd_policy(policy);
                let ts = TimeSeries::new("t", "D", vec![base; 64], vec![]);
                let ws = extract_windows(&ts, 0, &WindowConfig::default());
                assert!(
                    ws[0].values.iter().all(|&v| v == 0.0),
                    "constant window at offset {base} must z-norm to zeros \
                     ({policy:?} path), got {:?}",
                    &ws[0].values[..4]
                );
            }
        }
        set_simd_policy(SimdPolicy::Auto);
    }

    #[test]
    fn near_constant_large_offset_window_flattens_not_amplifies() {
        // A large baseline with sub-noise jitter (well under 1e-6 relative)
        // is rounding noise in f32, not signal: the relative guard zeroes
        // it instead of amplifying it to full-scale z-scores.
        let values: Vec<f64> = (0..64)
            .map(|i| 1e6 + 1e-3 * (i as f64 * 0.37).sin())
            .collect();
        let ts = TimeSeries::new("t", "D", values, vec![]);
        let ws = extract_windows(&ts, 0, &WindowConfig::default());
        assert!(ws[0].values.iter().all(|&v| v == 0.0));
        // Genuine variation at the same offset still z-normalises: ±40
        // around 1e6 is 4e-5 relative, far above the 1e-6 guard.
        let values: Vec<f64> = (0..64)
            .map(|i| 1e6 + 40.0 * (i as f64 * 0.37).sin())
            .collect();
        let ts = TimeSeries::new("t", "D", values, vec![]);
        let ws = extract_windows(&ts, 0, &WindowConfig::default());
        let mean: f32 = ws[0].values.iter().sum::<f32>() / 64.0;
        assert!(
            ws[0].values.iter().any(|&v| v.abs() > 0.5),
            "real signal survives"
        );
        // f32 input quantisation at 1e6 (ulp 0.0625) leaves a few-permille
        // residual in the z-score mean — centred up to that noise floor.
        assert!(mean.abs() < 1e-2, "z-scores centred, mean {mean}");
    }

    #[test]
    fn znorm_bitwise_equal_across_simd_paths() {
        use tsnn::simd::{set_simd_policy, SimdPolicy};
        // 67 is not a lane multiple, so the striped tail handling runs.
        let base: Vec<f32> = (0..67)
            .map(|i| (i as f32 * 0.31).sin() * 3.0 + 0.2)
            .collect();
        set_simd_policy(SimdPolicy::Lanes);
        let mut lanes = base.clone();
        znorm(&mut lanes);
        set_simd_policy(SimdPolicy::Scalar);
        let mut scalar = base;
        znorm(&mut scalar);
        set_simd_policy(SimdPolicy::Auto);
        assert!(
            lanes
                .iter()
                .zip(&scalar)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "znorm lane and scalar paths diverge"
        );
    }

    #[test]
    fn empty_series_yields_no_windows() {
        let ts = TimeSeries::new("t", "D", vec![], vec![]);
        assert!(extract_windows(&ts, 0, &WindowConfig::default()).is_empty());
        let mut out = Vec::new();
        extract_window_values_into(&ts, &WindowConfig::default(), Vec::new, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn values_into_matches_extract_windows_bitwise() {
        // Sweep the structural cases: short (padded), exact multiple,
        // stride-skipped tail, overlap — with and without z-norm, and with
        // recycled dirty buffers in the pool.
        let cfgs = [
            WindowConfig {
                length: 20,
                stride: 20,
                znormalize: false,
            },
            WindowConfig {
                length: 40,
                stride: 20,
                znormalize: true,
            },
            WindowConfig::default(),
        ];
        for n in [0usize, 7, 40, 100, 105, 128] {
            let ts = TimeSeries::new(
                "t",
                "D",
                (0..n)
                    .map(|i| (i as f64 * 0.37).sin() * 5.0 + 2.0)
                    .collect(),
                vec![],
            );
            for cfg in &cfgs {
                let reference = extract_windows(&ts, 0, cfg);
                // Pool primed with dirty buffers to prove recycling is inert.
                let mut pool: Vec<Vec<f32>> = (0..3)
                    .map(|_| {
                        let mut b = vec![99.0f32; 64];
                        b.clear();
                        b
                    })
                    .collect();
                let mut out = Vec::new();
                extract_window_values_into(&ts, cfg, || pool.pop().unwrap_or_default(), &mut out);
                assert_eq!(out.len(), reference.len(), "n={n} cfg={cfg:?}");
                for (got, want) in out.iter().zip(&reference) {
                    assert_eq!(got.len(), want.values.len());
                    assert!(
                        got.iter()
                            .zip(&want.values)
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "pooled extraction diverged at n={n} cfg={cfg:?}"
                    );
                }
            }
        }
    }
}
