//! Anomaly taxonomy and injection.
//!
//! Each [`AnomalyKind`] distorts a clean base signal in a way that favours a
//! different class of detector, which is what makes model selection a
//! non-trivial problem on the synthetic benchmark:
//!
//! | Kind | Typical winner class |
//! |---|---|
//! | `Spike` / `Dip` | value-density detectors (IForest1, HBOS) |
//! | `LevelShift` | distribution / projection detectors (PCA, HBOS) |
//! | `NoiseBurst` | boundary / reconstruction detectors (OCSVM, AE) |
//! | `Flatline` | discord detectors (MP, NORMA) |
//! | `PatternDistortion` | discord / normal-pattern detectors (MP, NORMA) |
//! | `FrequencyShift` | forecasting detectors (LSTM-AD, CNN) |
//! | `TrendBreak` | regression detectors (POLY) |
//! | `AmplitudeChange` | normal-pattern detectors (NORMA, AE) |

use rand::rngs::StdRng;
use rand::Rng;

/// The type of an injected anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// Isolated extreme high values (1–3 points).
    Spike,
    /// Isolated extreme low values (1–3 points).
    Dip,
    /// The signal mean jumps for the duration of the interval.
    LevelShift,
    /// White noise of large variance is added over the interval.
    NoiseBurst,
    /// The signal freezes at a constant value.
    Flatline,
    /// A periodic cycle is replaced by a distorted version (e.g. premature
    /// contraction in ECG).
    PatternDistortion,
    /// The local oscillation frequency changes.
    FrequencyShift,
    /// The local trend slope changes abruptly.
    TrendBreak,
    /// The local amplitude is scaled up or down.
    AmplitudeChange,
}

impl AnomalyKind {
    /// All kinds, for enumeration in tests.
    pub const ALL: [AnomalyKind; 9] = [
        AnomalyKind::Spike,
        AnomalyKind::Dip,
        AnomalyKind::LevelShift,
        AnomalyKind::NoiseBurst,
        AnomalyKind::Flatline,
        AnomalyKind::PatternDistortion,
        AnomalyKind::FrequencyShift,
        AnomalyKind::TrendBreak,
        AnomalyKind::AmplitudeChange,
    ];

    /// A short stable name.
    pub fn name(&self) -> &'static str {
        match self {
            AnomalyKind::Spike => "spike",
            AnomalyKind::Dip => "dip",
            AnomalyKind::LevelShift => "level_shift",
            AnomalyKind::NoiseBurst => "noise_burst",
            AnomalyKind::Flatline => "flatline",
            AnomalyKind::PatternDistortion => "pattern_distortion",
            AnomalyKind::FrequencyShift => "frequency_shift",
            AnomalyKind::TrendBreak => "trend_break",
            AnomalyKind::AmplitudeChange => "amplitude_change",
        }
    }

    /// Default interval length range (in points) for this kind, given the
    /// base period of the signal.
    pub fn length_range(&self, period: usize) -> (usize, usize) {
        match self {
            AnomalyKind::Spike | AnomalyKind::Dip => (1, 3),
            AnomalyKind::LevelShift => (period, 3 * period),
            AnomalyKind::NoiseBurst => (period / 2 + 1, 2 * period),
            AnomalyKind::Flatline => (period / 2 + 1, 2 * period),
            AnomalyKind::PatternDistortion => (period.max(4), 2 * period),
            AnomalyKind::FrequencyShift => (period, 3 * period),
            AnomalyKind::TrendBreak => (period, 3 * period),
            AnomalyKind::AmplitudeChange => (period, 2 * period),
        }
    }
}

/// A labeled anomaly occupying `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnomalyInterval {
    /// First anomalous index.
    pub start: usize,
    /// One past the last anomalous index.
    pub end: usize,
    /// What was injected.
    pub kind: AnomalyKind,
}

impl AnomalyInterval {
    /// Interval length in points.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// True if `t` lies inside the interval.
    pub fn contains(&self, t: usize) -> bool {
        t >= self.start && t < self.end
    }
}

/// Applies the distortion of `kind` to `values[start..end]` in place.
///
/// `scale` is the characteristic amplitude of the clean signal (used to size
/// the distortion) and `period` its base period.
pub fn inject(
    values: &mut [f64],
    kind: AnomalyKind,
    start: usize,
    end: usize,
    scale: f64,
    period: usize,
    rng: &mut StdRng,
) {
    let end = end.min(values.len());
    if start >= end {
        return;
    }
    let seg = &mut values[start..end];
    let n = seg.len();
    match kind {
        AnomalyKind::Spike => {
            let magnitude = scale * rng.random_range(3.0..6.0);
            for v in seg.iter_mut() {
                *v += magnitude;
            }
        }
        AnomalyKind::Dip => {
            let magnitude = scale * rng.random_range(3.0..6.0);
            for v in seg.iter_mut() {
                *v -= magnitude;
            }
        }
        AnomalyKind::LevelShift => {
            let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
            let magnitude = sign * scale * rng.random_range(1.5..3.0);
            for v in seg.iter_mut() {
                *v += magnitude;
            }
        }
        AnomalyKind::NoiseBurst => {
            let sigma = scale * rng.random_range(1.5..3.0);
            for v in seg.iter_mut() {
                *v += sigma * gaussian(rng);
            }
        }
        AnomalyKind::Flatline => {
            let level = seg[0];
            for v in seg.iter_mut() {
                *v = level;
            }
        }
        AnomalyKind::PatternDistortion => {
            // Replace the segment with a compressed + inverted echo of
            // itself plus a bump — structurally wrong, value range similar.
            let bump_center = n as f64 / 2.0;
            let width = (n as f64 / 4.0).max(1.0);
            let original: Vec<f64> = seg.to_vec();
            for (i, v) in seg.iter_mut().enumerate() {
                let src = (i * 2) % n;
                let bump = scale * 1.5 * (-((i as f64 - bump_center) / width).powi(2)).exp();
                *v = -0.6 * original[src] + 0.4 * original[i] + bump;
            }
        }
        AnomalyKind::FrequencyShift => {
            // Resample the segment at double speed (reads past the segment
            // are clamped), doubling the local frequency.
            let original: Vec<f64> = seg.to_vec();
            for (i, v) in seg.iter_mut().enumerate() {
                let src = (i * 2).min(n - 1);
                *v = original[src];
            }
            let _ = period;
        }
        AnomalyKind::TrendBreak => {
            let slope = scale
                * rng.random_range(0.05..0.15)
                * if rng.random_bool(0.5) { 1.0 } else { -1.0 };
            for (i, v) in seg.iter_mut().enumerate() {
                *v += slope * i as f64;
            }
        }
        AnomalyKind::AmplitudeChange => {
            let factor = if rng.random_bool(0.5) {
                rng.random_range(2.0..3.5)
            } else {
                rng.random_range(0.05..0.3)
            };
            let mean: f64 = seg.iter().sum::<f64>() / n as f64;
            for v in seg.iter_mut() {
                *v = mean + (*v - mean) * factor;
            }
        }
    }
}

/// Box–Muller standard Gaussian.
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sine(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 20.0).sin())
            .collect()
    }

    #[test]
    fn spike_raises_values() {
        let mut v = sine(100);
        let before = v[50];
        let mut rng = StdRng::seed_from_u64(1);
        inject(&mut v, AnomalyKind::Spike, 50, 52, 1.0, 20, &mut rng);
        assert!(v[50] > before + 2.0);
        // Outside the interval untouched.
        assert_eq!(v[49], sine(100)[49]);
    }

    #[test]
    fn flatline_freezes_segment() {
        let mut v = sine(100);
        let mut rng = StdRng::seed_from_u64(2);
        inject(&mut v, AnomalyKind::Flatline, 30, 50, 1.0, 20, &mut rng);
        let first = v[30];
        assert!(v[30..50].iter().all(|&x| x == first));
    }

    #[test]
    fn level_shift_moves_mean() {
        let mut v = sine(200);
        let mut rng = StdRng::seed_from_u64(3);
        inject(&mut v, AnomalyKind::LevelShift, 100, 140, 1.0, 20, &mut rng);
        let shifted_mean: f64 = v[100..140].iter().sum::<f64>() / 40.0;
        assert!(shifted_mean.abs() > 1.0, "mean={shifted_mean}");
    }

    #[test]
    fn noise_burst_raises_variance() {
        let mut v = vec![0.0; 200];
        let mut rng = StdRng::seed_from_u64(4);
        inject(&mut v, AnomalyKind::NoiseBurst, 50, 150, 1.0, 20, &mut rng);
        let var: f64 = v[50..150].iter().map(|x| x * x).sum::<f64>() / 100.0;
        assert!(var > 0.5, "var={var}");
        assert!(v[..50].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn amplitude_change_scales_around_mean() {
        let mut v = sine(200);
        let mut rng = StdRng::seed_from_u64(5);
        inject(
            &mut v,
            AnomalyKind::AmplitudeChange,
            60,
            100,
            1.0,
            20,
            &mut rng,
        );
        let max_inside = v[60..100].iter().cloned().fold(f64::MIN, f64::max).abs();
        assert!(!(0.5..=1.5).contains(&max_inside), "max={max_inside}");
    }

    #[test]
    fn out_of_range_injection_is_clipped() {
        let mut v = sine(50);
        let mut rng = StdRng::seed_from_u64(6);
        inject(&mut v, AnomalyKind::Spike, 45, 500, 1.0, 20, &mut rng);
        assert_eq!(v.len(), 50);
        inject(&mut v, AnomalyKind::Spike, 60, 70, 1.0, 20, &mut rng); // no-op
    }

    #[test]
    fn all_kinds_produce_finite_values() {
        let mut rng = StdRng::seed_from_u64(7);
        for kind in AnomalyKind::ALL {
            let mut v = sine(300);
            inject(&mut v, kind, 100, 160, 1.0, 20, &mut rng);
            assert!(v.iter().all(|x| x.is_finite()), "{kind:?}");
        }
    }

    #[test]
    fn length_ranges_are_valid() {
        for kind in AnomalyKind::ALL {
            let (lo, hi) = kind.length_range(32);
            assert!(lo >= 1 && lo <= hi, "{kind:?}: {lo}..{hi}");
        }
    }
}
