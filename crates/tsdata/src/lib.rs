//! Time-series containers and the synthetic TSB-UAD-like benchmark.
//!
//! The paper evaluates on 16 subsets of the TSB-UAD benchmark (Table 4).
//! Those datasets cannot be redistributed inside this offline environment, so
//! this crate generates a *synthetic stand-in benchmark* with 16 dataset
//! **families** named and parameterised after the TSB-UAD subsets: each
//! family has a characteristic base signal (ECG-like beat trains,
//! Mackey–Glass chaos, server KPIs, daily traffic pulses, …) and a
//! characteristic anomaly profile (point spikes, distorted cycles, level
//! shifts, noise bursts, flatlines, …).
//!
//! The property the model-selection experiments need — *different TSAD
//! detectors win on different data* — is preserved by construction: point
//! anomalies in noisy KPIs favour density/histogram detectors, subsequence
//! anomalies in periodic signals favour discord/pattern detectors, trend
//! breaks favour forecasting detectors, and so on. See DESIGN.md for the
//! substitution rationale.
//!
//! Everything is deterministic given a seed.

pub mod anomaly;
pub mod benchmark;
pub mod families;
pub mod series;
pub mod signal;
pub mod stream;
pub mod windows;

pub use anomaly::{AnomalyInterval, AnomalyKind};
pub use benchmark::{Benchmark, BenchmarkConfig};
pub use families::{all_families, test_family_names, DatasetFamily};
pub use series::TimeSeries;
pub use stream::StreamWindower;
pub use windows::{extract_window_values_into, extract_windows, Window, WindowConfig};
