//! Incremental window extraction over an append-only sample stream.
//!
//! [`StreamWindower`] is the streaming twin of [`extract_windows`]: samples
//! arrive in chunks of any size, and every window whose span is complete is
//! emitted exactly once, z-normalised by the same kernel as the batch path.
//! History is never re-windowed — an append only touches the retained
//! suffix — and the retained buffer is bounded by one window length
//! regardless of how long the stream runs.
//!
//! # Batch-equivalence contract
//!
//! At **every** append boundary,
//!
//! ```text
//! emitted-so-far ++ tail_windows()  ==  extract_windows(prefix)
//! ```
//!
//! bitwise — same starts, same `f64 → f32` conversion, same z-norm bits —
//! where `prefix` is a [`TimeSeries`] holding every sample appended so far.
//! [`StreamWindower::append`] returns the newly completed *stride-grid*
//! windows (starts at multiples of `stride`); [`StreamWindower::tail_windows`]
//! returns the zero-or-one completion window the batch extractor adds beyond
//! the grid — the edge-padded window while the stream is still shorter than
//! one window length, or the tail window when the stride grid has skipped
//! the newest samples. Grid windows are final the moment they are returned;
//! the completion window is a *view* of the current prefix and changes as
//! the stream grows, which is why it is returned by a separate
//! non-consuming call instead of being mixed into the append stream.
//!
//! `crates/tsdata/tests/window_props.rs` pins the contract across
//! n × length × stride × append-chunking sweeps; the serving-side consumer
//! is `kdselector_core::stream::StreamIngestor`.

use crate::series::TimeSeries;
use crate::windows::{extract_windows, Window, WindowConfig};

/// Incremental, bounded-memory window extraction for one append-only
/// stream. See the [module docs](self) for the batch-equivalence contract.
#[derive(Debug, Clone)]
pub struct StreamWindower {
    cfg: WindowConfig,
    series_index: usize,
    /// Retained suffix of the stream: `buf[0]` is absolute sample
    /// `buf_start`. Holds at most `cfg.length` samples between appends.
    buf: Vec<f64>,
    buf_start: usize,
    /// Absolute start of the next stride-grid window.
    next_start: usize,
    /// Total samples appended so far.
    total: usize,
    /// Grid windows emitted so far.
    emitted: usize,
}

impl StreamWindower {
    /// New windower for stream `series_index` (the index stamped on every
    /// emitted [`Window`], like the batch extractor's parameter).
    ///
    /// # Panics
    /// Panics if `cfg.length` or `cfg.stride` is zero (same contract as
    /// [`extract_windows`]).
    pub fn new(series_index: usize, cfg: WindowConfig) -> Self {
        assert!(
            cfg.length > 0 && cfg.stride > 0,
            "length and stride must be positive"
        );
        Self {
            cfg,
            series_index,
            buf: Vec::new(),
            buf_start: 0,
            next_start: 0,
            total: 0,
            emitted: 0,
        }
    }

    /// The window configuration.
    pub fn config(&self) -> &WindowConfig {
        &self.cfg
    }

    /// Total samples appended so far.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether no samples have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Grid windows emitted by [`StreamWindower::append`] so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Samples currently buffered (bounded by `cfg.length` between
    /// appends — the memory contract).
    pub fn retained(&self) -> usize {
        self.buf.len()
    }

    /// Appends a chunk and returns every newly completed stride-grid
    /// window, in ascending start order. Each grid window is returned
    /// exactly once across the life of the stream, and its bits equal the
    /// corresponding window of [`extract_windows`] over the full series.
    pub fn append(&mut self, samples: &[f64]) -> Vec<Window> {
        self.buf.extend_from_slice(samples);
        self.total += samples.len();
        let mut out = Vec::new();
        while self.next_start + self.cfg.length <= self.total {
            let lo = self.next_start - self.buf_start;
            out.push(self.window_at(self.next_start, &self.buf[lo..lo + self.cfg.length]));
            self.next_start += self.cfg.stride;
            self.emitted += 1;
        }
        // Compact: keep the last `length` samples (the batch extractor's
        // tail/padded window needs them) — the emit loop above guarantees
        // `next_start > total - length`, so no future grid window reaches
        // further back than this.
        let keep_from = self.total.saturating_sub(self.cfg.length);
        if keep_from > self.buf_start {
            self.buf.drain(..keep_from - self.buf_start);
            self.buf_start = keep_from;
        }
        out
    }

    /// The zero-or-one window that completes the current prefix beyond the
    /// emitted grid: the edge-padded window while `len() < length`, or the
    /// tail window when the grid's last start falls short of
    /// `len() - length` (exactly the two extra cases of
    /// [`extract_windows`]). Empty when the stream is empty or the grid
    /// already ends flush with the newest sample. Non-consuming: this is a
    /// *view* of the current prefix and changes as the stream grows.
    pub fn tail_windows(&self) -> Vec<Window> {
        if self.total == 0 {
            return Vec::new();
        }
        if self.total < self.cfg.length {
            let mut values: Vec<f32> = self.buf.iter().map(|&v| v as f32).collect();
            values.resize(self.cfg.length, *values.last().expect("non-empty"));
            return vec![self.finish_window(0, values)];
        }
        let last_start = self.total - self.cfg.length;
        let last_grid = self.next_start.checked_sub(self.cfg.stride);
        if last_grid == Some(last_start) {
            return Vec::new();
        }
        let lo = last_start - self.buf_start;
        vec![self.window_at(last_start, &self.buf[lo..lo + self.cfg.length])]
    }

    /// The full prefix extraction: emitted grid windows are **not**
    /// re-derived (the caller accumulated them from
    /// [`StreamWindower::append`]); this helper only exists for tests and
    /// callers that want the count.
    pub fn prefix_window_count(&self) -> usize {
        self.emitted + self.tail_windows().len()
    }

    fn window_at(&self, start: usize, raw: &[f64]) -> Window {
        let values: Vec<f32> = raw.iter().map(|&v| v as f32).collect();
        self.finish_window(start, values)
    }

    fn finish_window(&self, start: usize, mut values: Vec<f32>) -> Window {
        if self.cfg.znormalize {
            crate::windows::znorm(&mut values);
        }
        Window {
            series_index: self.series_index,
            start,
            values,
        }
    }
}

/// Convenience reference implementation of the contract: batch-extracts a
/// full series (what a streaming run must reproduce bitwise).
pub fn batch_reference(values: &[f64], series_index: usize, cfg: &WindowConfig) -> Vec<Window> {
    let ts = TimeSeries::new("stream-reference", "stream", values.to_vec(), vec![]);
    extract_windows(&ts, series_index, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(length: usize, stride: usize, znormalize: bool) -> WindowConfig {
        WindowConfig {
            length,
            stride,
            znormalize,
        }
    }

    fn ramp(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.31).sin() * 2.0 + 0.1)
            .collect()
    }

    /// Streams `values` in `chunk`-sized appends and asserts the contract
    /// at every boundary.
    fn check_stream(values: &[f64], cfg: &WindowConfig, chunk: usize) {
        let mut sw = StreamWindower::new(3, *cfg);
        let mut emitted = Vec::new();
        let mut fed = 0;
        while fed < values.len() || fed == 0 {
            let end = (fed + chunk).min(values.len());
            emitted.extend(sw.append(&values[fed..end]));
            fed = end;
            let mut streamed = emitted.clone();
            streamed.extend(sw.tail_windows());
            let reference = batch_reference(&values[..fed], 3, cfg);
            assert_eq!(streamed.len(), reference.len(), "prefix {fed}");
            for (s, r) in streamed.iter().zip(&reference) {
                assert_eq!(s.start, r.start, "prefix {fed}");
                assert_eq!(s.series_index, r.series_index);
                assert!(
                    s.values
                        .iter()
                        .zip(&r.values)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "window at {} diverges at prefix {fed}",
                    s.start
                );
            }
            if fed == values.len() {
                break;
            }
        }
        assert!(
            sw.retained() <= cfg.length,
            "retained {} exceeds one window length {}",
            sw.retained(),
            cfg.length
        );
        assert_eq!(
            sw.prefix_window_count(),
            sw.emitted() + sw.tail_windows().len()
        );
    }

    #[test]
    fn streaming_matches_batch_at_every_boundary() {
        for &(n, l, s) in &[
            (100, 20, 20),
            (105, 20, 20),
            (97, 16, 8),
            (40, 64, 32),
            (64, 64, 64),
        ] {
            for chunk in [1, 3, 7, 64, 200] {
                check_stream(&ramp(n), &cfg(l, s, true), chunk);
                check_stream(&ramp(n), &cfg(l, s, false), chunk);
            }
        }
    }

    #[test]
    fn sparse_grid_stride_larger_than_length() {
        check_stream(&ramp(130), &cfg(16, 40, true), 9);
    }

    #[test]
    fn grid_windows_are_emitted_exactly_once() {
        let values = ramp(200);
        let mut sw = StreamWindower::new(0, cfg(20, 10, false));
        let mut starts = Vec::new();
        for chunk in values.chunks(17) {
            starts.extend(sw.append(chunk).iter().map(|w| w.start));
        }
        let mut dedup = starts.clone();
        dedup.dedup();
        assert_eq!(starts, dedup, "no duplicate grid emissions");
        assert_eq!(sw.emitted(), starts.len());
        assert!(starts.windows(2).all(|p| p[0] < p[1]), "ascending starts");
    }

    #[test]
    fn empty_stream_has_no_windows() {
        let sw = StreamWindower::new(0, cfg(8, 8, true));
        assert!(sw.is_empty());
        assert!(sw.tail_windows().is_empty());
        assert_eq!(sw.prefix_window_count(), 0);
    }

    #[test]
    fn short_stream_pads_like_batch() {
        let values = ramp(5);
        let mut sw = StreamWindower::new(7, cfg(12, 12, true));
        assert!(sw.append(&values).is_empty(), "no grid window yet");
        let tail = sw.tail_windows();
        assert_eq!(tail.len(), 1);
        let reference = batch_reference(&values, 7, &cfg(12, 12, true));
        assert_eq!(tail[0], reference[0]);
    }

    #[test]
    fn memory_stays_bounded_over_a_long_stream() {
        let mut sw = StreamWindower::new(0, cfg(64, 32, true));
        for chunk in ramp(100_000).chunks(257) {
            sw.append(chunk);
            assert!(sw.retained() <= 64 + 257, "mid-append bound");
        }
        assert!(sw.retained() <= 64, "steady-state bound is one window");
        assert_eq!(sw.len(), 100_000);
    }

    #[test]
    #[should_panic(expected = "length and stride must be positive")]
    fn zero_length_panics() {
        let _ = StreamWindower::new(0, cfg(0, 8, true));
    }
}
