//! The labeled time-series container.

use crate::anomaly::AnomalyInterval;

/// A univariate time series with point-wise anomaly ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Unique identifier, e.g. `"ECG-train-003"`.
    pub id: String,
    /// Name of the dataset family this series belongs to, e.g. `"ECG"`.
    pub dataset: String,
    /// The raw values.
    pub values: Vec<f64>,
    /// Labeled anomaly intervals (non-overlapping, sorted by start).
    pub anomalies: Vec<AnomalyInterval>,
}

impl TimeSeries {
    /// Creates a series, normalising the anomaly list (sorted, clipped to the
    /// series length, overlaps merged).
    pub fn new(
        id: impl Into<String>,
        dataset: impl Into<String>,
        values: Vec<f64>,
        mut anomalies: Vec<AnomalyInterval>,
    ) -> Self {
        let len = values.len();
        anomalies.retain(|a| a.start < len && a.start < a.end);
        for a in &mut anomalies {
            a.end = a.end.min(len);
        }
        anomalies.sort_by_key(|a| a.start);
        // Merge overlaps so labels are well defined.
        let mut merged: Vec<AnomalyInterval> = Vec::with_capacity(anomalies.len());
        for a in anomalies {
            match merged.last_mut() {
                Some(prev) if a.start <= prev.end => {
                    prev.end = prev.end.max(a.end);
                }
                _ => merged.push(a),
            }
        }
        Self {
            id: id.into(),
            dataset: dataset.into(),
            values,
            anomalies: merged,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Point-wise boolean anomaly labels.
    pub fn point_labels(&self) -> Vec<bool> {
        let mut labels = vec![false; self.values.len()];
        for a in &self.anomalies {
            for l in &mut labels[a.start..a.end] {
                *l = true;
            }
        }
        labels
    }

    /// Lengths of the labeled anomalies, in points (metadata input for MKI).
    pub fn anomaly_lengths(&self) -> Vec<usize> {
        self.anomalies.iter().map(|a| a.end - a.start).collect()
    }

    /// Fraction of points labeled anomalous.
    pub fn contamination(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let n: usize = self.anomalies.iter().map(|a| a.end - a.start).sum();
        n as f64 / self.values.len() as f64
    }

    /// True if the point at `t` lies inside a labeled anomaly.
    pub fn is_anomalous_at(&self, t: usize) -> bool {
        self.anomalies.iter().any(|a| a.contains(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::AnomalyKind;

    fn interval(start: usize, end: usize) -> AnomalyInterval {
        AnomalyInterval {
            start,
            end,
            kind: AnomalyKind::Spike,
        }
    }

    #[test]
    fn point_labels_mark_intervals() {
        let ts = TimeSeries::new(
            "t",
            "D",
            vec![0.0; 10],
            vec![interval(2, 4), interval(7, 8)],
        );
        let labels = ts.point_labels();
        assert_eq!(
            labels,
            vec![false, false, true, true, false, false, false, true, false, false]
        );
    }

    #[test]
    fn overlapping_intervals_are_merged() {
        let ts = TimeSeries::new(
            "t",
            "D",
            vec![0.0; 10],
            vec![interval(2, 5), interval(4, 7)],
        );
        assert_eq!(ts.anomalies.len(), 1);
        assert_eq!((ts.anomalies[0].start, ts.anomalies[0].end), (2, 7));
    }

    #[test]
    fn intervals_clipped_to_length() {
        let ts = TimeSeries::new("t", "D", vec![0.0; 5], vec![interval(3, 100)]);
        assert_eq!(ts.anomalies[0].end, 5);
        let ts2 = TimeSeries::new("t", "D", vec![0.0; 5], vec![interval(10, 20)]);
        assert!(ts2.anomalies.is_empty());
    }

    #[test]
    fn contamination_fraction() {
        let ts = TimeSeries::new("t", "D", vec![0.0; 10], vec![interval(0, 2)]);
        assert!((ts.contamination() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn anomaly_lengths_reported() {
        let ts = TimeSeries::new(
            "t",
            "D",
            vec![0.0; 20],
            vec![interval(1, 4), interval(10, 15)],
        );
        assert_eq!(ts.anomaly_lengths(), vec![3, 5]);
    }
}
