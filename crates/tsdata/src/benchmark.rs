//! Benchmark assembly: families → labeled train/test series.

use crate::anomaly::{gaussian, inject, AnomalyInterval, AnomalyKind};
use crate::families::{all_families, DatasetFamily};
use crate::series::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size and seed parameters of a benchmark instantiation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchmarkConfig {
    /// Training series generated per family.
    pub train_series_per_family: usize,
    /// Test series generated per family (only `in_test_split` families).
    pub test_series_per_family: usize,
    /// Points per series.
    pub series_length: usize,
    /// Master seed; every series derives its own stream from it.
    pub seed: u64,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        Self {
            train_series_per_family: 12,
            test_series_per_family: 6,
            series_length: 1200,
            seed: 7,
        }
    }
}

impl BenchmarkConfig {
    /// A small configuration for unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            train_series_per_family: 2,
            test_series_per_family: 1,
            series_length: 400,
            seed: 7,
        }
    }

    /// A stable fingerprint of the configuration, used as the cache key for
    /// expensive derived artifacts (detector label matrices).
    pub fn fingerprint(&self) -> String {
        format!(
            "bench-t{}-e{}-l{}-s{}",
            self.train_series_per_family,
            self.test_series_per_family,
            self.series_length,
            self.seed
        )
    }
}

/// A generated benchmark: labeled train and test series across families.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Configuration that produced this benchmark.
    pub config: BenchmarkConfig,
    /// Training series (all 16 families).
    pub train: Vec<TimeSeries>,
    /// Test series (14 test-split families).
    pub test: Vec<TimeSeries>,
}

impl Benchmark {
    /// Generates the benchmark deterministically from its config.
    pub fn generate(config: BenchmarkConfig) -> Self {
        let families = all_families();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (fi, family) in families.iter().enumerate() {
            for s in 0..config.train_series_per_family {
                let seed = derive_seed(config.seed, fi as u64, s as u64, 0);
                train.push(generate_series(
                    family,
                    config.series_length,
                    seed,
                    &format!("{}-train-{s:03}", family.name),
                ));
            }
            if family.in_test_split {
                for s in 0..config.test_series_per_family {
                    let seed = derive_seed(config.seed, fi as u64, s as u64, 1);
                    test.push(generate_series(
                        family,
                        config.series_length,
                        seed,
                        &format!("{}-test-{s:03}", family.name),
                    ));
                }
            }
        }
        Self {
            config,
            train,
            test,
        }
    }

    /// Test series grouped by dataset family, in family order.
    pub fn test_by_family(&self) -> Vec<(&str, Vec<&TimeSeries>)> {
        let mut out: Vec<(&str, Vec<&TimeSeries>)> = Vec::new();
        for ts in &self.test {
            match out.iter_mut().find(|(name, _)| *name == ts.dataset) {
                Some((_, list)) => list.push(ts),
                None => out.push((ts.dataset.as_str(), vec![ts])),
            }
        }
        out
    }
}

/// Mixes the master seed with indices (splitmix-style) for stable per-series
/// streams that do not depend on generation order.
fn derive_seed(master: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut x = master
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ c.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x
}

/// Generates one labeled series of a family.
pub fn generate_series(family: &DatasetFamily, length: usize, seed: u64, id: &str) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = family.base.generate(length, &mut rng);
    let period = family.base.period();

    // Characteristic amplitude of the clean signal, for sizing distortions.
    let mean = values.iter().sum::<f64>() / length as f64;
    let scale = (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / length as f64)
        .sqrt()
        .max(0.1);

    // Observation noise.
    let sigma = family.noise_level * scale;
    if sigma > 0.0 {
        for v in values.iter_mut() {
            *v += sigma * gaussian(&mut rng);
        }
    }

    // Sample anomaly intervals: count, kinds, non-overlapping placements.
    let n_anomalies = rng.random_range(1..=family.max_anomalies);
    let mut intervals: Vec<AnomalyInterval> = Vec::new();
    let mut attempts = 0;
    while intervals.len() < n_anomalies && attempts < 50 {
        attempts += 1;
        let kind = sample_kind(family, &mut rng);
        let (lo, hi) = kind.length_range(period);
        let max_len = (length / 6).max(2);
        let len = rng.random_range(lo..=hi.max(lo)).min(max_len);
        let margin = (length / 20).max(2);
        if length <= 2 * margin + len {
            break;
        }
        let start = rng.random_range(margin..length - margin - len);
        let end = start + len;
        // Keep a gap of one period between anomalies so labels stay crisp.
        let gap = period;
        if intervals
            .iter()
            .any(|iv| start < iv.end + gap && iv.start < end + gap)
        {
            continue;
        }
        intervals.push(AnomalyInterval { start, end, kind });
    }

    for iv in &intervals {
        inject(
            &mut values,
            iv.kind,
            iv.start,
            iv.end,
            scale,
            period,
            &mut rng,
        );
    }

    TimeSeries::new(id, family.name, values, intervals)
}

fn sample_kind(family: &DatasetFamily, rng: &mut StdRng) -> AnomalyKind {
    let total: f64 = family.anomaly_profile.iter().map(|(_, w)| w).sum();
    let mut pick = rng.random_range(0.0..total);
    for &(kind, w) in family.anomaly_profile {
        if pick < w {
            return kind;
        }
        pick -= w;
    }
    family.anomaly_profile.last().expect("non-empty profile").0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_has_expected_counts() {
        let cfg = BenchmarkConfig::tiny();
        let b = Benchmark::generate(cfg);
        assert_eq!(b.train.len(), 16 * cfg.train_series_per_family);
        assert_eq!(b.test.len(), 14 * cfg.test_series_per_family);
    }

    #[test]
    fn every_series_has_at_least_one_anomaly() {
        let b = Benchmark::generate(BenchmarkConfig::tiny());
        for ts in b.train.iter().chain(&b.test) {
            assert!(!ts.anomalies.is_empty(), "{} has no anomalies", ts.id);
            assert!(ts.contamination() < 0.5, "{} too contaminated", ts.id);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Benchmark::generate(BenchmarkConfig::tiny());
        let b = Benchmark::generate(BenchmarkConfig::tiny());
        assert_eq!(a.train[3].values, b.train[3].values);
        assert_eq!(a.test[5].anomalies, b.test[5].anomalies);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = BenchmarkConfig::tiny();
        let a = Benchmark::generate(cfg);
        cfg.seed = 99;
        let b = Benchmark::generate(cfg);
        assert_ne!(a.train[0].values, b.train[0].values);
    }

    #[test]
    fn test_by_family_covers_fourteen_families() {
        let b = Benchmark::generate(BenchmarkConfig::tiny());
        let grouped = b.test_by_family();
        assert_eq!(grouped.len(), 14);
        for (_, list) in &grouped {
            assert_eq!(list.len(), 1);
        }
    }

    #[test]
    fn anomalies_do_not_overlap() {
        let b = Benchmark::generate(BenchmarkConfig::default());
        for ts in &b.train {
            for pair in ts.anomalies.windows(2) {
                assert!(pair[0].end <= pair[1].start, "{}: overlap", ts.id);
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = BenchmarkConfig::default().fingerprint();
        let cfg = BenchmarkConfig {
            seed: 8,
            ..BenchmarkConfig::default()
        };
        assert_ne!(a, cfg.fingerprint());
    }

    #[test]
    fn ids_encode_family_and_split() {
        let b = Benchmark::generate(BenchmarkConfig::tiny());
        assert!(b.train.iter().any(|t| t.id.starts_with("ECG-train-")));
        assert!(b.test.iter().any(|t| t.id.starts_with("YAHOO-test-")));
    }
}
