//! The 16 dataset families mirroring the TSB-UAD subsets of Table 4.

use crate::anomaly::AnomalyKind;
use crate::signal::BaseSignal;

/// Configuration of one synthetic dataset family.
#[derive(Debug, Clone)]
pub struct DatasetFamily {
    /// Family name (matches the TSB-UAD subset it stands in for).
    pub name: &'static str,
    /// Domain description used verbatim in the MKI metadata text
    /// (abridged from Table 4 of the paper).
    pub description: &'static str,
    /// Clean base signal.
    pub base: BaseSignal,
    /// Anomaly kinds this family exhibits, with sampling weights.
    pub anomaly_profile: &'static [(AnomalyKind, f64)],
    /// Expected number of anomalies per series (1..=this).
    pub max_anomalies: usize,
    /// Observation noise standard deviation relative to signal scale.
    pub noise_level: f64,
    /// Whether series from this family appear in the test split
    /// (the paper trains on all 16 subsets but tests on 14).
    pub in_test_split: bool,
}

/// All 16 families in a stable order.
pub fn all_families() -> Vec<DatasetFamily> {
    use AnomalyKind::*;
    vec![
        DatasetFamily {
            name: "Dodgers",
            description: "a loop sensor data for the Glendale on-ramp for the 101 North freeway in Los Angeles",
            base: BaseSignal::PulseTrain { period: 60, duty: 0.45 },
            anomaly_profile: &[(AmplitudeChange, 0.5), (Spike, 0.3), (LevelShift, 0.2)],
            max_anomalies: 3,
            noise_level: 0.08,
            in_test_split: false,
        },
        DatasetFamily {
            name: "ECG",
            description: "a standard electrocardiogram dataset where the anomalies represent ventricular premature contractions",
            base: BaseSignal::EcgBeat { period: 48 },
            anomaly_profile: &[(PatternDistortion, 0.8), (Flatline, 0.2)],
            max_anomalies: 3,
            noise_level: 0.03,
            in_test_split: true,
        },
        DatasetFamily {
            name: "IOPS",
            description: "a dataset with performance indicators that reflect the scale, quality of web services, and health status of a machine",
            base: BaseSignal::Ar1 { phi: 0.92, drift: 0.0 },
            anomaly_profile: &[(Spike, 0.45), (LevelShift, 0.35), (Dip, 0.2)],
            max_anomalies: 4,
            noise_level: 0.10,
            in_test_split: true,
        },
        DatasetFamily {
            name: "KDD21",
            description: "a composite dataset released in a recent SIGKDD 2021 competition with 250 time series",
            base: BaseSignal::SineMix { period: 36, harmonics: 2 },
            anomaly_profile: &[
                (PatternDistortion, 0.3),
                (Spike, 0.2),
                (FrequencyShift, 0.2),
                (NoiseBurst, 0.15),
                (LevelShift, 0.15),
            ],
            max_anomalies: 2,
            noise_level: 0.06,
            in_test_split: true,
        },
        DatasetFamily {
            name: "MGAB",
            description: "composed of Mackey-Glass time series with non-trivial anomalies that exhibit chaotic behavior difficult for the human eye to distinguish",
            base: BaseSignal::MackeyGlass,
            anomaly_profile: &[(PatternDistortion, 0.6), (FrequencyShift, 0.4)],
            max_anomalies: 2,
            noise_level: 0.01,
            in_test_split: true,
        },
        DatasetFamily {
            name: "NAB",
            description: "composed of labeled real-world and artificial time series including AWS server metrics, online advertisement clicking rates, real time traffic data, and Twitter mentions",
            base: BaseSignal::Ar1 { phi: 0.85, drift: 0.0002 },
            anomaly_profile: &[(Spike, 0.35), (LevelShift, 0.3), (NoiseBurst, 0.2), (Dip, 0.15)],
            max_anomalies: 3,
            noise_level: 0.12,
            in_test_split: true,
        },
        DatasetFamily {
            name: "SensorScope",
            description: "a collection of environmental data, such as temperature, humidity, and solar radiation, collected from a tiered sensor measurement system",
            base: BaseSignal::SineMix { period: 96, harmonics: 1 },
            anomaly_profile: &[(Flatline, 0.4), (Spike, 0.3), (NoiseBurst, 0.3)],
            max_anomalies: 3,
            noise_level: 0.10,
            in_test_split: true,
        },
        DatasetFamily {
            name: "YAHOO",
            description: "a dataset published by Yahoo labs consisting of real and synthetic time series based on the real production traffic to Yahoo production systems",
            base: BaseSignal::SineMix { period: 48, harmonics: 2 },
            anomaly_profile: &[(Spike, 0.4), (Dip, 0.25), (LevelShift, 0.2), (TrendBreak, 0.15)],
            max_anomalies: 4,
            noise_level: 0.07,
            in_test_split: true,
        },
        DatasetFamily {
            name: "Daphnet",
            description: "contains the annotated readings of acceleration sensors at the hip and leg of Parkinson's disease patients that experience freezing of gait during walking tasks",
            base: BaseSignal::SineMix { period: 20, harmonics: 3 },
            anomaly_profile: &[(Flatline, 0.45), (FrequencyShift, 0.35), (AmplitudeChange, 0.2)],
            max_anomalies: 3,
            noise_level: 0.15,
            in_test_split: true,
        },
        DatasetFamily {
            name: "GHL",
            description: "a Gasoil Heating Loop dataset containing the status of 3 reservoirs such as the temperature and level, where anomalies indicate changes in max temperature or pump frequency",
            base: BaseSignal::StepRegime { dwell: 80, levels: 3 },
            anomaly_profile: &[(TrendBreak, 0.4), (LevelShift, 0.35), (Spike, 0.25)],
            max_anomalies: 2,
            noise_level: 0.05,
            in_test_split: true,
        },
        DatasetFamily {
            name: "Genesis",
            description: "a portable pick-and-place demonstrator which uses an air tank to supply all the gripping and storage units",
            base: BaseSignal::PulseTrain { period: 40, duty: 0.3 },
            // "Stutter" anomalies of the demonstrator present as short
            // pattern distortions, so they share that kind.
            anomaly_profile: &[(PatternDistortion, 0.65), (Flatline, 0.35)],
            max_anomalies: 2,
            noise_level: 0.04,
            in_test_split: true,
        },
        DatasetFamily {
            name: "MITDB",
            description: "contains 48 half-hour excerpts of two-channel ambulatory ECG recordings obtained from 47 subjects studied by the BIH Arrhythmia Laboratory",
            base: BaseSignal::EcgBeat { period: 40 },
            anomaly_profile: &[(PatternDistortion, 0.6), (Spike, 0.2), (AmplitudeChange, 0.2)],
            max_anomalies: 4,
            noise_level: 0.08,
            in_test_split: true,
        },
        DatasetFamily {
            name: "OPPORTUNITY",
            description: "a dataset devised to benchmark human activity recognition algorithms comprising the readings of motion sensors recorded while users executed typical daily activities",
            base: BaseSignal::StepRegime { dwell: 50, levels: 5 },
            anomaly_profile: &[(NoiseBurst, 0.4), (LevelShift, 0.3), (Flatline, 0.3)],
            max_anomalies: 3,
            noise_level: 0.12,
            in_test_split: true,
        },
        DatasetFamily {
            name: "Occupancy",
            description: "contains experimental data used for binary classification of room occupancy from temperature, humidity, light, and CO2",
            base: BaseSignal::PulseTrain { period: 120, duty: 0.4 },
            anomaly_profile: &[(LevelShift, 0.45), (Spike, 0.3), (Flatline, 0.25)],
            max_anomalies: 2,
            noise_level: 0.06,
            in_test_split: false,
        },
        DatasetFamily {
            name: "SMD",
            description: "a 5-week-long dataset collected from a large Internet company containing 3 groups of entities from 28 different machines",
            base: BaseSignal::Ar1 { phi: 0.9, drift: 0.0 },
            anomaly_profile: &[(Spike, 0.3), (NoiseBurst, 0.3), (LevelShift, 0.25), (Dip, 0.15)],
            max_anomalies: 4,
            noise_level: 0.09,
            in_test_split: true,
        },
        DatasetFamily {
            name: "SVDB",
            description: "includes 78 half-hour ECG recordings chosen to supplement the examples of supraventricular arrhythmias in the MIT-BIH Arrhythmia Database",
            base: BaseSignal::EcgBeat { period: 32 },
            anomaly_profile: &[(PatternDistortion, 0.7), (FrequencyShift, 0.3)],
            max_anomalies: 4,
            noise_level: 0.05,
            in_test_split: true,
        },
    ]
}

/// Names of the 14 families used in the test split (the paper's Fig. 4).
pub fn test_family_names() -> Vec<&'static str> {
    all_families()
        .iter()
        .filter(|f| f.in_test_split)
        .map(|f| f.name)
        .collect()
}

/// Looks a family up by name.
pub fn family_by_name(name: &str) -> Option<DatasetFamily> {
    all_families().into_iter().find(|f| f.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_families_fourteen_in_test() {
        let fams = all_families();
        assert_eq!(fams.len(), 16);
        assert_eq!(test_family_names().len(), 14);
    }

    #[test]
    fn family_names_are_unique() {
        let fams = all_families();
        let names: std::collections::BTreeSet<_> = fams.iter().map(|f| f.name).collect();
        assert_eq!(names.len(), fams.len());
    }

    #[test]
    fn profiles_are_normalisable() {
        for f in all_families() {
            let total: f64 = f.anomaly_profile.iter().map(|(_, w)| w).sum();
            assert!(total > 0.0, "{}", f.name);
            assert!(f.max_anomalies >= 1, "{}", f.name);
            assert!(f.noise_level >= 0.0, "{}", f.name);
        }
    }

    #[test]
    fn excluded_families_match_paper() {
        let fams = all_families();
        let excluded: Vec<_> = fams
            .iter()
            .filter(|f| !f.in_test_split)
            .map(|f| f.name)
            .collect();
        assert_eq!(excluded, vec!["Dodgers", "Occupancy"]);
    }

    #[test]
    fn lookup_by_name() {
        assert!(family_by_name("ECG").is_some());
        assert!(family_by_name("nope").is_none());
    }
}
