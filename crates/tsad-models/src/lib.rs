//! The 12 TSAD models of the paper's model set (Table 5).
//!
//! Every detector consumes a univariate series and emits one anomaly score
//! per point (higher = more anomalous), min–max scaled to `[0, 1]` — the
//! TSB-UAD convention. The set mirrors Table 5:
//!
//! | Model | Mechanism |
//! |---|---|
//! | IForest | isolation forest on sliding windows |
//! | IForest1 | isolation forest on individual points |
//! | LOF | local outlier factor on windows |
//! | HBOS | histogram-based outlier score |
//! | MP | matrix profile (1-NN discord distance) |
//! | NORMA | clustering-based normal pattern + distance |
//! | PCA | projection reconstruction error |
//! | AE | MLP autoencoder reconstruction error |
//! | LSTM-AD | LSTM next-point forecasting error |
//! | POLY | polynomial extrapolation error |
//! | CNN | convolutional next-point forecasting error |
//! | OCSVM | one-class SVM boundary distance (RFF + linear, see DESIGN.md) |
//!
//! All detectors are deterministic given their seed.

pub mod ae;
pub mod cnn;
pub mod common;
pub mod hbos;
pub mod iforest;
pub mod lof;
pub mod lstm_ad;
pub mod mp;
pub mod norma;
pub mod ocsvm;
pub mod pca_detector;
pub mod poly;

use std::fmt;

/// Identifier of a TSAD model in the model set. Order matches the paper's
/// Table 5 and is the class order used by every selector.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum ModelId {
    /// Isolation forest on windows.
    IForest,
    /// Isolation forest on points.
    IForest1,
    /// Local outlier factor.
    Lof,
    /// Histogram-based outlier score.
    Hbos,
    /// Matrix profile.
    Mp,
    /// Normal-pattern clustering.
    Norma,
    /// PCA reconstruction.
    Pca,
    /// Autoencoder.
    Ae,
    /// LSTM forecasting.
    LstmAd,
    /// Polynomial extrapolation.
    Poly,
    /// CNN forecasting.
    Cnn,
    /// One-class SVM.
    Ocsvm,
}

impl ModelId {
    /// All 12 models in canonical order.
    pub const ALL: [ModelId; 12] = [
        ModelId::IForest,
        ModelId::IForest1,
        ModelId::Lof,
        ModelId::Hbos,
        ModelId::Mp,
        ModelId::Norma,
        ModelId::Pca,
        ModelId::Ae,
        ModelId::LstmAd,
        ModelId::Poly,
        ModelId::Cnn,
        ModelId::Ocsvm,
    ];

    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelId::IForest => "IForest",
            ModelId::IForest1 => "IForest1",
            ModelId::Lof => "LOF",
            ModelId::Hbos => "HBOS",
            ModelId::Mp => "MP",
            ModelId::Norma => "NORMA",
            ModelId::Pca => "PCA",
            ModelId::Ae => "AE",
            ModelId::LstmAd => "LSTM-AD",
            ModelId::Poly => "POLY",
            ModelId::Cnn => "CNN",
            ModelId::Ocsvm => "OCSVM",
        }
    }

    /// Index in [`ModelId::ALL`] (the selector class id).
    pub fn index(&self) -> usize {
        Self::ALL
            .iter()
            .position(|m| m == self)
            .expect("all ids enumerated")
    }

    /// Inverse of [`ModelId::index`].
    ///
    /// # Panics
    /// Panics if `index >= 12`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A time-series anomaly detector: scores every point of a series.
pub trait Detector: Send {
    /// Which model this is.
    fn id(&self) -> ModelId;

    /// Per-point anomaly scores in `[0, 1]`, same length as the input.
    ///
    /// Implementations must return all-zero scores (not panic) for series
    /// too short to process.
    fn score(&self, series: &[f64]) -> Vec<f64>;
}

/// Builds the full 12-model set with default parameters.
///
/// `seed` drives every stochastic component (forest sampling, NN init, …) so
/// label generation is reproducible.
pub fn default_model_set(seed: u64) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(iforest::IForest::windows(seed)),
        Box::new(iforest::IForest::points(seed ^ 1)),
        Box::new(lof::Lof::default_config()),
        Box::new(hbos::Hbos::default_config()),
        Box::new(mp::MatrixProfile::default_config()),
        Box::new(norma::Norma::new(seed ^ 2)),
        Box::new(pca_detector::PcaDetector::default_config()),
        Box::new(ae::AutoEncoder::new(seed ^ 3)),
        Box::new(lstm_ad::LstmAd::new(seed ^ 4)),
        Box::new(poly::Poly::default_config()),
        Box::new(cnn::CnnForecaster::new(seed ^ 5)),
        Box::new(ocsvm::OcSvm::new(seed ^ 6)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_models_in_canonical_order() {
        let set = default_model_set(7);
        assert_eq!(set.len(), 12);
        for (i, d) in set.iter().enumerate() {
            assert_eq!(d.id().index(), i);
        }
    }

    #[test]
    fn model_id_round_trips() {
        for id in ModelId::ALL {
            assert_eq!(ModelId::from_index(id.index()), id);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::BTreeSet<_> = ModelId::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 12);
    }
}
