//! POLY: polynomial extrapolation error.
//!
//! Fits a low-degree polynomial to each history window (least squares with a
//! small ridge term) and predicts the next point by extrapolation. Because
//! the time basis is identical for every window, the projection matrix
//! `(VᵀV + λI)⁻¹Vᵀ` is computed once and applied to each window.

use crate::common::normalize_scores;
use crate::{Detector, ModelId};
use tslinalg::decomp::solve_spd;
use tslinalg::stats;
use tslinalg::Matrix;

/// Polynomial-regression forecaster.
#[derive(Debug, Clone)]
pub struct Poly {
    history: usize,
    degree: usize,
}

impl Poly {
    /// Default configuration (window 24, degree 3).
    pub fn default_config() -> Self {
        Self {
            history: 24,
            degree: 3,
        }
    }

    /// Custom window and degree.
    ///
    /// # Panics
    /// Panics if `history <= degree`.
    pub fn with_params(history: usize, degree: usize) -> Self {
        assert!(history > degree, "history must exceed degree");
        Self { history, degree }
    }
}

impl Detector for Poly {
    fn id(&self) -> ModelId {
        ModelId::Poly
    }

    fn score(&self, series: &[f64]) -> Vec<f64> {
        let n = series.len();
        let p = self.history;
        if n < p + 2 {
            return vec![0.0; n];
        }
        let mut values = series.to_vec();
        stats::znormalize(&mut values);

        let k = self.degree + 1;
        // Vandermonde on normalised time t/p ∈ [0,1).
        let mut vander = Matrix::zeros(p, k);
        for t in 0..p {
            let x = t as f64 / p as f64;
            let mut pow = 1.0;
            for j in 0..k {
                vander[(t, j)] = pow;
                pow *= x;
            }
        }
        // Projection: coef = (VᵀV + λI)⁻¹ Vᵀ y, solved column by column once.
        let mut gram = vander.gram();
        gram.add_diagonal(1e-6);
        // proj is k×p: row j gives the weights mapping a window to coef j.
        let mut proj = Matrix::zeros(k, p);
        for t in 0..p {
            let mut unit = vec![0.0; p];
            unit[t] = 1.0;
            let rhs = vander.t_matvec(&unit);
            let col = solve_spd(&gram, &rhs).expect("ridge Vandermonde is SPD");
            for j in 0..k {
                proj[(j, t)] = col[j];
            }
        }
        // Extrapolation basis at x = 1 (the next point).
        let basis_next: Vec<f64> = (0..k).map(|j| 1.0f64.powi(j as i32)).collect(); // all ones, kept explicit for clarity

        let mut errors = vec![0.0f64; n];
        for t in p..n {
            let window = &values[t - p..t];
            let mut pred = 0.0;
            for (j, &basis) in basis_next.iter().enumerate() {
                let coef: f64 = proj.row(j).iter().zip(window).map(|(a, b)| a * b).sum();
                pred += coef * basis;
            }
            let e = values[t] - pred;
            errors[t] = e * e;
        }
        let head = errors[p];
        for e in errors.iter_mut().take(p) {
            *e = head;
        }
        normalize_scores(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_trend_is_predictable_spike_is_not() {
        let mut s: Vec<f64> = (0..300)
            .map(|t| 0.01 * t as f64 + (t as f64 * 0.05).sin())
            .collect();
        s[200] += 5.0;
        let scores = Poly::default_config().score(&s);
        assert_eq!(scores.len(), 300);
        let spike = scores[200];
        let normal = scores[100];
        assert!(spike > normal + 0.3, "spike={spike} normal={normal}");
    }

    #[test]
    fn trend_break_detected() {
        let mut s: Vec<f64> = (0..400).map(|t| 0.005 * t as f64).collect();
        for (off, t) in (250..320).enumerate() {
            s[t] += 0.2 * off as f64; // sudden steep slope
        }
        let scores = Poly::default_config().score(&s);
        let anom: f64 = scores[250..255].iter().cloned().fold(0.0, f64::max);
        let normal: f64 = scores[100..105].iter().cloned().fold(0.0, f64::max);
        assert!(anom > normal, "anom={anom} normal={normal}");
    }

    #[test]
    fn short_series_zeros() {
        assert!(Poly::default_config()
            .score(&[1.0; 10])
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic() {
        let s: Vec<f64> = (0..200).map(|t| (t as f64 * 0.17).sin()).collect();
        let d = Poly::default_config();
        assert_eq!(d.score(&s), d.score(&s));
    }
}
