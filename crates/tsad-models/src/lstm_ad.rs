//! LSTM-AD: next-point forecasting with an LSTM; errors flag anomalies.

use crate::common::normalize_scores;
use crate::{Detector, ModelId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tslinalg::stats;
use tsnn::layers::{Layer, Linear, Lstm};
use tsnn::loss::mse;
use tsnn::optim::Adam;
use tsnn::Tensor;

/// LSTM-AD detector: an LSTM consumes the previous `history` points and
/// predicts the next one; the squared prediction error is the anomaly score.
#[derive(Debug, Clone)]
pub struct LstmAd {
    seed: u64,
    history: usize,
    hidden: usize,
    epochs: usize,
    max_train_pairs: usize,
}

impl LstmAd {
    /// Default configuration.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            history: 24,
            hidden: 12,
            epochs: 12,
            max_train_pairs: 150,
        }
    }
}

struct Net {
    lstm: Lstm,
    head: Linear,
}

impl Net {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let h = self.lstm.forward(x, train);
        self.head.forward(&h, train)
    }

    fn backward(&mut self, grad: &Tensor) {
        let g = self.head.backward(grad);
        let _ = self.lstm.backward(&g);
    }

    fn params(&mut self) -> Vec<&mut tsnn::Param> {
        let mut p = self.lstm.params_mut();
        p.extend(self.head.params_mut());
        p
    }
}

impl Detector for LstmAd {
    fn id(&self) -> ModelId {
        ModelId::LstmAd
    }

    fn score(&self, series: &[f64]) -> Vec<f64> {
        let n = series.len();
        let p = self.history;
        if n < 2 * p + 4 {
            return vec![0.0; n];
        }
        // Standardise the series so the forecaster works on unit scale.
        let mut values: Vec<f64> = series.to_vec();
        stats::znormalize(&mut values);
        let values: Vec<f32> = values.iter().map(|&v| v as f32).collect();

        // Training pairs (window → next value), evenly subsampled.
        let all_targets: Vec<usize> = (p..n).collect();
        let step = all_targets.len().div_ceil(self.max_train_pairs).max(1);
        let train_targets: Vec<usize> = all_targets.iter().copied().step_by(step).collect();

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut net = Net {
            lstm: Lstm::new(1, self.hidden, &mut rng),
            head: Linear::new(self.hidden, 1, &mut rng),
        };
        let mut opt = Adam::new(0.01, 0.0);

        let make_batch = |targets: &[usize]| -> (Tensor, Tensor) {
            let mut xs = Vec::with_capacity(targets.len() * p);
            let mut ys = Vec::with_capacity(targets.len());
            for &t in targets {
                xs.extend_from_slice(&values[t - p..t]);
                ys.push(values[t]);
            }
            (
                Tensor::from_vec(&[targets.len(), p, 1], xs),
                Tensor::from_vec(&[targets.len(), 1], ys),
            )
        };

        let (x_train, y_train) = make_batch(&train_targets);
        for _ in 0..self.epochs {
            let pred = net.forward(&x_train, true);
            let out = mse(&pred, &y_train, None);
            for par in net.params() {
                par.zero_grad();
            }
            net.backward(&out.grad);
            opt.step(&mut net.params());
        }

        // Score every point; the first `p` points inherit the first score.
        let mut errors = vec![0.0f64; n];
        let chunk = 256;
        let mut t0 = p;
        while t0 < n {
            let t1 = (t0 + chunk).min(n);
            let targets: Vec<usize> = (t0..t1).collect();
            let (x, y) = make_batch(&targets);
            let pred = net.forward(&x, false);
            for (i, &t) in targets.iter().enumerate() {
                let e = (pred.row(i)[0] - y.row(i)[0]) as f64;
                errors[t] = e * e;
            }
            t0 = t1;
        }
        let head = errors[p];
        for e in errors.iter_mut().take(p) {
            *e = head;
        }
        normalize_scores(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecast_error_spikes_on_level_shift() {
        let mut s: Vec<f64> = (0..500)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 20.0).sin())
            .collect();
        for v in &mut s[300..330] {
            *v += 4.0;
        }
        let scores = LstmAd::new(1).score(&s);
        assert_eq!(scores.len(), 500);
        let anom: f64 = scores[298..332].iter().cloned().fold(0.0, f64::max);
        let normal: f64 = scores[100..130].iter().cloned().fold(0.0, f64::max);
        assert!(anom > normal, "anom={anom} normal={normal}");
    }

    #[test]
    fn deterministic_per_seed() {
        let s: Vec<f64> = (0..200).map(|t| (t as f64 * 0.25).sin()).collect();
        assert_eq!(LstmAd::new(7).score(&s), LstmAd::new(7).score(&s));
    }

    #[test]
    fn short_series_zeros() {
        assert!(LstmAd::new(0).score(&[1.0; 30]).iter().all(|&v| v == 0.0));
    }
}
