//! Isolation forest (Liu et al.) on windows (IForest) or points (IForest1).

use crate::common::{auto_window, normalize_scores, sliding_windows, window_scores_to_points};
use crate::{Detector, ModelId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Isolation forest detector.
///
/// `IForest` isolates sliding-window vectors; `IForest1` isolates individual
/// points (dimension 1), making it sensitive to global value outliers only.
#[derive(Debug, Clone)]
pub struct IForest {
    point_mode: bool,
    n_trees: usize,
    subsample: usize,
    seed: u64,
}

impl IForest {
    /// Window-mode forest (the `IForest` model).
    pub fn windows(seed: u64) -> Self {
        Self {
            point_mode: false,
            n_trees: 40,
            subsample: 128,
            seed,
        }
    }

    /// Point-mode forest (the `IForest1` model).
    pub fn points(seed: u64) -> Self {
        Self {
            point_mode: true,
            n_trees: 40,
            subsample: 128,
            seed,
        }
    }
}

/// One isolation tree: recursive random splits until isolation.
enum ITree {
    Leaf {
        size: usize,
    },
    Node {
        feature: usize,
        threshold: f64,
        left: Box<ITree>,
        right: Box<ITree>,
    },
}

impl ITree {
    fn build(data: &[&[f64]], depth: usize, max_depth: usize, rng: &mut StdRng) -> ITree {
        if data.len() <= 1 || depth >= max_depth {
            return ITree::Leaf { size: data.len() };
        }
        let d = data[0].len();
        // Try a few random features looking for one with spread.
        for _ in 0..4 {
            let feature = rng.random_range(0..d);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for row in data {
                let v = row[feature];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo < 1e-12 {
                continue;
            }
            let threshold = rng.random_range(lo..hi);
            let left: Vec<&[f64]> = data
                .iter()
                .copied()
                .filter(|r| r[feature] < threshold)
                .collect();
            let right: Vec<&[f64]> = data
                .iter()
                .copied()
                .filter(|r| r[feature] >= threshold)
                .collect();
            if left.is_empty() || right.is_empty() {
                continue;
            }
            return ITree::Node {
                feature,
                threshold,
                left: Box::new(ITree::build(&left, depth + 1, max_depth, rng)),
                right: Box::new(ITree::build(&right, depth + 1, max_depth, rng)),
            };
        }
        ITree::Leaf { size: data.len() }
    }

    fn path_length(&self, x: &[f64], depth: f64) -> f64 {
        match self {
            ITree::Leaf { size } => depth + c_factor(*size),
            ITree::Node {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] < *threshold {
                    left.path_length(x, depth + 1.0)
                } else {
                    right.path_length(x, depth + 1.0)
                }
            }
        }
    }
}

/// Average path length of an unsuccessful BST search — the normaliser of the
/// isolation-forest score.
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * ((n - 1.0).ln() + 0.577_215_664_9) - 2.0 * (n - 1.0) / n
}

fn forest_scores(rows: &[Vec<f64>], n_trees: usize, subsample: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows.len();
    let sub = subsample.min(n).max(2);
    let max_depth = (sub as f64).log2().ceil() as usize + 1;
    let mut trees = Vec::with_capacity(n_trees);
    for _ in 0..n_trees {
        let sample: Vec<&[f64]> = (0..sub)
            .map(|_| rows[rng.random_range(0..n)].as_slice())
            .collect();
        trees.push(ITree::build(&sample, 0, max_depth, &mut rng));
    }
    let c = c_factor(sub);
    rows.iter()
        .map(|row| {
            let avg: f64 =
                trees.iter().map(|t| t.path_length(row, 0.0)).sum::<f64>() / n_trees as f64;
            // s = 2^(−avg/c): deep isolation ⇒ small score; invert convention
            // is already "higher = anomalous" because short paths → s near 1.
            2f64.powf(-avg / c.max(1e-9))
        })
        .collect()
}

impl Detector for IForest {
    fn id(&self) -> ModelId {
        if self.point_mode {
            ModelId::IForest1
        } else {
            ModelId::IForest
        }
    }

    fn score(&self, series: &[f64]) -> Vec<f64> {
        let n = series.len();
        if n == 0 {
            return Vec::new();
        }
        if self.point_mode {
            let rows: Vec<Vec<f64>> = series.iter().map(|&v| vec![v]).collect();
            return normalize_scores(forest_scores(
                &rows,
                self.n_trees,
                self.subsample,
                self.seed,
            ));
        }
        let w = auto_window(series);
        let stride = (w / 4).max(1);
        let windows = sliding_windows(series, w, stride);
        if windows.is_empty() {
            return vec![0.0; n];
        }
        let ws = forest_scores(&windows, self.n_trees, self.subsample, self.seed);
        normalize_scores(window_scores_to_points(&ws, n, w, stride))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spiky_series() -> Vec<f64> {
        let mut s: Vec<f64> = (0..400)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 25.0).sin())
            .collect();
        s[200] = 8.0;
        s[201] = 8.5;
        s
    }

    #[test]
    fn point_mode_flags_global_outliers() {
        let s = spiky_series();
        let scores = IForest::points(1).score(&s);
        assert_eq!(scores.len(), s.len());
        let spike = scores[200].max(scores[201]);
        let normal = scores[50];
        assert!(spike > normal + 0.3, "spike={spike} normal={normal}");
    }

    #[test]
    fn window_mode_scores_whole_series() {
        let s = spiky_series();
        let scores = IForest::windows(1).score(&s);
        assert_eq!(scores.len(), s.len());
        assert!(scores.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Spike region scores above the median region.
        let spike_region: f64 = scores[195..206].iter().cloned().fold(0.0, f64::max);
        let mid = scores[40..60].iter().sum::<f64>() / 20.0;
        assert!(spike_region > mid, "spike={spike_region} mid={mid}");
    }

    #[test]
    fn deterministic_given_seed() {
        let s = spiky_series();
        assert_eq!(IForest::windows(5).score(&s), IForest::windows(5).score(&s));
    }

    #[test]
    fn empty_and_tiny_series_are_safe() {
        assert!(IForest::windows(0).score(&[]).is_empty());
        let tiny = vec![1.0, 2.0, 3.0];
        let scores = IForest::points(0).score(&tiny);
        assert_eq!(scores.len(), 3);
    }

    #[test]
    fn c_factor_grows_with_n() {
        assert!(c_factor(2) < c_factor(10));
        assert!(c_factor(10) < c_factor(1000));
        assert_eq!(c_factor(1), 0.0);
    }
}
