//! Autoencoder reconstruction-error detector.

use crate::common::{auto_window, normalize_scores, sliding_windows, window_scores_to_points};
use crate::{Detector, ModelId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tslinalg::stats;
use tsnn::layers::{Layer, Linear, Relu};
use tsnn::loss::mse;
use tsnn::optim::Adam;
use tsnn::Tensor;

/// AE detector: a small MLP autoencoder (`w → h → w`) trained on the series'
/// own z-normalised windows; anomalous windows reconstruct poorly.
#[derive(Debug, Clone)]
pub struct AutoEncoder {
    seed: u64,
    epochs: usize,
    max_windows: usize,
}

impl AutoEncoder {
    /// Default configuration.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            epochs: 30,
            max_windows: 250,
        }
    }
}

struct AeNet {
    enc: Linear,
    relu: Relu,
    dec: Linear,
}

impl AeNet {
    fn new(w: usize, h: usize, rng: &mut StdRng) -> Self {
        Self {
            enc: Linear::new(w, h, rng),
            relu: Relu::new(),
            dec: Linear::new(h, w, rng),
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let z = self.enc.forward(x, train);
        let a = self.relu.forward(&z, train);
        self.dec.forward(&a, train)
    }

    fn backward(&mut self, grad: &Tensor) {
        let g = self.dec.backward(grad);
        let g = self.relu.backward(&g);
        let _ = self.enc.backward(&g);
    }

    fn params(&mut self) -> Vec<&mut tsnn::Param> {
        let mut p = self.enc.params_mut();
        p.extend(self.dec.params_mut());
        p
    }
}

impl Detector for AutoEncoder {
    fn id(&self) -> ModelId {
        ModelId::Ae
    }

    fn score(&self, series: &[f64]) -> Vec<f64> {
        let n = series.len();
        if n == 0 {
            return Vec::new();
        }
        let w = auto_window(series);
        if n < 2 * w {
            return vec![0.0; n];
        }
        // Training windows: stride grows to respect the cap; scoring windows
        // use a tighter stride for resolution.
        let score_stride = (w / 4).max(1);
        let mut windows = sliding_windows(series, w, score_stride);
        for win in &mut windows {
            stats::znormalize(win);
        }
        let mut train_idx: Vec<usize> = (0..windows.len()).collect();
        if train_idx.len() > self.max_windows {
            let keep_every = train_idx.len().div_ceil(self.max_windows);
            train_idx.retain(|i| i % keep_every == 0);
        }

        let hidden = (w / 2).clamp(4, 16);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut net = AeNet::new(w, hidden, &mut rng);
        let mut opt = Adam::new(0.01, 1e-5);

        let batch: Vec<Vec<f32>> = train_idx
            .iter()
            .map(|&i| windows[i].iter().map(|&v| v as f32).collect())
            .collect();
        let x = Tensor::from_rows(&batch);
        for _ in 0..self.epochs {
            let y = net.forward(&x, true);
            let out = mse(&y, &x, None);
            for p in net.params() {
                p.zero_grad();
            }
            net.backward(&out.grad);
            opt.step(&mut net.params());
        }

        // Score every window.
        let all: Vec<Vec<f32>> = windows
            .iter()
            .map(|win| win.iter().map(|&v| v as f32).collect())
            .collect();
        let xs = Tensor::from_rows(&all);
        let recon = net.forward(&xs, false);
        let scores: Vec<f64> = (0..windows.len())
            .map(|i| {
                recon
                    .row(i)
                    .iter()
                    .zip(xs.row(i))
                    .map(|(&a, &b)| ((a - b) as f64).powi(2))
                    .sum::<f64>()
                    / w as f64
            })
            .collect();
        normalize_scores(window_scores_to_points(&scores, n, w, score_stride))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstructs_dominant_pattern_and_flags_distortion() {
        let mut s: Vec<f64> = (0..600)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 30.0).sin())
            .collect();
        for (t, v) in s.iter_mut().enumerate().take(380).skip(350) {
            *v = ((t * t) as f64 * 0.37).sin() * 1.2; // structurally different
        }
        let scores = AutoEncoder::new(1).score(&s);
        let anom: f64 = scores[350..380].iter().cloned().fold(0.0, f64::max);
        let normal: f64 = scores[100..130].iter().cloned().fold(0.0, f64::max);
        assert!(anom > normal, "anom={anom} normal={normal}");
    }

    #[test]
    fn deterministic_per_seed() {
        let s: Vec<f64> = (0..300).map(|t| (t as f64 * 0.21).sin()).collect();
        assert_eq!(AutoEncoder::new(4).score(&s), AutoEncoder::new(4).score(&s));
    }

    #[test]
    fn short_series_zeros() {
        assert!(AutoEncoder::new(0)
            .score(&[0.0; 20])
            .iter()
            .all(|&v| v == 0.0));
    }
}
