//! Matrix profile: 1-NN z-normalised distance of every subsequence.

use crate::common::{auto_window, normalize_scores, window_scores_to_points};
use crate::{Detector, ModelId};
use tslinalg::stats;

/// Matrix-profile discord detector: the anomaly score of a subsequence is
/// its z-normalised Euclidean distance to its nearest non-trivial match.
#[derive(Debug, Clone)]
pub struct MatrixProfile {
    /// Cap on the number of profiled subsequences (stride grows beyond it).
    max_subsequences: usize,
}

impl MatrixProfile {
    /// Default configuration.
    pub fn default_config() -> Self {
        Self {
            max_subsequences: 1500,
        }
    }
}

impl Detector for MatrixProfile {
    fn id(&self) -> ModelId {
        ModelId::Mp
    }

    fn score(&self, series: &[f64]) -> Vec<f64> {
        let n = series.len();
        if n == 0 {
            return Vec::new();
        }
        let w = auto_window(series);
        if n < 2 * w {
            return vec![0.0; n];
        }
        // Stride keeps the O(m²) profile tractable on long series.
        let mut stride = 1usize;
        while (n - w) / stride + 1 > self.max_subsequences {
            stride += 1;
        }
        // Z-normalised subsequences.
        let starts: Vec<usize> = (0..=n - w).step_by(stride).collect();
        let m = starts.len();
        let mut subs: Vec<Vec<f64>> = starts.iter().map(|&s| series[s..s + w].to_vec()).collect();
        for s in &mut subs {
            stats::znormalize(s);
        }

        // Exclusion zone: ignore trivially overlapping matches.
        let exclusion = (w / 2).max(stride);
        let mut profile = vec![f64::INFINITY; m];
        for i in 0..m {
            for j in i + 1..m {
                if starts[j] - starts[i] < exclusion {
                    continue;
                }
                let mut d2 = 0.0;
                for (a, b) in subs[i].iter().zip(&subs[j]) {
                    d2 += (a - b) * (a - b);
                    // Early abandon once both current minima are beaten.
                    if d2 >= profile[i] && d2 >= profile[j] {
                        break;
                    }
                }
                if d2 < profile[i] {
                    profile[i] = d2;
                }
                if d2 < profile[j] {
                    profile[j] = d2;
                }
            }
        }
        for v in &mut profile {
            if !v.is_finite() {
                *v = 0.0;
            } else {
                *v = v.sqrt();
            }
        }
        normalize_scores(window_scores_to_points(&profile, n, w, stride))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Periodic signal with one distorted cycle — the classic discord.
    fn discord_series() -> (Vec<f64>, usize, usize) {
        let period = 25;
        let mut s: Vec<f64> = (0..600)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / period as f64).sin())
            .collect();
        let (a, b) = (300, 325);
        for v in &mut s[a..b] {
            // Invert one cycle: same value range, wrong shape.
            *v = -*v * 0.8 + 0.1;
        }
        (s, a, b)
    }

    #[test]
    fn discord_cycle_gets_top_score() {
        let (s, a, b) = discord_series();
        let scores = MatrixProfile::default_config().score(&s);
        let anom: f64 = scores[a..b].iter().cloned().fold(0.0, f64::max);
        let normal: f64 = scores[100..150].iter().cloned().fold(0.0, f64::max);
        assert!(anom > normal + 0.2, "anom={anom} normal={normal}");
        // The global maximum lies inside (or adjacent to) the discord.
        let argmax = scores
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        assert!(
            (a.saturating_sub(30)..b + 30).contains(&argmax),
            "argmax={argmax}"
        );
    }

    #[test]
    fn too_short_series_scores_zero() {
        let scores = MatrixProfile::default_config().score(&[1.0; 20]);
        assert!(scores.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scores_bounded_and_full_length() {
        let (s, _, _) = discord_series();
        let scores = MatrixProfile::default_config().score(&s);
        assert_eq!(scores.len(), s.len());
        assert!(scores.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn twin_discords_deflate_each_other() {
        // The classic "twin freak" property: a discord that occurs twice
        // matches its twin, so its profile value drops relative to a series
        // where it occurs once. Compare region-max / series-mean ratios.
        let period = 25;
        let base: Vec<f64> = (0..800)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / period as f64).sin())
            .collect();
        let distort = |s: &mut [f64], at: usize| {
            for v in &mut s[at..at + period] {
                *v = -*v * 0.8 + 0.1;
            }
        };
        let mut single = base.clone();
        distort(&mut single, 400);
        let mut twin = base.clone();
        distort(&mut twin, 200);
        distort(&mut twin, 600);

        let d = MatrixProfile::default_config();
        let ratio = |scores: &[f64], a: usize| {
            let peak: f64 = scores[a..a + period].iter().cloned().fold(0.0, f64::max);
            let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
            peak / mean.max(1e-9)
        };
        let r_single = ratio(&d.score(&single), 400);
        let r_twin = ratio(&d.score(&twin), 200);
        assert!(r_single > r_twin, "single={r_single} twin={r_twin}");
    }
}
