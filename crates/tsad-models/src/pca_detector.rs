//! PCA reconstruction-error detector.

use crate::common::{auto_window, normalize_scores, sliding_windows, window_scores_to_points};
use crate::{Detector, ModelId};
use tslinalg::pca::Pca;
use tslinalg::Matrix;

/// PCA detector: project sliding windows onto the top principal components;
/// the reconstruction error flags windows off the dominant subspace.
#[derive(Debug, Clone)]
pub struct PcaDetector {
    n_components: usize,
    max_windows: usize,
}

impl PcaDetector {
    /// Default configuration (3 components).
    pub fn default_config() -> Self {
        Self {
            n_components: 3,
            max_windows: 800,
        }
    }
}

impl Detector for PcaDetector {
    fn id(&self) -> ModelId {
        ModelId::Pca
    }

    fn score(&self, series: &[f64]) -> Vec<f64> {
        let n = series.len();
        if n == 0 {
            return Vec::new();
        }
        let w = auto_window(series);
        if n < 2 * w {
            return vec![0.0; n];
        }
        let mut stride = (w / 4).max(1);
        while (n - w) / stride + 1 > self.max_windows {
            stride += 1;
        }
        let windows = sliding_windows(series, w, stride);
        if windows.len() < 4 {
            return vec![0.0; n];
        }
        let x = Matrix::from_rows(&windows);
        let pca = Pca::fit(&x, self.n_components.min(w));
        if pca.n_components() == 0 {
            return vec![0.0; n];
        }
        let scores: Vec<f64> = windows
            .iter()
            .map(|win| pca.reconstruction_error(win))
            .collect();
        normalize_scores(window_scores_to_points(&scores, n, w, stride))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_shift_yields_high_reconstruction_error() {
        let mut s: Vec<f64> = (0..500)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 25.0).sin())
            .collect();
        for v in &mut s[300..360] {
            *v += 3.0;
        }
        let scores = PcaDetector::default_config().score(&s);
        let anom: f64 = scores[300..360].iter().cloned().fold(0.0, f64::max);
        let normal: f64 = scores[80..140].iter().cloned().fold(0.0, f64::max);
        assert!(anom > normal, "anom={anom} normal={normal}");
    }

    #[test]
    fn clean_periodic_signal_scores_low_everywhere() {
        let s: Vec<f64> = (0..500)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 25.0).sin())
            .collect();
        let scores = PcaDetector::default_config().score(&s);
        // After min-max scaling something is 1.0 by construction; check the
        // distribution is not degenerate rather than absolute values.
        assert_eq!(scores.len(), 500);
        assert!(scores.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn short_series_zeros() {
        assert!(PcaDetector::default_config()
            .score(&[1.0; 10])
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic() {
        let s: Vec<f64> = (0..300)
            .map(|t| (t as f64 * 0.1).cos() * t as f64 * 0.01)
            .collect();
        let d = PcaDetector::default_config();
        assert_eq!(d.score(&s), d.score(&s));
    }
}
