//! Local outlier factor on sliding windows.

use crate::common::{auto_window, normalize_scores, sliding_windows, window_scores_to_points};
use crate::{Detector, ModelId};

/// LOF detector: ratio of neighbour density to local density of each window.
#[derive(Debug, Clone)]
pub struct Lof {
    k: usize,
    /// Cap on the number of windows (subsampled by stride) to keep the
    /// O(m²) distance matrix tractable.
    max_windows: usize,
}

impl Lof {
    /// Default configuration (k = 10).
    pub fn default_config() -> Self {
        Self {
            k: 10,
            max_windows: 600,
        }
    }
}

impl Detector for Lof {
    fn id(&self) -> ModelId {
        ModelId::Lof
    }

    fn score(&self, series: &[f64]) -> Vec<f64> {
        let n = series.len();
        if n == 0 {
            return Vec::new();
        }
        let w = auto_window(series);
        // Stride chosen so the window count stays under the cap.
        let mut stride = (w / 4).max(1);
        loop {
            let count = if n >= w { (n - w) / stride + 1 } else { 0 };
            if count <= self.max_windows || stride >= w {
                break;
            }
            stride += 1;
        }
        let windows = sliding_windows(series, w, stride);
        let m = windows.len();
        if m <= self.k + 1 {
            return vec![0.0; n];
        }

        // Pairwise distances.
        let mut dist = vec![0.0f64; m * m];
        for i in 0..m {
            for j in i + 1..m {
                let d: f64 = windows[i]
                    .iter()
                    .zip(&windows[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                dist[i * m + j] = d;
                dist[j * m + i] = d;
            }
        }

        // k-NN per window.
        let k = self.k.min(m - 1);
        let mut neighbours: Vec<Vec<usize>> = Vec::with_capacity(m);
        let mut kdist = vec![0.0f64; m];
        for i in 0..m {
            let mut idx: Vec<usize> = (0..m).filter(|&j| j != i).collect();
            idx.sort_by(|&a, &b| {
                dist[i * m + a]
                    .partial_cmp(&dist[i * m + b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            idx.truncate(k);
            kdist[i] = dist[i * m + idx[k - 1]];
            neighbours.push(idx);
        }

        // Local reachability density.
        let mut lrd = vec![0.0f64; m];
        for i in 0..m {
            let sum: f64 = neighbours[i]
                .iter()
                .map(|&j| dist[i * m + j].max(kdist[j]))
                .sum();
            lrd[i] = if sum < 1e-12 { 1e12 } else { k as f64 / sum };
        }

        // LOF = mean neighbour lrd / own lrd.
        let lof: Vec<f64> = (0..m)
            .map(|i| {
                let mean_nb: f64 = neighbours[i].iter().map(|&j| lrd[j]).sum::<f64>() / k as f64;
                mean_nb / lrd[i].max(1e-12)
            })
            .collect();

        normalize_scores(window_scores_to_points(&lof, n, w, stride))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_subsequence_outlier() {
        let mut s: Vec<f64> = (0..500)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 20.0).sin())
            .collect();
        for v in &mut s[240..260] {
            *v += 4.0;
        }
        let scores = Lof::default_config().score(&s);
        assert_eq!(scores.len(), 500);
        let anom: f64 = scores[240..260].iter().cloned().fold(0.0, f64::max);
        let norm: f64 = scores[50..70].iter().sum::<f64>() / 20.0;
        assert!(anom > norm, "anom={anom} norm={norm}");
    }

    #[test]
    fn short_series_returns_zeros() {
        let scores = Lof::default_config().score(&[1.0; 30]);
        assert_eq!(scores.len(), 30);
        assert!(scores.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scores_in_unit_interval() {
        let s: Vec<f64> = (0..400)
            .map(|t| ((t % 37) as f64).sin() * (t as f64 * 0.01))
            .collect();
        let scores = Lof::default_config().score(&s);
        assert!(scores.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic() {
        let s: Vec<f64> = (0..300).map(|t| (t as f64 * 0.2).sin()).collect();
        assert_eq!(
            Lof::default_config().score(&s),
            Lof::default_config().score(&s)
        );
    }
}
