//! NORMA: normal-pattern discovery by clustering, scoring by distance.

use crate::common::{auto_window, normalize_scores, sliding_windows, window_scores_to_points};
use crate::{Detector, ModelId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tslinalg::stats;

/// NORMA-style detector: k-means over z-normalised subsequences discovers the
/// recurring "normal" patterns; each subsequence is scored by its distance to
/// the nearest pattern, weighted by how common that pattern is.
#[derive(Debug, Clone)]
pub struct Norma {
    k: usize,
    seed: u64,
    max_windows: usize,
}

impl Norma {
    /// Default configuration (3 normal patterns).
    pub fn new(seed: u64) -> Self {
        Self {
            k: 3,
            seed,
            max_windows: 800,
        }
    }
}

impl Detector for Norma {
    fn id(&self) -> ModelId {
        ModelId::Norma
    }

    fn score(&self, series: &[f64]) -> Vec<f64> {
        let n = series.len();
        if n == 0 {
            return Vec::new();
        }
        let w = auto_window(series);
        if n < 2 * w {
            return vec![0.0; n];
        }
        let mut stride = (w / 4).max(1);
        while (n - w) / stride + 1 > self.max_windows {
            stride += 1;
        }
        let mut windows = sliding_windows(series, w, stride);
        for win in &mut windows {
            stats::znormalize(win);
        }
        let m = windows.len();
        let k = self.k.min(m);

        // k-means with deterministic seeding.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut centroids: Vec<Vec<f64>> = (0..k)
            .map(|_| windows[rng.random_range(0..m)].clone())
            .collect();
        let mut assignment = vec![0usize; m];
        for _ in 0..20 {
            let mut changed = false;
            for (i, win) in windows.iter().enumerate() {
                let best = nearest(win, &centroids).0;
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            // Recompute centroids.
            let mut sums = vec![vec![0.0f64; w]; k];
            let mut counts = vec![0usize; k];
            for (i, win) in windows.iter().enumerate() {
                let c = assignment[i];
                counts[c] += 1;
                for (s, &v) in sums[c].iter_mut().zip(win) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed empty cluster.
                    centroids[c] = windows[rng.random_range(0..m)].clone();
                    continue;
                }
                for (cv, &s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cv = s / counts[c] as f64;
                }
            }
            if !changed {
                break;
            }
        }

        // Cluster frequency weights: common clusters are "more normal", so
        // distance to them is divided by a larger weight.
        let mut counts = vec![0usize; k];
        for &a in &assignment {
            counts[a] += 1;
        }
        let weights: Vec<f64> = counts
            .iter()
            .map(|&c| (c as f64 / m as f64).max(1e-3))
            .collect();

        let scores: Vec<f64> = windows
            .iter()
            .map(|win| {
                // Effective distance: min over patterns of dist / weight.
                centroids
                    .iter()
                    .zip(&weights)
                    .map(|(c, &wt)| stats::euclidean(win, c) / wt.sqrt())
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();

        normalize_scores(window_scores_to_points(&scores, n, w, stride))
    }
}

fn nearest(x: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = stats::euclidean(x, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distorted_cycle_scores_above_normal_cycles() {
        let period = 20;
        let mut s: Vec<f64> = (0..600)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / period as f64).sin())
            .collect();
        for (t, v) in s.iter_mut().enumerate().take(340).skip(300) {
            *v = -0.5 * *v + ((t - 300) as f64 * 0.35).sin();
        }
        let scores = Norma::new(1).score(&s);
        let anom: f64 = scores[300..340].iter().cloned().fold(0.0, f64::max);
        let normal: f64 = scores[80..120].iter().cloned().fold(0.0, f64::max);
        assert!(anom > normal, "anom={anom} normal={normal}");
    }

    #[test]
    fn deterministic_per_seed() {
        let s: Vec<f64> = (0..400).map(|t| (t as f64 * 0.3).sin()).collect();
        assert_eq!(Norma::new(2).score(&s), Norma::new(2).score(&s));
    }

    #[test]
    fn short_series_zeros() {
        let scores = Norma::new(0).score(&[0.5; 25]);
        assert!(scores.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bounded_scores() {
        let s: Vec<f64> = (0..500)
            .map(|t| ((t / 50) % 2) as f64 + (t as f64 * 0.7).sin() * 0.1)
            .collect();
        let scores = Norma::new(3).score(&s);
        assert_eq!(scores.len(), 500);
        assert!(scores.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
