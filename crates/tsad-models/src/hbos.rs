//! Histogram-based outlier score.

use crate::common::normalize_scores;
use crate::{Detector, ModelId};

/// HBOS: a value histogram over the series; the score of each point is the
/// negative log-height of its bin (rare values ⇒ high score).
#[derive(Debug, Clone)]
pub struct Hbos {
    bins: usize,
}

impl Hbos {
    /// Default configuration (20 bins).
    pub fn default_config() -> Self {
        Self { bins: 20 }
    }

    /// Custom bin count.
    ///
    /// # Panics
    /// Panics if `bins == 0`.
    pub fn with_bins(bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        Self { bins }
    }
}

impl Detector for Hbos {
    fn id(&self) -> ModelId {
        ModelId::Hbos
    }

    fn score(&self, series: &[f64]) -> Vec<f64> {
        let n = series.len();
        if n == 0 {
            return Vec::new();
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in series {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !(hi - lo).is_finite() || hi - lo < 1e-12 {
            return vec![0.0; n];
        }
        let width = (hi - lo) / self.bins as f64;
        let mut counts = vec![0usize; self.bins];
        let bin_of = |v: f64| (((v - lo) / width) as usize).min(self.bins - 1);
        for &v in series {
            counts[bin_of(v)] += 1;
        }
        // Laplace-smoothed densities.
        let scores: Vec<f64> = series
            .iter()
            .map(|&v| {
                let density = (counts[bin_of(v)] as f64 + 1.0) / (n as f64 + self.bins as f64);
                -density.ln()
            })
            .collect();
        normalize_scores(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rare_values_score_high() {
        let mut s = vec![0.0; 200];
        // Values cluster near 0; two extreme points.
        for (i, v) in s.iter_mut().enumerate() {
            *v = ((i % 10) as f64) * 0.01;
        }
        s[100] = 10.0;
        s[150] = -10.0;
        let scores = Hbos::default_config().score(&s);
        assert!(scores[100] > 0.9);
        assert!(scores[150] > 0.9);
        assert!(scores[5] < 0.5);
    }

    #[test]
    fn constant_series_scores_zero() {
        let scores = Hbos::default_config().score(&[3.0; 50]);
        assert!(scores.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scores_bounded() {
        let s: Vec<f64> = (0..300).map(|i| ((i * 31) % 101) as f64).collect();
        let scores = Hbos::with_bins(10).score(&s);
        assert_eq!(scores.len(), 300);
        assert!(scores.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn empty_input() {
        assert!(Hbos::default_config().score(&[]).is_empty());
    }
}
