//! One-class SVM via random Fourier features + linear SGD (Pegasos-style).
//!
//! The classic OCSVM fits the boundary of the normal data with an RBF
//! kernel. Kernel SMO is out of scope for this reproduction; random Fourier
//! features approximate the RBF feature map, after which the one-class
//! objective `½‖w‖² + (1/νm) Σ max(0, ρ − w·φ(x)) − ρ` is solved by SGD.
//! Documented as a substitution in DESIGN.md.

use crate::common::{auto_window, normalize_scores, sliding_windows, window_scores_to_points};
use crate::{Detector, ModelId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tslinalg::stats;

/// One-class SVM detector on z-normalised windows.
#[derive(Debug, Clone)]
pub struct OcSvm {
    seed: u64,
    /// Random Fourier feature count.
    rff_dim: usize,
    /// One-class ν (expected anomaly fraction).
    nu: f64,
    epochs: usize,
    max_windows: usize,
}

impl OcSvm {
    /// Default configuration.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rff_dim: 64,
            nu: 0.1,
            epochs: 25,
            max_windows: 600,
        }
    }
}

impl Detector for OcSvm {
    fn id(&self) -> ModelId {
        ModelId::Ocsvm
    }

    fn score(&self, series: &[f64]) -> Vec<f64> {
        let n = series.len();
        if n == 0 {
            return Vec::new();
        }
        let w = auto_window(series);
        if n < 2 * w {
            return vec![0.0; n];
        }
        let mut stride = (w / 4).max(1);
        while (n - w) / stride + 1 > self.max_windows {
            stride += 1;
        }
        let mut windows = sliding_windows(series, w, stride);
        for win in &mut windows {
            stats::znormalize(win);
        }
        let m = windows.len();
        if m < 8 {
            return vec![0.0; n];
        }

        // RFF map: φ(x) = √(2/D) cos(Ωx + b), Ω ~ N(0, γ) with the median
        // heuristic for γ baked into a fixed 1/√w scale.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let d = self.rff_dim;
        let gamma = 1.0 / (w as f64).sqrt();
        let omega: Vec<Vec<f64>> = (0..d)
            .map(|_| (0..w).map(|_| gaussian(&mut rng) * gamma).collect())
            .collect();
        let offsets: Vec<f64> = (0..d)
            .map(|_| rng.random_range(0.0..2.0 * std::f64::consts::PI))
            .collect();
        let scale = (2.0 / d as f64).sqrt();
        let phi = |x: &[f64]| -> Vec<f64> {
            omega
                .iter()
                .zip(&offsets)
                .map(|(o, &b)| {
                    let dot: f64 = o.iter().zip(x).map(|(a, c)| a * c).sum();
                    scale * (dot + b).cos()
                })
                .collect()
        };
        let features: Vec<Vec<f64>> = windows.iter().map(|win| phi(win)).collect();

        // SGD on the one-class objective.
        let mut weight = vec![0.0f64; d];
        let mut rho = 0.0f64;
        let inv_nu_m = 1.0 / (self.nu * m as f64);
        let mut t = 0usize;
        let mut order: Vec<usize> = (0..m).collect();
        for _ in 0..self.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                t += 1;
                let eta = 1.0 / (t as f64).sqrt().max(1.0);
                let f = &features[i];
                let margin: f64 = weight.iter().zip(f).map(|(a, b)| a * b).sum();
                // Regulariser gradient.
                for wv in weight.iter_mut() {
                    *wv *= 1.0 - eta;
                }
                if margin < rho {
                    for (wv, &fv) in weight.iter_mut().zip(f) {
                        *wv += eta * inv_nu_m * m as f64 * fv; // per-sample scale
                    }
                    rho -= eta * (1.0 - inv_nu_m * m as f64).min(0.0);
                    rho -= eta; // drive ρ down when samples violate
                } else {
                    rho += eta * 0.1; // grow ρ slowly when satisfied
                }
            }
        }

        // Anomaly score: ρ − w·φ(x) (outside the boundary ⇒ positive/large).
        let scores: Vec<f64> = features
            .iter()
            .map(|f| {
                let margin: f64 = weight.iter().zip(f).map(|(a, b)| a * b).sum();
                rho - margin
            })
            .collect();
        normalize_scores(window_scores_to_points(&scores, n, w, stride))
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_burst_lies_outside_normal_boundary() {
        let mut s: Vec<f64> = (0..600)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 30.0).sin())
            .collect();
        // Deterministic pseudo-noise burst.
        for (t, v) in s.iter_mut().enumerate().take(420).skip(350) {
            let r = ((t * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
            *v += r * 4.0;
        }
        let scores = OcSvm::new(1).score(&s);
        let anom: f64 = scores[350..420].iter().cloned().fold(0.0, f64::max);
        let normal: f64 = scores[100..170].iter().cloned().fold(0.0, f64::max);
        assert!(anom >= normal, "anom={anom} normal={normal}");
    }

    #[test]
    fn deterministic_per_seed() {
        let s: Vec<f64> = (0..300).map(|t| (t as f64 * 0.2).sin()).collect();
        assert_eq!(OcSvm::new(3).score(&s), OcSvm::new(3).score(&s));
    }

    #[test]
    fn short_series_zeros() {
        assert!(OcSvm::new(0).score(&[0.1; 25]).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scores_bounded() {
        let s: Vec<f64> = (0..400).map(|t| ((t % 50) as f64 * 0.1).sin()).collect();
        let scores = OcSvm::new(5).score(&s);
        assert!(scores.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
