//! Shared utilities for detectors: windowing, score mapping, auto-sizing.

use tslinalg::dft::dominant_period;
use tslinalg::stats;

/// Default subsequence length bounds for window-based detectors.
pub const MIN_WINDOW: usize = 16;
/// Upper bound of the auto-sized window.
pub const MAX_WINDOW: usize = 64;

/// Picks a window length for a series: the dominant period when one exists,
/// clamped to `[MIN_WINDOW, MAX_WINDOW]` and the series length.
pub fn auto_window(series: &[f64]) -> usize {
    let fallback = 32;
    let period = dominant_period(series).unwrap_or(fallback);
    period
        .clamp(MIN_WINDOW, MAX_WINDOW)
        .min(series.len().max(1))
}

/// Extracts all sliding windows of length `w` with the given stride.
pub fn sliding_windows(series: &[f64], w: usize, stride: usize) -> Vec<Vec<f64>> {
    if series.len() < w || w == 0 {
        return Vec::new();
    }
    (0..=series.len() - w)
        .step_by(stride.max(1))
        .map(|s| series[s..s + w].to_vec())
        .collect()
}

/// Z-normalises each window in place.
pub fn znormalize_windows(windows: &mut [Vec<f64>]) {
    for w in windows {
        stats::znormalize(w);
    }
}

/// Spreads per-window scores (windows starting at `0, stride, …`) back to
/// per-point scores: each point receives the **maximum** score of any window
/// covering it — the TSB-UAD convention that keeps short anomalies sharp.
pub fn window_scores_to_points(
    window_scores: &[f64],
    n: usize,
    w: usize,
    stride: usize,
) -> Vec<f64> {
    let mut out = vec![0.0f64; n];
    for (wi, &s) in window_scores.iter().enumerate() {
        let start = wi * stride;
        let end = (start + w).min(n);
        for v in &mut out[start..end] {
            if s > *v {
                *v = s;
            }
        }
    }
    out
}

/// Min–max scales scores to `[0, 1]` (constant scores become zeros).
pub fn normalize_scores(mut scores: Vec<f64>) -> Vec<f64> {
    stats::minmax_scale(&mut scores);
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_windows_counts() {
        let s: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ws = sliding_windows(&s, 4, 2);
        assert_eq!(ws.len(), 4); // starts 0,2,4,6
        assert_eq!(ws[3], vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn short_series_yields_no_windows() {
        assert!(sliding_windows(&[1.0, 2.0], 5, 1).is_empty());
    }

    #[test]
    fn window_scores_spread_with_max() {
        let pts = window_scores_to_points(&[0.2, 0.9, 0.1], 5, 3, 1);
        // Point 2 is covered by all three windows → max 0.9; point 4 only by
        // the last window.
        assert_eq!(pts, vec![0.2, 0.9, 0.9, 0.9, 0.1]);
    }

    #[test]
    fn auto_window_finds_period() {
        let s: Vec<f64> = (0..512)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin())
            .collect();
        let w = auto_window(&s);
        assert!((16..=32).contains(&w), "w={w}");
    }

    #[test]
    fn auto_window_clamps_for_noise() {
        let s: Vec<f64> = (0..100).map(|i| ((i * 7919) % 97) as f64).collect();
        let w = auto_window(&s);
        assert!((MIN_WINDOW..=MAX_WINDOW).contains(&w));
    }

    #[test]
    fn normalize_scores_bounds() {
        let s = normalize_scores(vec![5.0, 10.0, 7.5]);
        assert_eq!(s, vec![0.0, 1.0, 0.5]);
    }
}
