//! CNN forecaster: convolutional next-point prediction.

use crate::common::normalize_scores;
use crate::{Detector, ModelId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tslinalg::stats;
use tsnn::layers::{Conv1d, Layer, Linear, MaxPool1d, Relu};
use tsnn::loss::mse;
use tsnn::optim::Adam;
use tsnn::Tensor;

/// CNN detector: a small conv net consumes the previous `history` points and
/// predicts the next one; squared prediction error is the anomaly score.
#[derive(Debug, Clone)]
pub struct CnnForecaster {
    seed: u64,
    history: usize,
    channels: usize,
    epochs: usize,
    max_train_pairs: usize,
}

impl CnnForecaster {
    /// Default configuration.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            history: 24,
            channels: 8,
            epochs: 20,
            max_train_pairs: 200,
        }
    }
}

struct Net {
    conv: Conv1d,
    relu: Relu,
    pool: MaxPool1d,
    head: Linear,
    flat_dim: usize,
    pooled_shape: Vec<usize>,
}

impl Net {
    fn new(history: usize, channels: usize, rng: &mut StdRng) -> Self {
        let pooled = history / 2;
        Self {
            conv: Conv1d::new(1, channels, 5, rng),
            relu: Relu::new(),
            pool: MaxPool1d::new(2),
            head: Linear::new(channels * pooled, 1, rng),
            flat_dim: channels * pooled,
            pooled_shape: vec![0, channels, pooled],
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let n = x.dim(0);
        let c = self.conv.forward(x, train);
        let a = self.relu.forward(&c, train);
        let p = self.pool.forward(&a, train);
        self.pooled_shape[0] = n;
        let flat = p.reshape(&[n, self.flat_dim]);
        self.head.forward(&flat, train)
    }

    fn backward(&mut self, grad: &Tensor) {
        let g = self.head.backward(grad);
        let g = g.reshape(&self.pooled_shape);
        let g = self.pool.backward(&g);
        let g = self.relu.backward(&g);
        let _ = self.conv.backward(&g);
    }

    fn params(&mut self) -> Vec<&mut tsnn::Param> {
        let mut p = self.conv.params_mut();
        p.extend(self.head.params_mut());
        p
    }
}

impl Detector for CnnForecaster {
    fn id(&self) -> ModelId {
        ModelId::Cnn
    }

    fn score(&self, series: &[f64]) -> Vec<f64> {
        let n = series.len();
        let p = self.history;
        if n < 2 * p + 4 {
            return vec![0.0; n];
        }
        let mut values: Vec<f64> = series.to_vec();
        stats::znormalize(&mut values);
        let values: Vec<f32> = values.iter().map(|&v| v as f32).collect();

        let all_targets: Vec<usize> = (p..n).collect();
        let step = all_targets.len().div_ceil(self.max_train_pairs).max(1);
        let train_targets: Vec<usize> = all_targets.iter().copied().step_by(step).collect();

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut net = Net::new(p, self.channels, &mut rng);
        let mut opt = Adam::new(0.01, 1e-5);

        let make_batch = |targets: &[usize]| -> (Tensor, Tensor) {
            let mut xs = Vec::with_capacity(targets.len() * p);
            let mut ys = Vec::with_capacity(targets.len());
            for &t in targets {
                xs.extend_from_slice(&values[t - p..t]);
                ys.push(values[t]);
            }
            (
                Tensor::from_vec(&[targets.len(), 1, p], xs),
                Tensor::from_vec(&[targets.len(), 1], ys),
            )
        };

        let (x_train, y_train) = make_batch(&train_targets);
        for _ in 0..self.epochs {
            let pred = net.forward(&x_train, true);
            let out = mse(&pred, &y_train, None);
            for par in net.params() {
                par.zero_grad();
            }
            net.backward(&out.grad);
            opt.step(&mut net.params());
        }

        let mut errors = vec![0.0f64; n];
        let chunk = 256;
        let mut t0 = p;
        while t0 < n {
            let t1 = (t0 + chunk).min(n);
            let targets: Vec<usize> = (t0..t1).collect();
            let (x, y) = make_batch(&targets);
            let pred = net.forward(&x, false);
            for (i, &t) in targets.iter().enumerate() {
                let e = (pred.row(i)[0] - y.row(i)[0]) as f64;
                errors[t] = e * e;
            }
            t0 = t1;
        }
        let head = errors[p];
        for e in errors.iter_mut().take(p) {
            *e = head;
        }
        normalize_scores(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_frequency_shift() {
        let mut s: Vec<f64> = (0..500)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 25.0).sin())
            .collect();
        for (t, v) in s.iter_mut().enumerate().take(350).skip(300) {
            *v = (2.0 * std::f64::consts::PI * t as f64 / 7.0).sin();
        }
        let scores = CnnForecaster::new(1).score(&s);
        let anom: f64 = scores[300..352].iter().cloned().fold(0.0, f64::max);
        let normal: f64 = scores[100..150].iter().cloned().fold(0.0, f64::max);
        assert!(anom > normal, "anom={anom} normal={normal}");
    }

    #[test]
    fn deterministic_per_seed() {
        let s: Vec<f64> = (0..200).map(|t| (t as f64 * 0.3).cos()).collect();
        assert_eq!(
            CnnForecaster::new(2).score(&s),
            CnnForecaster::new(2).score(&s)
        );
    }

    #[test]
    fn short_series_zeros() {
        assert!(CnnForecaster::new(0)
            .score(&[0.5; 40])
            .iter()
            .all(|&v| v == 0.0));
    }
}
