//! TSFresh-style statistical features.

use tslinalg::dft::magnitude_spectrum;
use tslinalg::stats;

/// Number of features produced by [`extract_features`].
pub const FEATURE_COUNT: usize = 36;

/// Names of the features, aligned with [`extract_features`] output order.
pub fn feature_names() -> Vec<&'static str> {
    vec![
        "mean",
        "std",
        "min",
        "max",
        "median",
        "q10",
        "q25",
        "q75",
        "q90",
        "iqr",
        "skewness",
        "kurtosis",
        "range",
        "mean_abs_change",
        "mean_change",
        "abs_energy",
        "root_mean_square",
        "count_above_mean",
        "count_below_mean",
        "zero_crossings",
        "mean_crossings",
        "longest_above_mean",
        "n_peaks",
        "acf_lag1",
        "acf_lag2",
        "acf_lag4",
        "acf_lag8",
        "acf_lag16",
        "trend_slope",
        "cid_ce",
        "spectral_centroid",
        "spectral_peak_freq",
        "spectral_peak_power",
        "spectral_entropy",
        "first_quarter_mean_diff",
        "last_quarter_mean_diff",
    ]
}

/// Extracts the feature vector of a window.
///
/// Degenerate inputs (constant or very short windows) produce finite values
/// for every feature — classifiers never see NaN.
pub fn extract_features(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    if n == 0 {
        return vec![0.0; FEATURE_COUNT];
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    let mean = stats::mean(xs);
    let std = stats::std_dev(xs);
    let min = sorted[0];
    let max = sorted[n - 1];
    let median = stats::quantile_sorted(&sorted, 0.5);
    let q10 = stats::quantile_sorted(&sorted, 0.10);
    let q25 = stats::quantile_sorted(&sorted, 0.25);
    let q75 = stats::quantile_sorted(&sorted, 0.75);
    let q90 = stats::quantile_sorted(&sorted, 0.90);

    // Changes.
    let mut abs_change = 0.0;
    let mut change = 0.0;
    for w in xs.windows(2) {
        abs_change += (w[1] - w[0]).abs();
        change += w[1] - w[0];
    }
    let denom = (n.max(2) - 1) as f64;
    let mean_abs_change = abs_change / denom;
    let mean_change = change / denom;

    let abs_energy: f64 = xs.iter().map(|v| v * v).sum();
    let rms = (abs_energy / n as f64).sqrt();

    // Counts.
    let above = xs.iter().filter(|&&v| v > mean).count() as f64 / n as f64;
    let below = xs.iter().filter(|&&v| v < mean).count() as f64 / n as f64;
    let zero_crossings = crossings(xs, 0.0);
    let mean_crossings = crossings(xs, mean);
    let longest_above = longest_run(xs, mean) as f64 / n as f64;
    let n_peaks = peaks(xs) as f64 / n as f64;

    // Autocorrelation ladder.
    let acf1 = stats::autocorrelation(xs, 1);
    let acf2 = stats::autocorrelation(xs, 2);
    let acf4 = stats::autocorrelation(xs, 4);
    let acf8 = stats::autocorrelation(xs, 8);
    let acf16 = stats::autocorrelation(xs, 16);

    let slope = stats::linear_trend_slope(xs);

    // CID complexity estimate: sqrt(Σ diff²).
    let cid: f64 = xs
        .windows(2)
        .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
        .sum::<f64>()
        .sqrt();

    // Spectral features on the mean-removed signal.
    let centered: Vec<f64> = xs.iter().map(|v| v - mean).collect();
    let spec = magnitude_spectrum(&centered);
    let (centroid, peak_freq, peak_power, entropy) = spectral_stats(&spec);

    // Segment means: distribution drift indicators.
    let quarter = (n / 4).max(1);
    let first_q = stats::mean(&xs[..quarter]) - mean;
    let last_q = stats::mean(&xs[n - quarter..]) - mean;

    let out = vec![
        mean,
        std,
        min,
        max,
        median,
        q10,
        q25,
        q75,
        q90,
        q75 - q25,
        stats::skewness(xs),
        stats::kurtosis(xs),
        max - min,
        mean_abs_change,
        mean_change,
        abs_energy / n as f64,
        rms,
        above,
        below,
        zero_crossings,
        mean_crossings,
        longest_above,
        n_peaks,
        acf1,
        acf2,
        acf4,
        acf8,
        acf16,
        slope,
        cid,
        centroid,
        peak_freq,
        peak_power,
        entropy,
        first_q,
        last_q,
    ];
    debug_assert_eq!(out.len(), FEATURE_COUNT);
    out.into_iter()
        .map(|v| if v.is_finite() { v } else { 0.0 })
        .collect()
}

fn crossings(xs: &[f64], level: f64) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mut count = 0;
    for w in xs.windows(2) {
        if (w[0] - level).signum() != (w[1] - level).signum() {
            count += 1;
        }
    }
    count as f64 / (xs.len() - 1) as f64
}

fn longest_run(xs: &[f64], level: f64) -> usize {
    let mut best = 0;
    let mut run = 0;
    for &v in xs {
        if v > level {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    best
}

fn peaks(xs: &[f64]) -> usize {
    if xs.len() < 3 {
        return 0;
    }
    xs.windows(3).filter(|w| w[1] > w[0] && w[1] > w[2]).count()
}

/// Returns (normalised centroid, normalised peak frequency, normalised peak
/// power, spectral entropy).
fn spectral_stats(spec: &[f64]) -> (f64, f64, f64, f64) {
    if spec.len() < 2 {
        return (0.0, 0.0, 0.0, 0.0);
    }
    // Skip DC.
    let body = &spec[1..];
    let total: f64 = body.iter().sum();
    if total < 1e-12 {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let mut centroid = 0.0;
    let mut peak_idx = 0;
    let mut peak_val = 0.0;
    for (i, &v) in body.iter().enumerate() {
        centroid += (i + 1) as f64 * v;
        if v > peak_val {
            peak_val = v;
            peak_idx = i + 1;
        }
    }
    centroid /= total * spec.len() as f64;
    let peak_freq = peak_idx as f64 / spec.len() as f64;
    let peak_power = peak_val / total;
    let entropy: f64 = body
        .iter()
        .filter(|&&v| v > 1e-12)
        .map(|&v| {
            let p = v / total;
            -p * p.ln()
        })
        .sum::<f64>()
        / (body.len() as f64).ln().max(1e-12);
    (centroid, peak_freq, peak_power, entropy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_length_matches_names() {
        let xs: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
        let f = extract_features(&xs);
        assert_eq!(f.len(), FEATURE_COUNT);
        assert_eq!(feature_names().len(), FEATURE_COUNT);
    }

    #[test]
    fn all_features_finite_on_degenerate_inputs() {
        for xs in [vec![], vec![5.0], vec![2.0; 100]] {
            let f = extract_features(&xs);
            assert_eq!(f.len(), FEATURE_COUNT);
            assert!(f.iter().all(|v| v.is_finite()), "{xs:?}");
        }
    }

    #[test]
    fn mean_and_std_in_expected_slots() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let f = extract_features(&xs);
        let names = feature_names();
        let mean_idx = names.iter().position(|&n| n == "mean").unwrap();
        let std_idx = names.iter().position(|&n| n == "std").unwrap();
        assert!((f[mean_idx] - 2.5).abs() < 1e-12);
        assert!((f[std_idx] - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn periodic_signal_has_high_acf_and_peak_power() {
        let xs: Vec<f64> = (0..128)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 16.0).sin())
            .collect();
        let f = extract_features(&xs);
        let names = feature_names();
        let acf16 = f[names.iter().position(|&n| n == "acf_lag16").unwrap()];
        let peak_power = f[names
            .iter()
            .position(|&n| n == "spectral_peak_power")
            .unwrap()];
        assert!(acf16 > 0.8, "acf16={acf16}");
        assert!(peak_power > 0.5, "peak_power={peak_power}");
    }

    #[test]
    fn noise_has_higher_entropy_than_sine() {
        let sine: Vec<f64> = (0..128)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 16.0).sin())
            .collect();
        // Deterministic pseudo-noise.
        let noise: Vec<f64> = (0..128)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let names = feature_names();
        let idx = names.iter().position(|&n| n == "spectral_entropy").unwrap();
        let e_sine = extract_features(&sine)[idx];
        let e_noise = extract_features(&noise)[idx];
        assert!(e_noise > e_sine, "noise={e_noise} sine={e_sine}");
    }

    #[test]
    fn trend_slope_detects_trend() {
        let xs: Vec<f64> = (0..50).map(|i| 0.7 * i as f64).collect();
        let names = feature_names();
        let idx = names.iter().position(|&n| n == "trend_slope").unwrap();
        assert!((extract_features(&xs)[idx] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn peaks_counted() {
        let xs = vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let names = feature_names();
        let idx = names.iter().position(|&n| n == "n_peaks").unwrap();
        let f = extract_features(&xs);
        assert!((f[idx] - 3.0 / 7.0).abs() < 1e-9);
    }
}
