//! Feature extraction for the non-NN baselines.
//!
//! The benchmark paper's feature-based selectors run TSFresh over each window
//! and train classic classifiers on the result; the kernel-based selector is
//! MiniRocket + ridge regression. This crate provides both substrates:
//!
//! * [`features`] — a TSFresh-style statistical feature vector (location,
//!   dispersion, shape, autocorrelation, spectral and complexity features).
//! * [`minirocket`] — a reimplementation of the MiniRocket transform: fixed
//!   length-9 kernels with weights in {−1, 2}, exponential dilations, bias
//!   quantiles taken from the data, and PPV (proportion of positive values)
//!   pooling.

pub mod features;
pub mod minirocket;

pub use features::{extract_features, feature_names, FEATURE_COUNT};
pub use minirocket::MiniRocket;
