//! MiniRocket transform (Dempster et al.), reimplemented.
//!
//! MiniRocket convolves the input with the fixed set of 84 length-9 kernels
//! whose weights are −1 except at three positions where they are 2 (all
//! C(9,3) choices), across exponentially spaced dilations, and pools each
//! convolution output with PPV — the proportion of values exceeding a bias
//! drawn from the quantiles of the training distribution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 84 fixed MiniRocket kernels, each encoded by the 3 positions that
/// carry weight `2` (remaining 6 positions carry weight `−1`).
fn kernel_indices() -> Vec<[usize; 3]> {
    let mut out = Vec::with_capacity(84);
    for a in 0..9 {
        for b in a + 1..9 {
            for c in b + 1..9 {
                out.push([a, b, c]);
            }
        }
    }
    out
}

/// A fitted MiniRocket transform.
#[derive(Debug, Clone)]
pub struct MiniRocket {
    kernels: Vec<[usize; 3]>,
    dilations: Vec<usize>,
    /// `biases[kernel][dilation]` → bias values (one PPV feature each).
    biases: Vec<Vec<Vec<f64>>>,
    input_len: usize,
    features_per_pair: usize,
}

impl MiniRocket {
    /// Fits bias quantiles on training windows.
    ///
    /// * `windows` — training windows, all of length `input_len`.
    /// * `features_per_pair` — PPV biases per (kernel, dilation) pair.
    /// * `seed` — drives the subsample of windows used for quantiles.
    ///
    /// # Panics
    /// Panics if `windows` is empty or lengths are inconsistent.
    pub fn fit(windows: &[Vec<f64>], features_per_pair: usize, seed: u64) -> Self {
        assert!(!windows.is_empty(), "MiniRocket needs training windows");
        let input_len = windows[0].len();
        assert!(input_len >= 9, "windows must hold a length-9 kernel");
        assert!(features_per_pair >= 1, "at least one bias per pair");
        let kernels = kernel_indices();
        let dilations = dilations_for(input_len);

        // Sample windows for the bias quantiles.
        let mut rng = StdRng::seed_from_u64(seed);
        let sample_count = windows.len().min(32);
        let mut sample_idx: Vec<usize> = (0..windows.len()).collect();
        for i in 0..sample_count {
            let j = rng.random_range(i..windows.len());
            sample_idx.swap(i, j);
        }
        let samples = &sample_idx[..sample_count];

        let mut biases = vec![vec![Vec::new(); dilations.len()]; kernels.len()];
        let mut conv_buf = vec![0.0f64; input_len];
        for (ki, kernel) in kernels.iter().enumerate() {
            for (di, &dilation) in dilations.iter().enumerate() {
                // Pool conv outputs over the sample to pick quantile biases.
                let mut pool = Vec::with_capacity(sample_count * input_len);
                for &wi in samples {
                    convolve(&windows[wi], kernel, dilation, &mut conv_buf);
                    pool.extend_from_slice(&conv_buf);
                }
                pool.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let m = features_per_pair;
                let qs: Vec<f64> = (1..=m)
                    .map(|q| tslinalg::stats::quantile_sorted(&pool, q as f64 / (m + 1) as f64))
                    .collect();
                biases[ki][di] = qs;
            }
        }
        Self {
            kernels,
            dilations,
            biases,
            input_len,
            features_per_pair,
        }
    }

    /// Number of output features.
    pub fn n_features(&self) -> usize {
        self.kernels.len() * self.dilations.len() * self.features_per_pair
    }

    /// Transforms one window into its PPV feature vector.
    ///
    /// # Panics
    /// Panics if the window length differs from the fitted length.
    pub fn transform(&self, window: &[f64]) -> Vec<f64> {
        assert_eq!(window.len(), self.input_len, "window length mismatch");
        let mut out = Vec::with_capacity(self.n_features());
        let mut conv_buf = vec![0.0f64; self.input_len];
        for (ki, kernel) in self.kernels.iter().enumerate() {
            for (di, &dilation) in self.dilations.iter().enumerate() {
                convolve(window, kernel, dilation, &mut conv_buf);
                for &bias in &self.biases[ki][di] {
                    let ppv = conv_buf.iter().filter(|&&v| v > bias).count() as f64
                        / conv_buf.len() as f64;
                    out.push(ppv);
                }
            }
        }
        out
    }

    /// Transforms a batch of windows, one pool task per window. Each window
    /// is independent, so the output equals the serial map at any thread
    /// count.
    pub fn transform_batch(&self, windows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        tspar::par_map(windows.len(), |i| self.transform(&windows[i]))
    }
}

/// Exponential dilation schedule fitting a length-9 kernel into `len`.
fn dilations_for(len: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 1;
    while 8 * d < len && out.len() < 5 {
        out.push(d);
        d *= 2;
    }
    out
}

/// Convolution with a {−1, 2} kernel at the given dilation, "same" padding.
///
/// The sum of all weights is −6 + 3·2 = 0, so the output is invariant to
/// constant offsets in the input (inside the valid region).
fn convolve(x: &[f64], kernel: &[usize; 3], dilation: usize, out: &mut [f64]) {
    // Tap-major: one strided axpy sweep per kernel tap instead of a 9-tap
    // gather per output. Each out[t] still accumulates its in-range taps in
    // ascending-k order starting from 0.0, so the result is bitwise
    // identical to the per-t formulation — only the loop nest changed.
    let n = x.len() as isize;
    out.fill(0.0);
    for k in 0..9usize {
        let w = if kernel.contains(&k) { 2.0 } else { -1.0 };
        let off = (k as isize - 4) * dilation as isize;
        // Valid outputs: t + off ∈ [0, n).
        let t0 = (-off).max(0).min(out.len() as isize);
        let t1 = (n - off).clamp(t0, out.len() as isize);
        let (t0, t1) = (t0 as usize, t1 as usize);
        let xs = &x[(t0 as isize + off) as usize..(t1 as isize + off) as usize];
        tsnn::simd::axpy_f64(&mut out[t0..t1], w, xs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_windows() -> Vec<Vec<f64>> {
        (0..8)
            .map(|s| {
                (0..32)
                    .map(|t| ((t + s) as f64 * 0.4).sin() + 0.1 * s as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn eighty_four_kernels() {
        assert_eq!(kernel_indices().len(), 84);
    }

    #[test]
    fn feature_count_matches_formula() {
        let mr = MiniRocket::fit(&toy_windows(), 2, 0);
        assert_eq!(mr.transform(&toy_windows()[0]).len(), mr.n_features());
        assert_eq!(mr.n_features(), 84 * mr.dilations.len() * 2);
    }

    #[test]
    fn ppv_features_are_fractions() {
        let mr = MiniRocket::fit(&toy_windows(), 3, 1);
        for w in toy_windows() {
            for v in mr.transform(&w) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn transform_is_deterministic() {
        let mr = MiniRocket::fit(&toy_windows(), 2, 7);
        let a = mr.transform(&toy_windows()[3]);
        let b = mr.transform(&toy_windows()[3]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_signals_get_different_features() {
        let mr = MiniRocket::fit(&toy_windows(), 2, 7);
        let sine: Vec<f64> = (0..32).map(|t| (t as f64 * 0.4).sin()).collect();
        let ramp: Vec<f64> = (0..32).map(|t| t as f64 * 0.1).collect();
        assert_ne!(mr.transform(&sine), mr.transform(&ramp));
    }

    #[test]
    fn dilation_schedule_respects_length() {
        assert_eq!(dilations_for(9), vec![1]);
        assert_eq!(dilations_for(32), vec![1, 2]);
        assert_eq!(dilations_for(200), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn kernel_sum_is_zero_makes_conv_offset_invariant() {
        let kernel = [0usize, 4, 8];
        let x: Vec<f64> = (0..32).map(|t| (t as f64 * 0.3).cos()).collect();
        let shifted: Vec<f64> = x.iter().map(|v| v + 100.0).collect();
        let mut a = vec![0.0; 32];
        let mut b = vec![0.0; 32];
        convolve(&x, &kernel, 1, &mut a);
        convolve(&shifted, &kernel, 1, &mut b);
        // Interior (away from padding) is identical.
        for t in 8..24 {
            assert!((a[t] - b[t]).abs() < 1e-9, "t={t}");
        }
    }

    /// The per-t gather formulation the tap-major `convolve` replaced.
    fn convolve_per_t(x: &[f64], kernel: &[usize; 3], dilation: usize, out: &mut [f64]) {
        let n = x.len();
        for (t, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in 0..9usize {
                let offset = t as isize + (k as isize - 4) * dilation as isize;
                if offset < 0 || offset >= n as isize {
                    continue;
                }
                let w = if kernel.contains(&k) { 2.0 } else { -1.0 };
                acc += w * x[offset as usize];
            }
            *o = acc;
        }
    }

    #[test]
    fn tap_major_convolve_bitwise_equals_per_t_reference() {
        use tsnn::simd::{set_simd_policy, SimdPolicy};
        let x: Vec<f64> = (0..61)
            .map(|t| (t as f64 * 0.23).sin() * 1.7 - 0.4)
            .collect();
        for kernel in [[0usize, 1, 2], [0, 4, 8], [2, 5, 7], [6, 7, 8]] {
            // Dilation 8 pushes every tap out of range for some outputs.
            for dilation in [1usize, 2, 4, 8] {
                let mut want = vec![0.0; x.len()];
                convolve_per_t(&x, &kernel, dilation, &mut want);
                for policy in [SimdPolicy::Lanes, SimdPolicy::Scalar] {
                    set_simd_policy(policy);
                    let mut got = vec![f64::NAN; x.len()];
                    convolve(&x, &kernel, dilation, &mut got);
                    assert!(
                        got.iter()
                            .zip(&want)
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "kernel={kernel:?} dilation={dilation} policy={policy:?}"
                    );
                }
                set_simd_policy(SimdPolicy::Auto);
            }
        }
    }

    #[test]
    #[should_panic(expected = "window length mismatch")]
    fn wrong_length_rejected() {
        let mr = MiniRocket::fit(&toy_windows(), 2, 0);
        let _ = mr.transform(&[0.0; 16]);
    }
}
