//! In-repo profiling: scoped phase spans + deterministic counters.
//!
//! The serving hot path is instrumented with two orthogonal primitives:
//!
//! * **Counters** ([`Counter`], [`incr`]) — monotonic event counts
//!   (requests admitted, cache hits, arena growth, …). Always compiled,
//!   always deterministic for a deterministic workload: a relaxed atomic
//!   add is order-independent, so the totals are reproducible and tests
//!   can pin them exactly.
//! * **Spans** ([`span!`]) — scoped wall-clock timing aggregated per
//!   [`Phase`] (`admit → coalesce → window → pack → score → complete`,
//!   plus `route` and `train`). Spans exist only when the `timing`
//!   feature is on; otherwise the macro expands to nothing and the hot
//!   path carries **zero** profiling cost. Only the bench binary enables
//!   the feature, to emit the `profile` record in `BENCH_micro.json`.
//!
//! # Determinism contract
//!
//! Wall-clock reads are confined to the single audited [`now_ns`] site
//! below and only ever feed *reported timings* — no value or branch in
//! the serving path depends on them. Counters never read the clock.
//!
//! # Span nesting
//!
//! Phase accumulators are **inclusive**: a `Pack` span opened inside an
//! enclosing `Score` span contributes to both phases. The bench's
//! `profile` record reports phases side by side, so read `pack` as "time
//! inside score spent staging the input", not as a disjoint slice.

use std::sync::atomic::{AtomicU64, Ordering};

/// Serving/training phases, in hot-path order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Request admission (`ServeQueue::submit`).
    Admit,
    /// Coalescer group claim (queue lock + batch assembly).
    Coalesce,
    /// Window extraction + z-normalisation (cache miss path).
    Window,
    /// Staging the batch input tensor from window rows.
    Pack,
    /// The model forward (encoder + classifier). Includes `Pack`.
    Score,
    /// Ticket completion (splitting scores, waking producers).
    Complete,
    /// Sharded-router hop (placement, shard queue round-trip).
    Route,
    /// Training step (forward + backward + update).
    Train,
}

impl Phase {
    /// All phases, reporting order.
    pub const ALL: [Phase; 8] = [
        Phase::Admit,
        Phase::Coalesce,
        Phase::Window,
        Phase::Pack,
        Phase::Score,
        Phase::Complete,
        Phase::Route,
        Phase::Train,
    ];

    /// Canonical lowercase name (the `profile` record's keys).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admit => "admit",
            Phase::Coalesce => "coalesce",
            Phase::Window => "window",
            Phase::Pack => "pack",
            Phase::Score => "score",
            Phase::Complete => "complete",
            Phase::Route => "route",
            Phase::Train => "train",
        }
    }
}

/// Deterministic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Requests admitted by `ServeQueue::submit`.
    RequestsAdmitted,
    /// Groups claimed by the coalescer.
    GroupsCoalesced,
    /// Series scored through `Selector` batch paths.
    SeriesScored,
    /// Window matrices built (cache misses + uncached extraction).
    WindowsBuilt,
    /// Window-cache hits.
    CacheHits,
    /// Window-cache misses.
    CacheMisses,
    /// Scratch-arena buffer growth events (allocations).
    ArenaGrowth,
    /// Scratch-arena buffer reuses (allocation avoided).
    ArenaReuse,
    /// Requests routed through the sharded tier.
    RouteHops,
    /// Training steps executed.
    TrainSteps,
}

impl Counter {
    /// All counters, reporting order.
    pub const ALL: [Counter; 10] = [
        Counter::RequestsAdmitted,
        Counter::GroupsCoalesced,
        Counter::SeriesScored,
        Counter::WindowsBuilt,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::ArenaGrowth,
        Counter::ArenaReuse,
        Counter::RouteHops,
        Counter::TrainSteps,
    ];

    /// Canonical snake_case name (the `profile` record's keys).
    pub fn name(self) -> &'static str {
        match self {
            Counter::RequestsAdmitted => "requests_admitted",
            Counter::GroupsCoalesced => "groups_coalesced",
            Counter::SeriesScored => "series_scored",
            Counter::WindowsBuilt => "windows_built",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::ArenaGrowth => "arena_growth",
            Counter::ArenaReuse => "arena_reuse",
            Counter::RouteHops => "route_hops",
            Counter::TrainSteps => "train_steps",
        }
    }
}

const N_PHASES: usize = Phase::ALL.len();
const N_COUNTERS: usize = Counter::ALL.len();

static PHASE_NANOS: [AtomicU64; N_PHASES] = [const { AtomicU64::new(0) }; N_PHASES];
static PHASE_CALLS: [AtomicU64; N_PHASES] = [const { AtomicU64::new(0) }; N_PHASES];
static COUNTERS: [AtomicU64; N_COUNTERS] = [const { AtomicU64::new(0) }; N_COUNTERS];

/// Adds `by` to a counter. Always compiled; a relaxed add is the whole
/// cost, so instrumenting a hot loop is safe.
#[inline]
pub fn incr(c: Counter, by: u64) {
    // kdlint: allow(relaxed): stat counter — nothing branches on it; totals are order-independent
    COUNTERS[c as usize].fetch_add(by, Ordering::Relaxed);
}

/// Current value of a counter.
#[inline]
pub fn counter_value(c: Counter) -> u64 {
    // kdlint: allow(relaxed): stat counter read — reported totals only, no happens-before needed
    COUNTERS[c as usize].load(Ordering::Relaxed)
}

/// Accumulated statistics for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name (see [`Phase::name`]).
    pub name: &'static str,
    /// Number of spans recorded.
    pub calls: u64,
    /// Total inclusive nanoseconds across those spans.
    pub nanos: u64,
}

/// Accumulated value for one counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterStat {
    /// Counter name (see [`Counter::name`]).
    pub name: &'static str,
    /// Current total.
    pub value: u64,
}

/// Whether span timing is compiled in (the `timing` cargo feature).
#[inline]
pub const fn timing_enabled() -> bool {
    cfg!(feature = "timing")
}

/// Per-phase span statistics. All zeros when timing is compiled out.
pub fn phase_stats() -> Vec<PhaseStat> {
    Phase::ALL
        .iter()
        .map(|&p| PhaseStat {
            name: p.name(),
            // kdlint: allow(relaxed): stat counter reads — aggregate report only
            calls: PHASE_CALLS[p as usize].load(Ordering::Relaxed),
            // kdlint: allow(relaxed): stat counter reads — aggregate report only
            nanos: PHASE_NANOS[p as usize].load(Ordering::Relaxed),
        })
        .collect()
}

/// Snapshot of every counter.
pub fn counter_stats() -> Vec<CounterStat> {
    Counter::ALL
        .iter()
        .map(|&c| CounterStat {
            name: c.name(),
            value: counter_value(c),
        })
        .collect()
}

/// Zeroes every phase accumulator and counter. Benchmarks call this
/// between sections so each `profile` breakdown covers one workload.
pub fn reset() {
    for a in PHASE_NANOS.iter().chain(&PHASE_CALLS).chain(&COUNTERS) {
        // kdlint: allow(relaxed): stat counter reset — callers quiesce the workload first
        a.store(0, Ordering::Relaxed);
    }
}

/// The single audited wall-clock site: monotonic nanoseconds since the
/// first read. Feeds span accumulators only — reported timings, never
/// results — so the determinism contract (`no-wallclock`) holds.
#[cfg(feature = "timing")]
fn now_ns() -> u64 {
    // kdlint: allow(wallclock): the one audited profiling clock — spans only feed the bench profile record, never results or control flow
    static ANCHOR: std::sync::OnceLock<std::time::Instant> = std::sync::OnceLock::new();
    ANCHOR
        // kdlint: allow(wallclock): anchor-relative monotonic read for
        // span timing; affects reported latency only
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_nanos() as u64
}

/// RAII guard: records `now − enter` into its phase on drop. Construct
/// through [`span!`], which compiles the whole thing out when the
/// `timing` feature is off.
#[cfg(feature = "timing")]
pub struct SpanGuard {
    phase: usize,
    start: u64,
}

#[cfg(feature = "timing")]
impl SpanGuard {
    /// Opens a span on `phase`.
    #[inline]
    pub fn enter(phase: Phase) -> Self {
        Self {
            phase: phase as usize,
            start: now_ns(),
        }
    }
}

#[cfg(feature = "timing")]
impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        let elapsed = now_ns().saturating_sub(self.start);
        // kdlint: allow(relaxed): stat counter — span totals are reported aggregates only
        PHASE_NANOS[self.phase].fetch_add(elapsed, Ordering::Relaxed);
        // kdlint: allow(relaxed): stat counter — span totals are reported aggregates only
        PHASE_CALLS[self.phase].fetch_add(1, Ordering::Relaxed);
    }
}

/// Opens a scoped span on a [`Phase`], recorded when the enclosing scope
/// ends: `kdprof::span!(kdprof::Phase::Score);`. Expands to nothing
/// (zero cost, argument not evaluated) unless the `timing` feature is on.
#[cfg(feature = "timing")]
#[macro_export]
macro_rules! span {
    ($phase:expr) => {
        let _kdprof_span = $crate::SpanGuard::enter($phase);
    };
}

/// Opens a scoped span on a [`Phase`], recorded when the enclosing scope
/// ends: `kdprof::span!(kdprof::Phase::Score);`. Expands to nothing
/// (zero cost, argument not evaluated) unless the `timing` feature is on.
#[cfg(not(feature = "timing"))]
#[macro_export]
macro_rules! span {
    ($phase:expr) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The accumulators are process-global; serialise tests that reset
    /// them so parallel test threads cannot interleave.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = LOCK.lock().unwrap();
        reset();
        incr(Counter::CacheHits, 3);
        incr(Counter::CacheHits, 2);
        incr(Counter::ArenaGrowth, 1);
        assert_eq!(counter_value(Counter::CacheHits), 5);
        assert_eq!(counter_value(Counter::ArenaGrowth), 1);
        let stats = counter_stats();
        assert_eq!(stats.len(), Counter::ALL.len());
        assert!(stats.iter().any(|s| s.name == "cache_hits" && s.value == 5));
        reset();
        assert_eq!(counter_value(Counter::CacheHits), 0);
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["admit", "coalesce", "window", "pack", "score", "complete", "route", "train"]
        );
    }

    #[test]
    #[cfg(feature = "timing")]
    fn spans_record_calls() {
        let _g = LOCK.lock().unwrap();
        reset();
        {
            span!(Phase::Score);
            std::hint::black_box(0u64);
        }
        let stats = phase_stats();
        let score = stats.iter().find(|s| s.name == "score").unwrap();
        assert_eq!(score.calls, 1);
        reset();
    }

    #[test]
    #[cfg(not(feature = "timing"))]
    fn spans_compile_out() {
        let _g = LOCK.lock().unwrap();
        reset();
        {
            span!(Phase::Score);
        }
        assert!(phase_stats().iter().all(|s| s.calls == 0 && s.nanos == 0));
    }
}
