//! Random forest (bagging + feature subsampling over CART trees).

use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random-forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            max_depth: 10,
            seed: 0,
        }
    }
}

impl RandomForest {
    /// Trains the forest: each tree sees a bootstrap sample and √d features
    /// per split.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], cfg: ForestConfig) -> Self {
        assert!(!xs.is_empty(), "forest needs training data");
        assert_eq!(xs.len(), ys.len(), "labels mismatch");
        let n = xs.len();
        let d = xs[0].len();
        let n_classes = ys.iter().copied().max().unwrap_or(0) + 1;
        let max_features = (d as f64).sqrt().ceil() as usize;
        let tree_cfg = TreeConfig {
            max_depth: cfg.max_depth,
            min_samples_split: 2,
            max_features: Some(max_features.max(1)),
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut trees = Vec::with_capacity(cfg.n_trees);
        for _ in 0..cfg.n_trees {
            // Bootstrap resample.
            let mut bx = Vec::with_capacity(n);
            let mut by = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.random_range(0..n);
                bx.push(xs[i].clone());
                by.push(ys[i]);
            }
            // Keep class count stable even if a class is missing in the
            // bootstrap: pad the label space by passing dummy distribution
            // width through ys' max — simplest fix: ensure one sample of the
            // max class exists.
            if by.iter().copied().max().unwrap_or(0) + 1 < n_classes {
                if let Some(pos) = ys.iter().position(|&y| y == n_classes - 1) {
                    bx.push(xs[pos].clone());
                    by.push(ys[pos]);
                }
            }
            trees.push(DecisionTree::fit(&bx, &by, None, tree_cfg, &mut rng));
        }
        Self { trees, n_classes }
    }

    /// Averaged class probabilities across trees.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.n_classes];
        for t in &self.trees {
            let p = t.predict_proba(x);
            for (a, &v) in acc.iter_mut().zip(&p) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{blobs, xor};

    #[test]
    fn fits_blobs() {
        let (xs, ys) = blobs();
        let rf = RandomForest::fit(
            &xs,
            &ys,
            ForestConfig {
                n_trees: 20,
                ..Default::default()
            },
        );
        let acc = rf
            .predict_batch(&xs)
            .iter()
            .zip(&ys)
            .filter(|(a, b)| a == b)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn solves_xor() {
        let (xs, ys) = xor();
        let rf = RandomForest::fit(
            &xs,
            &ys,
            ForestConfig {
                n_trees: 30,
                ..Default::default()
            },
        );
        let acc = rf
            .predict_batch(&xs)
            .iter()
            .zip(&ys)
            .filter(|(a, b)| a == b)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (xs, ys) = blobs();
        let cfg = ForestConfig {
            n_trees: 5,
            max_depth: 4,
            seed: 11,
        };
        let a = RandomForest::fit(&xs, &ys, cfg);
        let b = RandomForest::fit(&xs, &ys, cfg);
        let test = vec![1.5, 2.5];
        assert_eq!(a.predict_proba(&test), b.predict_proba(&test));
    }

    #[test]
    fn proba_is_a_distribution() {
        let (xs, ys) = blobs();
        let rf = RandomForest::fit(
            &xs,
            &ys,
            ForestConfig {
                n_trees: 7,
                ..Default::default()
            },
        );
        let p = rf.predict_proba(&[3.0, 3.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v >= 0.0));
    }
}
