//! K-nearest-neighbours classifier.

use crate::Classifier;

/// Brute-force KNN with Euclidean distance and majority vote
/// (distance-weighted tie-break).
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    xs: Vec<Vec<f64>>,
    ys: Vec<usize>,
    n_classes: usize,
}

impl Knn {
    /// Stores the training set.
    ///
    /// # Panics
    /// Panics if inputs are empty or lengths mismatch, or `k == 0`.
    pub fn fit(xs: Vec<Vec<f64>>, ys: Vec<usize>, k: usize) -> Self {
        assert!(!xs.is_empty(), "KNN needs training data");
        assert_eq!(xs.len(), ys.len(), "labels mismatch");
        assert!(k >= 1, "k must be at least 1");
        let n_classes = ys.iter().copied().max().unwrap_or(0) + 1;
        Self {
            k,
            xs,
            ys,
            n_classes,
        }
    }
}

impl Classifier for Knn {
    fn predict(&self, x: &[f64]) -> usize {
        let mut dists: Vec<(f64, usize)> = self
            .xs
            .iter()
            .zip(&self.ys)
            .map(|(t, &y)| {
                let d: f64 = t.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, y)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        // Distance-weighted vote over the k nearest.
        let mut votes = vec![0.0f64; self.n_classes];
        for &(d, y) in &dists[..k] {
            votes[y] += 1.0 / (d.sqrt() + 1e-9);
        }
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::blobs;

    #[test]
    fn classifies_blobs_perfectly() {
        let (xs, ys) = blobs();
        let knn = Knn::fit(xs.clone(), ys.clone(), 3);
        let preds = knn.predict_batch(&xs);
        let acc = preds.iter().zip(&ys).filter(|(a, b)| a == b).count();
        assert_eq!(acc, xs.len());
    }

    #[test]
    fn k_one_memorises_training_points() {
        let (xs, ys) = blobs();
        let knn = Knn::fit(xs.clone(), ys.clone(), 1);
        assert_eq!(knn.predict(&xs[17]), ys[17]);
    }

    #[test]
    fn predicts_nearby_unseen_points() {
        let (xs, ys) = blobs();
        let knn = Knn::fit(xs, ys, 5);
        assert_eq!(knn.predict(&[0.1, 0.1]), 0);
        assert_eq!(knn.predict(&[5.9, 0.2]), 1);
        assert_eq!(knn.predict(&[0.0, 6.3]), 2);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![0, 1];
        let knn = Knn::fit(xs, ys, 100);
        let _ = knn.predict(&[0.4]); // must not panic
    }
}
