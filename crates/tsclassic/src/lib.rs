//! Classic machine-learning classifiers for the non-NN selector baselines.
//!
//! Implements the four feature-based selectors of the benchmark paper (KNN,
//! SVC, AdaBoost, RandomForest) plus the ridge-regression classifier used on
//! top of the MiniRocket transform. All classifiers operate on dense `f64`
//! feature vectors and share the [`Classifier`] protocol.

pub mod adaboost;
pub mod forest;
pub mod knn;
pub mod ridge;
pub mod scaler;
pub mod svc;
pub mod tree;

pub use adaboost::AdaBoost;
pub use forest::RandomForest;
pub use knn::Knn;
pub use ridge::RidgeClassifier;
pub use scaler::StandardScaler;
pub use svc::LinearSvc;

/// A fitted multi-class classifier over dense feature vectors.
pub trait Classifier {
    /// Predicts the class of one sample.
    fn predict(&self, x: &[f64]) -> usize;

    /// Number of classes the model was trained with.
    fn n_classes(&self) -> usize;

    /// Predicts a batch.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

#[cfg(test)]
pub(crate) mod testdata {
    //! Shared toy datasets for classifier tests.

    /// Three well-separated Gaussian-ish blobs in 2-D (deterministic).
    pub fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [(0.0, 0.0), (6.0, 0.0), (0.0, 6.0)];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..30 {
                // Deterministic jitter.
                let a = ((i * 37 + c * 101) % 17) as f64 / 17.0 - 0.5;
                let b = ((i * 53 + c * 29) % 13) as f64 / 13.0 - 0.5;
                xs.push(vec![cx + a, cy + b]);
                ys.push(c);
            }
        }
        (xs, ys)
    }

    /// XOR-style data that linear models cannot separate but trees can.
    pub fn xor() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let jitter = (i % 7) as f64 * 0.02;
            let (qx, qy) = match i % 4 {
                0 => (1.0, 1.0),
                1 => (-1.0, -1.0),
                2 => (1.0, -1.0),
                _ => (-1.0, 1.0),
            };
            xs.push(vec![qx + jitter, qy - jitter]);
            ys.push(if qx * qy > 0.0 { 0 } else { 1 });
        }
        (xs, ys)
    }
}
