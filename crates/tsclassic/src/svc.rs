//! Linear support-vector classifier (one-vs-rest hinge loss, SGD).
//!
//! The benchmark's SVC baseline uses a kernel SVM; this reproduction trains a
//! multi-class *linear* SVM with L2 regularisation by averaged SGD (a
//! Pegasos-style solver) on standardised features — same model family, CPU
//! budget friendly. Documented as a substitution in DESIGN.md.

use crate::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One-vs-rest linear SVM.
#[derive(Debug, Clone)]
pub struct LinearSvc {
    /// Per-class weight vectors (`n_classes × d`).
    weights: Vec<Vec<f64>>,
    /// Per-class biases.
    biases: Vec<f64>,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct SvcConfig {
    /// L2 regularisation strength λ.
    pub lambda: f64,
    /// Number of SGD epochs.
    pub epochs: usize,
    /// RNG seed for sample shuffling.
    pub seed: u64,
}

impl Default for SvcConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-4,
            epochs: 30,
            seed: 0,
        }
    }
}

impl LinearSvc {
    /// Trains one binary hinge-loss SVM per class.
    ///
    /// # Panics
    /// Panics on empty/ragged input.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], cfg: SvcConfig) -> Self {
        assert!(!xs.is_empty(), "SVC needs training data");
        assert_eq!(xs.len(), ys.len(), "labels mismatch");
        let d = xs[0].len();
        let n_classes = ys.iter().copied().max().unwrap_or(0) + 1;
        let mut weights = vec![vec![0.0; d]; n_classes];
        let mut biases = vec![0.0; n_classes];
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..xs.len()).collect();

        for class in 0..n_classes {
            let w = &mut weights[class];
            let b = &mut biases[class];
            let mut t = 0usize;
            for _ in 0..cfg.epochs {
                // Fisher–Yates shuffle.
                for i in (1..order.len()).rev() {
                    let j = rng.random_range(0..=i);
                    order.swap(i, j);
                }
                for &i in order.iter() {
                    t += 1;
                    let eta = 1.0 / (cfg.lambda * t as f64);
                    let y = if ys[i] == class { 1.0 } else { -1.0 };
                    let margin: f64 = w.iter().zip(&xs[i]).map(|(a, b)| a * b).sum::<f64>() + *b;
                    // L2 shrinkage.
                    let shrink = 1.0 - eta * cfg.lambda;
                    for wv in w.iter_mut() {
                        *wv *= shrink;
                    }
                    if y * margin < 1.0 {
                        for (wv, &xv) in w.iter_mut().zip(&xs[i]) {
                            *wv += eta * y * xv;
                        }
                        *b += eta * y * 0.1; // unregularised slow bias
                    }
                }
            }
        }
        Self { weights, biases }
    }

    /// Decision value for each class.
    pub fn decision_function(&self, x: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.biases)
            .map(|(w, &b)| w.iter().zip(x).map(|(a, c)| a * c).sum::<f64>() + b)
            .collect()
    }
}

impl Classifier for LinearSvc {
    fn predict(&self, x: &[f64]) -> usize {
        self.decision_function(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn n_classes(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::blobs;

    #[test]
    fn separates_linear_blobs() {
        let (xs, ys) = blobs();
        let svc = LinearSvc::fit(&xs, &ys, SvcConfig::default());
        let preds = svc.predict_batch(&xs);
        let acc = preds.iter().zip(&ys).filter(|(a, b)| a == b).count() as f64 / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn decision_function_has_one_value_per_class() {
        let (xs, ys) = blobs();
        let svc = LinearSvc::fit(&xs, &ys, SvcConfig::default());
        assert_eq!(svc.decision_function(&xs[0]).len(), 3);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (xs, ys) = blobs();
        let a = LinearSvc::fit(&xs, &ys, SvcConfig::default());
        let b = LinearSvc::fit(&xs, &ys, SvcConfig::default());
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn predicts_generalising_points() {
        let (xs, ys) = blobs();
        let svc = LinearSvc::fit(&xs, &ys, SvcConfig::default());
        assert_eq!(svc.predict(&[6.2, -0.1]), 1);
        assert_eq!(svc.predict(&[-0.2, 6.2]), 2);
    }
}
