//! Per-feature standardisation.

/// Z-score scaler fitted on training features; constant features pass
/// through unchanged (std clamped to 1).
#[derive(Debug, Clone)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on training rows.
    ///
    /// # Panics
    /// Panics if `xs` is empty or ragged.
    pub fn fit(xs: &[Vec<f64>]) -> Self {
        assert!(!xs.is_empty(), "scaler needs data");
        let d = xs[0].len();
        let n = xs.len() as f64;
        let mut mean = vec![0.0; d];
        for x in xs {
            assert_eq!(x.len(), d, "ragged feature rows");
            for (m, &v) in mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for x in xs {
            for ((s, &v), &m) in var.iter_mut().zip(x).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| (v / n).sqrt())
            .map(|s| if s < 1e-9 { 1.0 } else { s })
            .collect();
        Self { mean, std }
    }

    /// Scales one row.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect()
    }

    /// Scales a batch.
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_training_data_has_zero_mean_unit_std() {
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, 100.0 - 2.0 * i as f64])
            .collect();
        let sc = StandardScaler::fit(&xs);
        let scaled = sc.transform_batch(&xs);
        for d in 0..2 {
            let mean: f64 = scaled.iter().map(|r| r[d]).sum::<f64>() / 50.0;
            let var: f64 = scaled.iter().map(|r| r[d] * r[d]).sum::<f64>() / 50.0;
            assert!(mean.abs() < 1e-10);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_feature_passes_through() {
        let xs = vec![vec![3.0], vec![3.0], vec![3.0]];
        let sc = StandardScaler::fit(&xs);
        assert_eq!(sc.transform(&[3.0]), vec![0.0]);
        assert_eq!(sc.transform(&[4.0]), vec![1.0]);
    }
}
