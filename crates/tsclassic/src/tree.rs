//! CART decision tree (Gini impurity), the base learner for the forest and
//! the stump pool of AdaBoost.

use rand::rngs::StdRng;
use rand::Rng;

/// A trained decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Class-probability distribution at the leaf.
        dist: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Tree-growing parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth (1 = decision stump).
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Number of random features considered per split
    /// (`None` = all features; forests use √d).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

impl DecisionTree {
    /// Grows a tree on (optionally weighted) samples.
    ///
    /// `sample_weights` of `None` means uniform.
    ///
    /// # Panics
    /// Panics on empty/ragged input.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[usize],
        sample_weights: Option<&[f64]>,
        cfg: TreeConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert!(!xs.is_empty(), "tree needs training data");
        assert_eq!(xs.len(), ys.len(), "labels mismatch");
        let n_classes = ys.iter().copied().max().unwrap_or(0) + 1;
        let idx: Vec<usize> = (0..xs.len()).collect();
        let mut tree = Self {
            nodes: Vec::new(),
            n_classes,
        };
        tree.grow(xs, ys, sample_weights, &idx, 0, cfg, rng);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[usize],
        weights: Option<&[f64]>,
        idx: &[usize],
        depth: usize,
        cfg: TreeConfig,
        rng: &mut StdRng,
    ) -> usize {
        let dist = class_distribution(ys, weights, idx, self.n_classes);
        let node_gini = gini(&dist);
        let make_leaf =
            depth >= cfg.max_depth || idx.len() < cfg.min_samples_split || node_gini < 1e-12;
        if make_leaf {
            self.nodes.push(Node::Leaf { dist });
            return self.nodes.len() - 1;
        }

        let d = xs[0].len();
        let n_feats = cfg.max_features.unwrap_or(d).min(d).max(1);
        // Sample features without replacement.
        let mut features: Vec<usize> = (0..d).collect();
        for i in 0..n_feats {
            let j = rng.random_range(i..d);
            features.swap(i, j);
        }
        let features = &features[..n_feats];

        let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
        for &f in features {
            if let Some((imp, thr)) = best_split_on_feature(xs, ys, weights, idx, f, self.n_classes)
            {
                if best.is_none_or(|(bi, _, _)| imp < bi) {
                    best = Some((imp, f, thr));
                }
            }
        }

        let Some((imp, feature, threshold)) = best else {
            self.nodes.push(Node::Leaf { dist });
            return self.nodes.len() - 1;
        };
        if imp >= node_gini - 1e-12 {
            // No impurity improvement.
            self.nodes.push(Node::Leaf { dist });
            return self.nodes.len() - 1;
        }

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| xs[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(Node::Leaf { dist });
            return self.nodes.len() - 1;
        }

        // Reserve this node's slot, then grow children.
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { dist: vec![] }); // placeholder
        let left = self.grow(xs, ys, weights, &left_idx, depth + 1, cfg, rng);
        let right = self.grow(xs, ys, weights, &right_idx, depth + 1, cfg, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Class-probability distribution for one sample.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { dist } => return dist.clone(),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Hard prediction.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of nodes (for tests / introspection).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn class_distribution(
    ys: &[usize],
    weights: Option<&[f64]>,
    idx: &[usize],
    n_classes: usize,
) -> Vec<f64> {
    let mut dist = vec![0.0; n_classes];
    let mut total = 0.0;
    for &i in idx {
        let w = weights.map_or(1.0, |w| w[i]);
        dist[ys[i]] += w;
        total += w;
    }
    if total > 0.0 {
        for v in &mut dist {
            *v /= total;
        }
    }
    dist
}

fn gini(dist: &[f64]) -> f64 {
    1.0 - dist.iter().map(|p| p * p).sum::<f64>()
}

/// Finds the weighted-Gini-optimal threshold on one feature.
/// Returns `(weighted child impurity, threshold)` or `None` if the feature is
/// constant on the subset.
fn best_split_on_feature(
    xs: &[Vec<f64>],
    ys: &[usize],
    weights: Option<&[f64]>,
    idx: &[usize],
    feature: usize,
    n_classes: usize,
) -> Option<(f64, f64)> {
    let mut order: Vec<usize> = idx.to_vec();
    order.sort_by(|&a, &b| {
        xs[a][feature]
            .partial_cmp(&xs[b][feature])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let first = xs[order[0]][feature];
    let last = xs[*order.last().expect("non-empty")][feature];
    if (last - first).abs() < 1e-12 {
        return None;
    }

    let mut left_counts = vec![0.0f64; n_classes];
    let mut right_counts = vec![0.0f64; n_classes];
    let mut right_total = 0.0;
    for &i in &order {
        let w = weights.map_or(1.0, |w| w[i]);
        right_counts[ys[i]] += w;
        right_total += w;
    }
    let mut left_total = 0.0;
    let total = right_total;

    let mut best: Option<(f64, f64)> = None;
    for k in 0..order.len() - 1 {
        let i = order[k];
        let w = weights.map_or(1.0, |w| w[i]);
        left_counts[ys[i]] += w;
        left_total += w;
        right_counts[ys[i]] -= w;
        right_total -= w;
        let v = xs[i][feature];
        let v_next = xs[order[k + 1]][feature];
        if v_next - v < 1e-12 {
            continue; // ties cannot be split here
        }
        let gl = gini_counts(&left_counts, left_total);
        let gr = gini_counts(&right_counts, right_total);
        let imp = (left_total * gl + right_total * gr) / total;
        let thr = (v + v_next) / 2.0;
        if best.is_none_or(|(bi, _)| imp < bi) {
            best = Some((imp, thr));
        }
    }
    best
}

fn gini_counts(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|c| (c / total) * (c / total))
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{blobs, xor};
    use rand::SeedableRng;

    #[test]
    fn fits_blobs_perfectly() {
        let (xs, ys) = blobs();
        let mut rng = StdRng::seed_from_u64(0);
        let tree = DecisionTree::fit(&xs, &ys, None, TreeConfig::default(), &mut rng);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(tree.predict(x), y);
        }
    }

    #[test]
    fn solves_xor_unlike_linear_models() {
        let (xs, ys) = xor();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&xs, &ys, None, TreeConfig::default(), &mut rng);
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| tree.predict(x) == y)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn depth_one_is_a_stump() {
        let (xs, ys) = blobs();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&xs, &ys, None, cfg, &mut rng);
        // Stump: 1 split + 2 leaves.
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn sample_weights_shift_the_leaf_distribution() {
        // Two overlapping points with different labels: weight decides.
        let xs = vec![vec![0.0], vec![0.0]];
        let ys = vec![0, 1];
        let mut rng = StdRng::seed_from_u64(3);
        let heavy_one =
            DecisionTree::fit(&xs, &ys, Some(&[0.1, 0.9]), TreeConfig::default(), &mut rng);
        assert_eq!(heavy_one.predict(&[0.0]), 1);
        let heavy_zero =
            DecisionTree::fit(&xs, &ys, Some(&[0.9, 0.1]), TreeConfig::default(), &mut rng);
        assert_eq!(heavy_zero.predict(&[0.0]), 0);
    }

    #[test]
    fn proba_sums_to_one() {
        let (xs, ys) = blobs();
        let mut rng = StdRng::seed_from_u64(4);
        let tree = DecisionTree::fit(&xs, &ys, None, TreeConfig::default(), &mut rng);
        let p = tree.predict_proba(&[1.0, 1.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
