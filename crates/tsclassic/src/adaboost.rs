//! Multi-class AdaBoost (SAMME) over decision stumps.

use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SAMME AdaBoost with depth-2 trees as weak learners.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    learners: Vec<(f64, DecisionTree)>,
    n_classes: usize,
}

/// Boosting hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct AdaBoostConfig {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Depth of each weak learner.
    pub depth: usize,
    /// RNG seed (drives tie-breaking in the trees).
    pub seed: u64,
}

impl Default for AdaBoostConfig {
    fn default() -> Self {
        Self {
            n_rounds: 40,
            depth: 2,
            seed: 0,
        }
    }
}

impl AdaBoost {
    /// Trains the boosted ensemble with the SAMME weight updates.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], cfg: AdaBoostConfig) -> Self {
        assert!(!xs.is_empty(), "AdaBoost needs training data");
        assert_eq!(xs.len(), ys.len(), "labels mismatch");
        let n = xs.len();
        let k = ys.iter().copied().max().unwrap_or(0) + 1;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut weights = vec![1.0 / n as f64; n];
        let mut learners = Vec::new();
        let tree_cfg = TreeConfig {
            max_depth: cfg.depth,
            min_samples_split: 2,
            max_features: None,
        };

        for _ in 0..cfg.n_rounds {
            let tree = DecisionTree::fit(xs, ys, Some(&weights), tree_cfg, &mut rng);
            // Weighted error.
            let mut err = 0.0;
            let preds: Vec<usize> = xs.iter().map(|x| tree.predict(x)).collect();
            for ((&w, &p), &y) in weights.iter().zip(&preds).zip(ys) {
                if p != y {
                    err += w;
                }
            }
            err = err.clamp(1e-12, 1.0);
            // SAMME: stop if no better than chance.
            if err >= 1.0 - 1.0 / k as f64 {
                if learners.is_empty() {
                    learners.push((1.0, tree));
                }
                break;
            }
            let alpha = ((1.0 - err) / err).ln() + (k as f64 - 1.0).ln();
            // Re-weight: misclassified up.
            for ((w, &p), &y) in weights.iter_mut().zip(&preds).zip(ys) {
                if p != y {
                    *w *= alpha.exp();
                }
            }
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            let perfect = err <= 1e-11;
            learners.push((alpha, tree));
            if perfect {
                break; // a perfect learner ends boosting
            }
        }
        Self {
            learners,
            n_classes: k,
        }
    }

    /// Number of fitted rounds.
    pub fn n_learners(&self) -> usize {
        self.learners.len()
    }

    /// Weighted vote scores per class.
    pub fn decision_function(&self, x: &[f64]) -> Vec<f64> {
        let mut scores = vec![0.0; self.n_classes];
        for (alpha, tree) in &self.learners {
            scores[tree.predict(x)] += alpha;
        }
        scores
    }
}

impl Classifier for AdaBoost {
    fn predict(&self, x: &[f64]) -> usize {
        self.decision_function(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{blobs, xor};

    #[test]
    fn boosts_stumps_to_solve_blobs() {
        let (xs, ys) = blobs();
        let ada = AdaBoost::fit(&xs, &ys, AdaBoostConfig::default());
        let acc = ada
            .predict_batch(&xs)
            .iter()
            .zip(&ys)
            .filter(|(a, b)| a == b)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn solves_xor_with_depth_two() {
        let (xs, ys) = xor();
        let ada = AdaBoost::fit(
            &xs,
            &ys,
            AdaBoostConfig {
                n_rounds: 20,
                depth: 2,
                seed: 0,
            },
        );
        let acc = ada
            .predict_batch(&xs)
            .iter()
            .zip(&ys)
            .filter(|(a, b)| a == b)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn stops_early_on_perfect_learner() {
        // Trivially separable data: first stump is perfect.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let ada = AdaBoost::fit(&xs, &ys, AdaBoostConfig::default());
        assert!(ada.n_learners() <= 2, "learners={}", ada.n_learners());
    }

    #[test]
    fn decision_scores_nonnegative() {
        let (xs, ys) = blobs();
        let ada = AdaBoost::fit(
            &xs,
            &ys,
            AdaBoostConfig {
                n_rounds: 5,
                depth: 2,
                seed: 1,
            },
        );
        let s = ada.decision_function(&[0.5, 0.5]);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|&v| v >= 0.0));
    }
}
