//! Ridge-regression classifier (the Rocket head).
//!
//! One-vs-rest ridge regression on ±1 targets with a closed-form Cholesky
//! solve — the classifier MiniRocket pairs with in the original work.

use crate::Classifier;
use tslinalg::decomp::solve_spd_multi;
use tslinalg::Matrix;

/// Multi-class ridge classifier.
#[derive(Debug, Clone)]
pub struct RidgeClassifier {
    /// Weights `(d, n_classes)`.
    weights: Matrix,
    /// Per-class intercepts.
    intercepts: Vec<f64>,
    n_classes: usize,
}

impl RidgeClassifier {
    /// Fits with regularisation strength `lambda` (must be positive).
    ///
    /// # Panics
    /// Panics on empty input or non-positive lambda.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], lambda: f64) -> Self {
        assert!(!xs.is_empty(), "ridge needs training data");
        assert_eq!(xs.len(), ys.len(), "labels mismatch");
        assert!(lambda > 0.0, "lambda must be positive");
        let n = xs.len();
        let d = xs[0].len();
        let k = ys.iter().copied().max().unwrap_or(0) + 1;

        // Center features (intercept handling) and build the design matrix.
        let mut mean = vec![0.0; d];
        for x in xs {
            for (m, &v) in mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut design = Matrix::zeros(n, d);
        for (i, x) in xs.iter().enumerate() {
            for (j, (&v, &m)) in x.iter().zip(&mean).enumerate() {
                design[(i, j)] = v - m;
            }
        }

        // ±1 one-vs-rest targets, centered.
        let mut targets = Matrix::zeros(n, k);
        let mut target_means = vec![0.0; k];
        for (i, &y) in ys.iter().enumerate() {
            for c in 0..k {
                let t = if y == c { 1.0 } else { -1.0 };
                targets[(i, c)] = t;
                target_means[c] += t;
            }
        }
        for m in &mut target_means {
            *m /= n as f64;
        }
        for i in 0..n {
            for c in 0..k {
                targets[(i, c)] -= target_means[c];
            }
        }

        // Solve (XᵀX + λI) W = XᵀY for all classes at once.
        let mut gram = design.gram();
        gram.add_diagonal(lambda);
        let xty = design.transpose().matmul(&targets);
        let weights = solve_spd_multi(&gram, &xty).expect("ridge system is SPD");

        // Intercepts so predictions are centered correctly:
        // b_c = t̄_c − x̄ᵀ w_c.
        let mut intercepts = vec![0.0; k];
        for c in 0..k {
            let mut dot = 0.0;
            for j in 0..d {
                dot += mean[j] * weights[(j, c)];
            }
            intercepts[c] = target_means[c] - dot;
        }
        Self {
            weights,
            intercepts,
            n_classes: k,
        }
    }

    /// Decision value per class.
    pub fn decision_function(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.weights.rows(), "dimension mismatch");
        (0..self.n_classes)
            .map(|c| {
                let mut dot = self.intercepts[c];
                for (j, &v) in x.iter().enumerate() {
                    dot += v * self.weights[(j, c)];
                }
                dot
            })
            .collect()
    }
}

impl Classifier for RidgeClassifier {
    fn predict(&self, x: &[f64]) -> usize {
        self.decision_function(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::blobs;

    #[test]
    fn separates_blobs() {
        let (xs, ys) = blobs();
        let ridge = RidgeClassifier::fit(&xs, &ys, 1.0);
        let acc = ridge
            .predict_batch(&xs)
            .iter()
            .zip(&ys)
            .filter(|(a, b)| a == b)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn heavier_regularisation_shrinks_weights() {
        let (xs, ys) = blobs();
        let light = RidgeClassifier::fit(&xs, &ys, 1e-3);
        let heavy = RidgeClassifier::fit(&xs, &ys, 1e3);
        assert!(heavy.weights.frobenius_norm() < light.weights.frobenius_norm());
    }

    #[test]
    fn decision_function_length() {
        let (xs, ys) = blobs();
        let ridge = RidgeClassifier::fit(&xs, &ys, 1.0);
        assert_eq!(ridge.decision_function(&xs[0]).len(), 3);
    }

    #[test]
    fn works_with_singular_like_features() {
        // Duplicate features — only solvable thanks to the ridge term.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let ridge = RidgeClassifier::fit(&xs, &ys, 1.0);
        assert_eq!(ridge.predict(&[2.0, 2.0]), 0);
        assert_eq!(ridge.predict(&[18.0, 18.0]), 1);
    }
}
