//! Dense row-major `f32` tensor.

use crate::gemm;

/// A dense row-major tensor of `f32` values with a dynamic shape.
///
/// The workspace uses three layouts:
/// * `(N, C, L)` — batched channel-major sequences (conv stacks),
/// * `(N, T, D)` — batched token sequences (attention blocks),
/// * `(N, D)` — batched feature vectors (heads, projections).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(data.len(), numel, "buffer does not match shape {shape:?}");
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Stacks equal-length rows into a `(rows.len(), row_len)` tensor.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let n = rows.len();
        let d = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n * d);
        for r in rows {
            assert_eq!(r.len(), d, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            shape: vec![n, d],
            data,
        }
    }

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat immutable data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Size of dimension `d`.
    #[inline]
    pub fn dim(&self, d: usize) -> usize {
        self.shape[d]
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    /// Panics on element-count mismatch.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.data.len(), "reshape element mismatch");
        self.shape = shape.to_vec();
        self
    }

    /// Row `i` of a rank-2 tensor.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert_eq!(self.shape.len(), 2);
        let d = self.shape[1];
        &self.data[i * d..(i + 1) * d]
    }

    /// Mutable row `i` of a rank-2 tensor.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert_eq!(self.shape.len(), 2);
        let d = self.shape[1];
        &mut self.data[i * d..(i + 1) * d]
    }

    /// Contiguous `(C·L)`- or `(T·D)`-slice for batch element `n` of a
    /// rank-3 tensor.
    #[inline]
    pub fn batch(&self, n: usize) -> &[f32] {
        debug_assert_eq!(self.shape.len(), 3);
        let stride = self.shape[1] * self.shape[2];
        &self.data[n * stride..(n + 1) * stride]
    }

    /// Mutable batch slice of a rank-3 tensor.
    #[inline]
    pub fn batch_mut(&mut self, n: usize) -> &mut [f32] {
        debug_assert_eq!(self.shape.len(), 3);
        let stride = self.shape[1] * self.shape[2];
        &mut self.data[n * stride..(n + 1) * stride]
    }

    /// Fills with zeros in place.
    pub fn zero_(&mut self) {
        for v in &mut self.data {
            *v = 0.0;
        }
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self *= scalar`.
    pub fn scale_(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sum of squares of all elements.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// Consumes the tensor, returning its flat buffer. Lets hot loops
    /// recycle allocations (`Tensor::from_vec(shape, buf)` → use →
    /// `buf = t.into_data()`).
    #[inline]
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product of two rank-2 tensors: `(n,k) × (k,m) → (n,m)`.
    ///
    /// Runs on the cache-blocked, register-tiled, parallel kernel in
    /// [`crate::gemm`]; results are bit-identical at any thread count.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (n, k) = (self.shape[0], self.shape[1]);
        let (k2, m) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch");
        let mut out = Tensor::zeros(&[n, m]);
        gemm::gemm(
            n,
            m,
            k,
            &self.data,
            gemm::Layout::Normal,
            &other.data,
            gemm::Layout::Normal,
            &mut out.data,
        );
        out
    }

    /// `selfᵀ × other` for rank-2 tensors: `(n,k)ᵀ × (n,m) → (k,m)`.
    ///
    /// The transpose is absorbed by the kernel's packing step — `self` is
    /// never materialised transposed.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (n, k) = (self.shape[0], self.shape[1]);
        let (n2, m) = (other.shape[0], other.shape[1]);
        assert_eq!(n, n2, "t_matmul outer dimension mismatch");
        let mut out = Tensor::zeros(&[k, m]);
        gemm::gemm(
            k,
            m,
            n,
            &self.data,
            gemm::Layout::Transposed,
            &other.data,
            gemm::Layout::Normal,
            &mut out.data,
        );
        out
    }

    /// `self × otherᵀ` for rank-2 tensors: `(n,k) × (m,k)ᵀ → (n,m)`.
    ///
    /// The transpose is absorbed by the kernel's packing step.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (n, k) = (self.shape[0], self.shape[1]);
        let (m, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_t inner dimension mismatch");
        let mut out = Tensor::zeros(&[n, m]);
        gemm::gemm(
            n,
            m,
            k,
            &self.data,
            gemm::Layout::Normal,
            &other.data,
            gemm::Layout::Transposed,
            &mut out.data,
        );
        out
    }

    /// Reference `matmul`: the seed's single-threaded i-k-j axpy kernel,
    /// kept verbatim so tests and benchmarks compare the blocked path
    /// against the original implementation.
    pub fn matmul_naive(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (n, k) = (self.shape[0], self.shape[1]);
        let m = other.shape[1];
        assert_eq!(k, other.shape[0], "matmul inner dimension mismatch");
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..n {
            let a_row = self.row(i);
            let o_row = &mut out.data[i * m..(i + 1) * m];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * m..(kk + 1) * m];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Reference `t_matmul`: the seed's column-wise accumulation kernel.
    pub fn t_matmul_naive(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (n, k) = (self.shape[0], self.shape[1]);
        let m = other.shape[1];
        assert_eq!(n, other.shape[0], "t_matmul outer dimension mismatch");
        let mut out = Tensor::zeros(&[k, m]);
        for i in 0..n {
            let a_row = self.row(i);
            let b_row = other.row(i);
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out.data[kk * m..(kk + 1) * m];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Reference `matmul_t`: the seed's row-dot kernel.
    pub fn matmul_t_naive(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (n, k) = (self.shape[0], self.shape[1]);
        let m = other.shape[0];
        assert_eq!(k, other.shape[1], "matmul_t inner dimension mismatch");
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..n {
            let a_row = self.row(i);
            let o_row = &mut out.data[i * m..(i + 1) * m];
            for (j, o) in o_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_numel() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.numel(), 24);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "reshape element mismatch")]
    fn reshape_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 2]).reshape(&[3, 2]);
    }

    #[test]
    fn rows_and_batches_are_views() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.row(1), &[4., 5., 6.]);
        let b = Tensor::from_vec(&[2, 2, 2], (0..8).map(|i| i as f32).collect());
        assert_eq!(b.batch(1), &[4., 5., 6., 7.]);
    }

    #[test]
    fn matmul_matches_reference() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(&[2, 2], vec![5., 6., 7., 8.]);
        assert_eq!(a.matmul(&b).data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![1., 0., 0., 1., 1., 1.]);
        let got = a.t_matmul(&b); // (2,3)·(3,2) → (2,2)
                                  // aᵀ = [[1,3,5],[2,4,6]]
        assert_eq!(got.data(), &[6., 8., 8., 10.]);
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[2, 3], vec![1., 1., 0., 0., 1., 1.]);
        let got = a.matmul_t(&b); // (2,3)·(3,2) → (2,2)
        assert_eq!(got.data(), &[3., 5., 9., 11.]);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::from_vec(&[2], vec![1., 2.]);
        let b = Tensor::from_vec(&[2], vec![3., 4.]);
        a.add_assign(&b);
        a.scale_(2.0);
        assert_eq!(a.data(), &[8., 12.]);
    }

    #[test]
    fn from_rows_stacks() {
        let t = Tensor::from_rows(&[vec![1., 2.], vec![3., 4.]]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.row(1), &[3., 4.]);
    }

    #[test]
    fn sq_norm_sums_squares() {
        let t = Tensor::from_vec(&[3], vec![1., 2., 2.]);
        assert!((t.sq_norm() - 9.0).abs() < 1e-9);
    }
}
