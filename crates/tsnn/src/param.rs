//! Trainable parameters and the layer protocol.

use crate::tensor::Tensor;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the current backward pass.
    pub grad: Tensor,
}

impl Param {
    /// Wraps a tensor as a parameter with a zero gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.zero_();
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// The layer protocol: stateful forward (caches activations), backward
/// (consumes the cache, accumulates parameter gradients, returns the input
/// gradient), an immutable inference path, and parameter access for the
/// optimizer and for persistence.
///
/// `train` distinguishes training from inference for layers with different
/// behaviours (dropout, batch-norm running statistics).
///
/// [`Layer::infer`] is the shared-state entry point: it computes exactly
/// what `forward(x, false)` computes (bit-identically) but takes `&self`,
/// so a trained layer can serve concurrent batches from many threads
/// without cloning or locking.
pub trait Layer {
    /// Forward pass. Caches whatever `backward` will need when `train` is
    /// true.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Inference pass: identical output to `forward(x, false)`, but `&self`
    /// — no activation caches, no running-statistic updates, safe to call
    /// from many threads at once.
    fn infer(&self, x: &Tensor) -> Tensor;

    /// Backward pass: given ∂loss/∂output, accumulates parameter gradients
    /// and returns ∂loss/∂input. Must be called after a `forward` with
    /// `train = true`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to all trainable parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Read-only access to all trainable parameters, in `params_mut()`
    /// order (persistence snapshots a trained model without `&mut`).
    fn params(&self) -> Vec<&Param>;

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }
}

/// Zeroes the gradients of a parameter list.
pub fn zero_grads(params: &mut [&mut Param]) {
    for p in params.iter_mut() {
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_starts_with_zero_grad() {
        let p = Param::new(Tensor::from_vec(&[2], vec![1.0, -1.0]));
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
        assert_eq!(p.numel(), 2);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.grad.data_mut()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }
}
