//! Optimizers and gradient clipping.

use crate::param::Param;

/// Clips gradients to a maximum global L2 norm, returning the pre-clip norm.
///
/// This enforces the bounded-gradient assumption of the paper's §A.1.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f64) -> f64 {
    let total: f64 = params.iter().map(|p| p.grad.sq_norm()).sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = (max_norm / norm) as f32;
        for p in params.iter_mut() {
            p.grad.scale_(scale);
        }
    }
    norm
}

/// Plain SGD with momentum and optional weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// New optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step. The parameter list must be the same (same
    /// order, same shapes) on every call.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0.0; p.value.numel()]).collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "parameter list changed");
        for (p, vel) in params.iter_mut().zip(&mut self.velocity) {
            let wd = self.weight_decay;
            for ((w, &g), v) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(vel.iter_mut())
            {
                let g = g + wd * *w;
                *v = self.momentum * *v + g;
                *w -= self.lr * *v;
            }
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Serialisable snapshot of an [`Adam`] optimizer's adaptive state.
///
/// Training checkpoints persist this alongside the model weights: restoring
/// it into an optimizer with the same hyperparameters and the same parameter
/// list makes every subsequent [`Adam::step`] bitwise-identical to an
/// uninterrupted run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdamState {
    /// Step counter `t` (bias-correction exponent).
    pub t: i32,
    /// First-moment estimates, parameter-list order.
    pub m: Vec<Vec<f32>>,
    /// Second-moment estimates, parameter-list order.
    pub v: Vec<Vec<f32>>,
}

/// Adam optimizer (Kingma & Ba) with decoupled weight decay off by default.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// New optimizer with the standard betas (0.9, 0.999).
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update step. The parameter list must be stable across
    /// calls.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.value.numel()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.value.numel()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            let wd = self.weight_decay;
            for (((w, &g), mi), vi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                let g = g + wd * *w;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Snapshots the adaptive state (step counter and both moment vectors)
    /// for checkpointing. An optimizer that has never stepped snapshots
    /// empty moments; restoring that is equivalent to a fresh optimizer.
    pub fn state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores a snapshot taken by [`Adam::state`]. The next `step` call
    /// is then bitwise-identical to the step an uninterrupted run would
    /// have taken, provided the parameter list matches the one the
    /// snapshot was taken against (the usual `step` stability contract).
    ///
    /// # Errors
    /// Rejects snapshots whose moment vectors disagree with each other;
    /// a parameter-list mismatch surfaces on the next `step`.
    pub fn load_state(&mut self, state: AdamState) -> Result<(), String> {
        if state.m.len() != state.v.len() {
            return Err(format!(
                "corrupt Adam state: {} first moments vs {} second moments",
                state.m.len(),
                state.v.len()
            ));
        }
        for (i, (m, v)) in state.m.iter().zip(&state.v).enumerate() {
            if m.len() != v.len() {
                return Err(format!(
                    "corrupt Adam state: moment {i} has {} vs {} entries",
                    m.len(),
                    v.len()
                ));
            }
        }
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// Minimises f(w) = (w − 3)² with the given stepper.
    fn converges(mut step: impl FnMut(&mut Param)) -> f32 {
        let mut p = Param::new(Tensor::from_vec(&[1], vec![0.0]));
        for _ in 0..500 {
            let w = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (w - 3.0);
            step(&mut p);
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let w = converges(|p| opt.step(&mut [p]));
        assert!((w - 3.0).abs() < 1e-3, "w={w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05, 0.0);
        let w = converges(|p| opt.step(&mut [p]));
        assert!((w - 3.0).abs() < 0.05, "w={w}");
    }

    #[test]
    fn weight_decay_shrinks_solution() {
        let mut opt = Sgd::new(0.05, 0.0, 1.0);
        let w = converges(|p| opt.step(&mut [p]));
        assert!(w < 2.5 && w > 0.0, "w={w}");
    }

    #[test]
    fn clip_caps_global_norm() {
        let mut p1 = Param::new(Tensor::zeros(&[2]));
        let mut p2 = Param::new(Tensor::zeros(&[2]));
        p1.grad.data_mut().copy_from_slice(&[3.0, 0.0]);
        p2.grad.data_mut().copy_from_slice(&[0.0, 4.0]);
        let norm = clip_grad_norm(&mut [&mut p1, &mut p2], 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let after: f64 = p1.grad.sq_norm() + p2.grad.sq_norm();
        assert!((after.sqrt() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_below_threshold() {
        let mut p = Param::new(Tensor::zeros(&[1]));
        p.grad.data_mut()[0] = 0.5;
        clip_grad_norm(&mut [&mut p], 1.0);
        assert_eq!(p.grad.data()[0], 0.5);
    }

    /// State round-trip through save/restore: a run interrupted mid-way and
    /// resumed from the snapshot lands on bitwise-identical weights.
    #[test]
    fn adam_state_roundtrip_resumes_bitwise() {
        let descend = |opt: &mut Adam, p: &mut Param, steps: usize| {
            for _ in 0..steps {
                let w = p.value.data()[0];
                p.grad.data_mut()[0] = 2.0 * (w - 3.0);
                opt.step(&mut [p]);
            }
        };
        let mut straight_opt = Adam::new(0.05, 0.01);
        let mut straight = Param::new(Tensor::from_vec(&[1], vec![0.0]));
        descend(&mut straight_opt, &mut straight, 40);

        let mut first_opt = Adam::new(0.05, 0.01);
        let mut resumed = Param::new(Tensor::from_vec(&[1], vec![0.0]));
        descend(&mut first_opt, &mut resumed, 17);
        let snapshot = first_opt.state();
        assert_eq!(snapshot.t, 17);
        drop(first_opt);

        let mut second_opt = Adam::new(0.05, 0.01);
        second_opt.load_state(snapshot).unwrap();
        descend(&mut second_opt, &mut resumed, 23);
        assert_eq!(
            straight.value.data()[0].to_bits(),
            resumed.value.data()[0].to_bits(),
            "resume must continue the exact trajectory"
        );
    }

    #[test]
    fn adam_load_state_rejects_inconsistent_moments() {
        let mut opt = Adam::new(0.1, 0.0);
        let bad = AdamState {
            t: 1,
            m: vec![vec![0.0; 2]],
            v: vec![],
        };
        assert!(opt.load_state(bad).is_err());
        let bad_inner = AdamState {
            t: 1,
            m: vec![vec![0.0; 2]],
            v: vec![vec![0.0; 3]],
        };
        assert!(opt.load_state(bad_inner).is_err());
    }
}
