//! Portable SIMD lane types for the `f32`/`f64` compute cores.
//!
//! Dependency-free fixed-width lane structs ([`F32x8`], [`F64x4`]) whose
//! per-lane ops are plain `#[inline(always)]` array loops: under the
//! workspace's `-C target-cpu=native` build LLVM lowers each op to one
//! vector instruction, without any `unsafe`, intrinsics, or nightly
//! features. The hot loops that use them (the GEMM micro-kernel, window
//! z-normalisation, MiniRocket's conv accumulation, Conv1d's inner loops)
//! get an unambiguous width-8/width-4 shape instead of hoping the
//! auto-vectoriser picks one.
//!
//! # Determinism
//!
//! Lane ops are ordinary IEEE-754 scalar arithmetic applied lane-wise —
//! no FMA contraction, no fast-math reassociation — so every helper here
//! has a **bitwise-identical scalar fallback** compiled into the binary.
//! Elementwise helpers ([`axpy`], [`axpy_f64`]) touch each element with
//! the same single operation on both paths. Reduction helpers ([`sum`],
//! [`sum_sq_diff`], [`dot`]) fix one canonical order — [`F32_LANES`]
//! striped partial sums folded by pairwise halving — and the scalar
//! fallback replays exactly that order, so switching paths can never
//! change a bit. `tests` in this module and the consumer crates pin the
//! equality.
//!
//! # Dispatch
//!
//! [`simd_enabled`] picks the path: `KD_NO_SIMD=1` in the environment
//! forces the scalar fallback process-wide (the CI leg that keeps both
//! paths green), and [`set_simd_policy`] overrides programmatically for
//! tests, mirroring [`tspar::set_parallelism`]. The flag is consulted at
//! helper entry, never inside an inner loop.

use std::sync::atomic::{AtomicU8, Ordering};

/// Lane count of [`F32x8`].
pub const F32_LANES: usize = 8;
/// Lane count of [`F32x16`].
pub const F32_WIDE_LANES: usize = 16;
/// Lane count of [`F64x4`].
pub const F64_LANES: usize = 4;

/// Eight `f32` lanes. One AVX/AVX2 register under `target-cpu=native`;
/// two SSE registers on older x86 — either way the ops below compile to
/// branch-free vector code.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(transparent)]
pub struct F32x8(pub [f32; F32_LANES]);

impl F32x8 {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self([0.0; F32_LANES])
    }

    /// Every lane set to `v`.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; F32_LANES])
    }

    /// Loads the first [`F32_LANES`] elements of `s`.
    ///
    /// # Panics
    /// Panics if `s` is shorter than [`F32_LANES`].
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        let arr: &[f32; F32_LANES] = s[..F32_LANES].try_into().expect("8 lanes");
        Self(*arr)
    }

    /// Loads `s` into the low lanes, zero-filling the rest.
    ///
    /// # Panics
    /// Panics if `s` is longer than [`F32_LANES`].
    #[inline(always)]
    pub fn load_partial(s: &[f32]) -> Self {
        let mut arr = [0.0; F32_LANES];
        arr[..s.len()].copy_from_slice(s);
        Self(arr)
    }

    /// Stores all lanes into the first [`F32_LANES`] elements of `d`.
    ///
    /// # Panics
    /// Panics if `d` is shorter than [`F32_LANES`].
    #[inline(always)]
    pub fn store(self, d: &mut [f32]) {
        d[..F32_LANES].copy_from_slice(&self.0);
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; F32_LANES] {
        self.0
    }

    /// The canonical horizontal sum: pairwise halving —
    /// `(l0+l4, l1+l5, l2+l6, l3+l7)` → `(s0+s2, s1+s3)` → `t0+t1`.
    /// The scalar reduction fallbacks replay this exact order.
    #[inline(always)]
    pub fn reduce_sum(self) -> f32 {
        let l = self.0;
        let q = [l[0] + l[4], l[1] + l[5], l[2] + l[6], l[3] + l[7]];
        let h = [q[0] + q[2], q[1] + q[3]];
        h[0] + h[1]
    }
}

/// Expands to lane-wise `Add`/`Mul`/`Sub` operator impls for a lane type.
macro_rules! lane_ops {
    ($ty:ident, $($trait:ident :: $method:ident => $op:tt),+) => {$(
        impl std::ops::$trait for $ty {
            type Output = Self;

            /// Lane-wise, separately rounded (never contracted into FMA).
            #[inline(always)]
            fn $method(self, o: Self) -> Self {
                let mut r = self.0;
                for (a, b) in r.iter_mut().zip(&o.0) {
                    *a $op b;
                }
                Self(r)
            }
        }
    )+};
}

lane_ops!(F32x8, Add::add => +=, Mul::mul => *=, Sub::sub => -=);
lane_ops!(F32x16, Add::add => +=, Mul::mul => *=);
lane_ops!(F64x4, Add::add => +=, Mul::mul => *=);

/// Sixteen `f32` lanes — one full 512-bit register on AVX-512 targets,
/// two 256-bit registers elsewhere. The GEMM micro-kernel's accumulator
/// width: at 8 lanes LLVM's SLP pass fuses *pairs* of accumulator rows
/// into one 512-bit register and pays a `vpermt2ps` shuffle storm every
/// `k` step to do it; at 16 lanes each row is already register-shaped and
/// the loop compiles to clean broadcast/mul/add sequences.
///
/// Keep values of this type in **individually named locals**, not arrays:
/// an array of accumulators larger than ~256 bytes defeats LLVM's scalar
/// replacement and the whole tile spills to the stack.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(transparent)]
pub struct F32x16(pub [f32; F32_WIDE_LANES]);

impl F32x16 {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self([0.0; F32_WIDE_LANES])
    }

    /// Every lane set to `v`.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; F32_WIDE_LANES])
    }

    /// Loads the first [`F32_WIDE_LANES`] elements of `s`.
    ///
    /// # Panics
    /// Panics if `s` is shorter than [`F32_WIDE_LANES`].
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        let arr: &[f32; F32_WIDE_LANES] = s[..F32_WIDE_LANES].try_into().expect("16 lanes");
        Self(*arr)
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; F32_WIDE_LANES] {
        self.0
    }

    /// `self + splat(a) * x`, the broadcast multiply-accumulate of the
    /// GEMM micro-kernel. Mul and add round separately (no FMA
    /// contraction), so the result is bitwise the scalar
    /// `acc + a * x[lane]` per lane.
    #[inline(always)]
    pub fn mul_add_to(self, a: f32, x: Self) -> Self {
        self + Self::splat(a) * x
    }

    /// `self + splat(a) * x` with a *single* rounding per lane: lane `i`
    /// is exactly `a.mul_add(x[i], self[i])` (`f32::mul_add`, the IEEE-754
    /// correctly-rounded fusedMultiplyAdd — deterministic on every
    /// platform, hardware FMA or libm fallback). The GEMM kernels use
    /// this as their canonical per-step op; [`Self::mul_add_to`] keeps
    /// the two-rounding form for callers that need it.
    #[inline(always)]
    pub fn fma_to(self, a: f32, x: Self) -> Self {
        let mut out = self.0;
        for (o, &xv) in out.iter_mut().zip(&x.0) {
            *o = a.mul_add(xv, *o);
        }
        Self(out)
    }

    /// Lane-wise fused multiply-add with a vector multiplicand: lane `i`
    /// is exactly `a[i].mul_add(x[i], self[i])`. The dual-panel GEMM
    /// kernel hoists one broadcast into a register and feeds it to two
    /// `fma_vv` calls — bitwise [`Self::fma_to`] with `a = splat(s)`,
    /// minus the second broadcast load.
    #[inline(always)]
    pub fn fma_vv(self, a: Self, x: Self) -> Self {
        let mut out = self.0;
        for ((o, &av), &xv) in out.iter_mut().zip(&a.0).zip(&x.0) {
            *o = av.mul_add(xv, *o);
        }
        Self(out)
    }
}

/// Four `f64` lanes: one AVX register / two SSE2 registers.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(transparent)]
pub struct F64x4(pub [f64; F64_LANES]);

impl F64x4 {
    /// Every lane set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self([v; F64_LANES])
    }

    /// Loads the first [`F64_LANES`] elements of `s`.
    ///
    /// # Panics
    /// Panics if `s` is shorter than [`F64_LANES`].
    #[inline(always)]
    pub fn load(s: &[f64]) -> Self {
        let arr: &[f64; F64_LANES] = s[..F64_LANES].try_into().expect("4 lanes");
        Self(*arr)
    }

    /// Stores all lanes into the first [`F64_LANES`] elements of `d`.
    ///
    /// # Panics
    /// Panics if `d` is shorter than [`F64_LANES`].
    #[inline(always)]
    pub fn store(self, d: &mut [f64]) {
        d[..F64_LANES].copy_from_slice(&self.0);
    }
}

/// Which micro-kernel path the compute helpers take. Never affects
/// results — the scalar fallback is bitwise-identical by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPolicy {
    /// Follow the environment: scalar iff `KD_NO_SIMD=1`.
    Auto,
    /// Force the lane path regardless of the environment.
    Lanes,
    /// Force the scalar fallback regardless of the environment.
    Scalar,
}

/// 0 = Auto, 1 = Lanes, 2 = Scalar.
static POLICY: AtomicU8 = AtomicU8::new(0);

/// Installs a process-wide dispatch override (tests sweep both paths);
/// `Auto` restores the `KD_NO_SIMD` environment default.
pub fn set_simd_policy(p: SimdPolicy) {
    let v = match p {
        SimdPolicy::Auto => 0,
        SimdPolicy::Lanes => 1,
        SimdPolicy::Scalar => 2,
    };
    POLICY.store(v, Ordering::SeqCst);
}

fn env_no_simd() -> bool {
    static CACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("KD_NO_SIMD")
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
            .unwrap_or(false)
    })
}

/// Whether the lane path is live (see the module docs for dispatch).
#[inline]
pub fn simd_enabled() -> bool {
    match POLICY.load(Ordering::SeqCst) {
        1 => true,
        2 => false,
        _ => !env_no_simd(),
    }
}

// ---------------------------------------------------------------------------
// Elementwise helpers (identical per-element op on both paths).
// ---------------------------------------------------------------------------

/// `dst[i] += a * xs[i]` — the axpy at the heart of tap-major convolution.
/// Lane and scalar paths perform the same single mul-then-add per element,
/// so they are bitwise identical trivially.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(dst: &mut [f32], a: f32, xs: &[f32]) {
    assert_eq!(dst.len(), xs.len(), "axpy length mismatch");
    if simd_enabled() {
        let av = F32x8::splat(a);
        let mut d = dst.chunks_exact_mut(F32_LANES);
        let mut x = xs.chunks_exact(F32_LANES);
        for (dc, xc) in (&mut d).zip(&mut x) {
            (F32x8::load(dc) + av * F32x8::load(xc)).store(dc);
        }
        for (dv, &xv) in d.into_remainder().iter_mut().zip(x.remainder()) {
            *dv += a * xv;
        }
    } else {
        for (dv, &xv) in dst.iter_mut().zip(xs) {
            *dv += a * xv;
        }
    }
}

/// `dst[i] += a * xs[i]` over `f64` (MiniRocket's conv accumulation).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy_f64(dst: &mut [f64], a: f64, xs: &[f64]) {
    assert_eq!(dst.len(), xs.len(), "axpy length mismatch");
    if simd_enabled() {
        let av = F64x4::splat(a);
        let mut d = dst.chunks_exact_mut(F64_LANES);
        let mut x = xs.chunks_exact(F64_LANES);
        for (dc, xc) in (&mut d).zip(&mut x) {
            (F64x4::load(dc) + av * F64x4::load(xc)).store(dc);
        }
        for (dv, &xv) in d.into_remainder().iter_mut().zip(x.remainder()) {
            *dv += a * xv;
        }
    } else {
        for (dv, &xv) in dst.iter_mut().zip(xs) {
            *dv += a * xv;
        }
    }
}

// ---------------------------------------------------------------------------
// Reductions (one canonical striped order, replayed exactly by the scalar
// fallback).
// ---------------------------------------------------------------------------

/// Striped sum: 8 partial sums over `xs[i*8+j]`, the zero-padded tail
/// added lane-wise, folded by [`F32x8::reduce_sum`]'s pairwise tree.
///
/// This is a *different* (and deterministic) summation order than a
/// sequential `iter().sum()`, chosen once so the lane and scalar paths
/// agree bitwise; callers adopting it accept the one-time change in
/// rounding relative to the sequential order.
#[inline]
pub fn sum(xs: &[f32]) -> f32 {
    if simd_enabled() {
        let mut acc = F32x8::zero();
        let chunks = xs.chunks_exact(F32_LANES);
        let rem = chunks.remainder();
        for c in chunks {
            acc = acc + F32x8::load(c);
        }
        acc = acc + F32x8::load_partial(rem);
        acc.reduce_sum()
    } else {
        sum_scalar(xs)
    }
}

/// The scalar replay of [`sum`]'s striped order (public so consumer tests
/// can pin lane ≡ scalar without flipping the global policy).
pub fn sum_scalar(xs: &[f32]) -> f32 {
    let mut acc = [0.0f32; F32_LANES];
    let chunks = xs.chunks_exact(F32_LANES);
    let rem = chunks.remainder();
    for c in chunks {
        for (a, &v) in acc.iter_mut().zip(c) {
            *a += v;
        }
    }
    let mut tail = [0.0f32; F32_LANES];
    tail[..rem.len()].copy_from_slice(rem);
    for (a, &v) in acc.iter_mut().zip(&tail) {
        *a += v;
    }
    F32x8(acc).reduce_sum()
}

/// Striped `Σ (xs[i] - mean)²` in [`sum`]'s canonical order — the variance
/// accumulation of window z-normalisation.
#[inline]
pub fn sum_sq_diff(xs: &[f32], mean: f32) -> f32 {
    if simd_enabled() {
        let mv = F32x8::splat(mean);
        let mut acc = F32x8::zero();
        let chunks = xs.chunks_exact(F32_LANES);
        let rem = chunks.remainder();
        for c in chunks {
            let d = F32x8::load(c) - mv;
            acc = acc + d * d;
        }
        // Zero-pad the tail *after* subtracting the mean so padded lanes
        // contribute exactly 0.0, like the scalar replay below.
        let mut tail = [0.0f32; F32_LANES];
        for (t, &v) in tail.iter_mut().zip(rem) {
            let d = v - mean;
            *t = d * d;
        }
        acc = acc + F32x8(tail);
        acc.reduce_sum()
    } else {
        sum_sq_diff_scalar(xs, mean)
    }
}

/// The scalar replay of [`sum_sq_diff`].
pub fn sum_sq_diff_scalar(xs: &[f32], mean: f32) -> f32 {
    let mut acc = [0.0f32; F32_LANES];
    let chunks = xs.chunks_exact(F32_LANES);
    let rem = chunks.remainder();
    for c in chunks {
        for (a, &v) in acc.iter_mut().zip(c) {
            let d = v - mean;
            *a += d * d;
        }
    }
    let mut tail = [0.0f32; F32_LANES];
    for (t, &v) in tail.iter_mut().zip(rem) {
        let d = v - mean;
        *t = d * d;
    }
    for (a, &v) in acc.iter_mut().zip(&tail) {
        *a += v;
    }
    F32x8(acc).reduce_sum()
}

/// Striped dot product `Σ a[i]·b[i]` in [`sum`]'s canonical order
/// (Conv1d's weight-gradient accumulation).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    if simd_enabled() {
        let mut acc = F32x8::zero();
        let mut ac = a.chunks_exact(F32_LANES);
        let mut bc = b.chunks_exact(F32_LANES);
        for (av, bv) in (&mut ac).zip(&mut bc) {
            acc = acc + F32x8::load(av) * F32x8::load(bv);
        }
        let mut tail = [0.0f32; F32_LANES];
        for ((t, &av), &bv) in tail.iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
            *t = av * bv;
        }
        acc = acc + F32x8(tail);
        acc.reduce_sum()
    } else {
        dot_scalar(a, b)
    }
}

/// The scalar replay of [`dot`].
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = [0.0f32; F32_LANES];
    let mut ac = a.chunks_exact(F32_LANES);
    let mut bc = b.chunks_exact(F32_LANES);
    for (av, bv) in (&mut ac).zip(&mut bc) {
        for ((x, &p), &q) in acc.iter_mut().zip(av).zip(bv) {
            *x += p * q;
        }
    }
    let mut tail = [0.0f32; F32_LANES];
    for ((t, &av), &bv) in tail.iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
        *t = av * bv;
    }
    for (x, &v) in acc.iter_mut().zip(&tail) {
        *x += v;
    }
    F32x8(acc).reduce_sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, salt: f32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 * 0.73 + salt).sin() * 2.0) - 0.3)
            .collect()
    }

    /// Runs `f` under both forced policies and restores `Auto`.
    fn both_paths<R>(mut f: impl FnMut() -> R) -> (R, R) {
        set_simd_policy(SimdPolicy::Lanes);
        let lanes = f();
        set_simd_policy(SimdPolicy::Scalar);
        let scalar = f();
        set_simd_policy(SimdPolicy::Auto);
        (lanes, scalar)
    }

    #[test]
    fn lane_ops_are_lane_wise() {
        let a = F32x8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F32x8::splat(0.5);
        assert_eq!((a * b).to_array(), [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]);
        assert_eq!((a - a).to_array(), [0.0; 8]);
        assert_eq!((a + b).to_array()[7], 8.5);
        assert_eq!(a.reduce_sum(), 36.0);
        let d = F64x4([1.0, 2.0, 3.0, 4.0]);
        assert_eq!((d * F64x4::splat(2.0) + d).0, [3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn wide_lane_ops_are_lane_wise() {
        let ramp: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let v = F32x16::load(&ramp);
        assert_eq!((v * F32x16::splat(2.0)).to_array()[15], 30.0);
        assert_eq!((v + v).to_array()[3], 6.0);
        // mul_add_to is mul-then-add per lane, no contraction.
        let acc = F32x16::splat(1.0).mul_add_to(0.5, v);
        for (lane, &x) in acc.to_array().iter().zip(&ramp) {
            assert_eq!(lane.to_bits(), (1.0f32 + 0.5 * x).to_bits());
        }
        assert_eq!(F32x16::zero().to_array(), [0.0; 16]);
    }

    #[test]
    fn fma_ops_are_single_rounded_per_lane() {
        // Values where fused (single-rounding) and mul-then-add differ in
        // the last bit, so the test fails if fma_to ever degrades to
        // mul_add_to semantics.
        let x: Vec<f32> = (0..16).map(|i| 1.0 + (i as f32) * 1e-7).collect();
        let a = 1.000_000_1_f32;
        let acc = F32x16::splat(0.25).fma_to(a, F32x16::load(&x));
        for (lane, &xv) in acc.to_array().iter().zip(&x) {
            assert_eq!(lane.to_bits(), a.mul_add(xv, 0.25).to_bits());
        }
        // fma_vv with a splat multiplicand is bitwise fma_to — the
        // contract the dual-panel GEMM kernel's hoisted broadcast rides on.
        let vv = F32x16::splat(0.25).fma_vv(F32x16::splat(a), F32x16::load(&x));
        for (l, r) in vv.to_array().iter().zip(acc.to_array()) {
            assert_eq!(l.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn load_partial_zero_fills() {
        let v = F32x8::load_partial(&[1.0, 2.0, 3.0]);
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(F32x8::load_partial(&[]).to_array(), [0.0; 8]);
    }

    #[test]
    fn reductions_bitwise_equal_across_paths_and_lengths() {
        // Lengths crossing every tail case: empty, sub-lane, exact
        // multiples, and off-by-one around them.
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100, 1000] {
            let xs = ramp(n, 0.17);
            let ys = ramp(n, 4.2);
            let (l, s) = both_paths(|| sum(&xs));
            assert_eq!(l.to_bits(), s.to_bits(), "sum n={n}");
            assert_eq!(s.to_bits(), sum_scalar(&xs).to_bits());
            let (l, s) = both_paths(|| sum_sq_diff(&xs, 0.21));
            assert_eq!(l.to_bits(), s.to_bits(), "sum_sq_diff n={n}");
            let (l, s) = both_paths(|| dot(&xs, &ys));
            assert_eq!(l.to_bits(), s.to_bits(), "dot n={n}");
        }
    }

    #[test]
    fn axpy_bitwise_equal_across_paths() {
        for n in [0usize, 1, 5, 8, 13, 64, 257] {
            let xs = ramp(n, 1.1);
            let base = ramp(n, 2.2);
            let (l, s) = both_paths(|| {
                let mut d = base.clone();
                axpy(&mut d, -0.37, &xs);
                d
            });
            assert_eq!(l, s, "axpy n={n}");
            let xs64: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
            let base64: Vec<f64> = base.iter().map(|&v| v as f64).collect();
            let (l, s) = both_paths(|| {
                let mut d = base64.clone();
                axpy_f64(&mut d, 0.83, &xs64);
                d
            });
            assert_eq!(l, s, "axpy_f64 n={n}");
        }
    }

    #[test]
    fn reductions_match_reference_within_tolerance() {
        // The striped order is a different rounding than sequential; it
        // must still be an accurate sum.
        let xs = ramp(1000, 0.5);
        let seq: f64 = xs.iter().map(|&v| v as f64).sum();
        assert!((sum(&xs) as f64 - seq).abs() < 1e-3);
        let mean = (seq / 1000.0) as f32;
        let seq_var: f64 = xs.iter().map(|&v| ((v - mean) as f64).powi(2)).sum();
        assert!((sum_sq_diff(&xs, mean) as f64 - seq_var).abs() < 1e-2);
        let ys = ramp(1000, 3.3);
        let seq_dot: f64 = xs.iter().zip(&ys).map(|(&a, &b)| (a * b) as f64).sum();
        assert!((dot(&xs, &ys) as f64 - seq_dot).abs() < 1e-2);
    }

    #[test]
    fn policy_override_controls_dispatch() {
        set_simd_policy(SimdPolicy::Lanes);
        assert!(simd_enabled());
        set_simd_policy(SimdPolicy::Scalar);
        assert!(!simd_enabled());
        set_simd_policy(SimdPolicy::Auto);
    }
}
