//! Loss functions with per-sample weights.
//!
//! Every loss takes an optional per-sample weight vector. The InfoBatch/PA
//! pruning strategies rescale surviving samples' gradients by `1/(1-r)`
//! (paper Eq. 20–22); multiplying the per-sample loss by that factor is the
//! exact equivalent, so the weights thread through here.
//!
//! All losses return the scalar loss (mean over the batch) and the gradient
//! with respect to their inputs.

use crate::tensor::Tensor;

/// Scalar loss and input gradient.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f64,
    /// ∂loss/∂input, same shape as the input.
    pub grad: Tensor,
}

/// Per-sample losses alongside the batch gradient — the pruning strategies
/// need the individual values to maintain running means.
#[derive(Debug, Clone)]
pub struct PerSampleLoss {
    /// Mean (weighted) loss.
    pub loss: f64,
    /// Unweighted per-sample losses (length N).
    pub per_sample: Vec<f64>,
    /// ∂loss/∂input.
    pub grad: Tensor,
}

fn weight_of(weights: Option<&[f32]>, i: usize) -> f32 {
    weights.map_or(1.0, |w| w[i])
}

/// Numerically stable row softmax of a `(N, m)` tensor.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().len(), 2);
    let (n, m) = (logits.dim(0), logits.dim(1));
    let mut out = Tensor::zeros(&[n, m]);
    for i in 0..n {
        let row = logits.row(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let o_row = out.row_mut(i);
        let mut sum = 0.0f32;
        for (o, &v) in o_row.iter_mut().zip(row) {
            *o = (v - max).exp();
            sum += *o;
        }
        for o in o_row.iter_mut() {
            *o /= sum;
        }
    }
    out
}

/// Hard-label cross-entropy over logits `(N, m)`.
///
/// `loss = (1/N) Σ_i w_i · (−log softmax(logits_i)[y_i])`.
///
/// # Panics
/// Panics if a target is out of range or lengths mismatch.
pub fn cross_entropy(logits: &Tensor, targets: &[usize], weights: Option<&[f32]>) -> PerSampleLoss {
    let (n, m) = (logits.dim(0), logits.dim(1));
    assert_eq!(targets.len(), n, "target count mismatch");
    let probs = softmax_rows(logits);
    let mut grad = Tensor::zeros(&[n, m]);
    let mut per_sample = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for (i, &y) in targets.iter().enumerate() {
        assert!(y < m, "target {y} out of range for {m} classes");
        let w = weight_of(weights, i);
        let p = probs.row(i)[y].max(1e-12);
        let li = -(p as f64).ln();
        per_sample.push(li);
        total += w as f64 * li;
        let g_row = grad.row_mut(i);
        let p_row = probs.row(i);
        let scale = w / n as f32;
        for j in 0..m {
            g_row[j] = scale * (p_row[j] - if j == y { 1.0 } else { 0.0 });
        }
    }
    PerSampleLoss {
        loss: total / n as f64,
        per_sample,
        grad,
    }
}

/// Soft-label cross-entropy (the PISL objective): targets are probability
/// rows `p_i ∈ [0,1]^m`, loss `= (1/N) Σ_i w_i · (−Σ_j p_ij log p̂_ij)`.
pub fn soft_cross_entropy(
    logits: &Tensor,
    soft_targets: &Tensor,
    weights: Option<&[f32]>,
) -> PerSampleLoss {
    let (n, m) = (logits.dim(0), logits.dim(1));
    assert_eq!(soft_targets.shape(), &[n, m], "soft target shape mismatch");
    let probs = softmax_rows(logits);
    let mut grad = Tensor::zeros(&[n, m]);
    let mut per_sample = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        let w = weight_of(weights, i);
        let p_row = probs.row(i);
        let t_row = soft_targets.row(i);
        let mut li = 0.0f64;
        let mut t_sum = 0.0f32;
        for j in 0..m {
            li -= t_row[j] as f64 * (p_row[j].max(1e-12) as f64).ln();
            t_sum += t_row[j];
        }
        per_sample.push(li);
        total += w as f64 * li;
        // d/dlogits of −Σ t log softmax = (Σt)·softmax − t.
        let g_row = grad.row_mut(i);
        let scale = w / n as f32;
        for j in 0..m {
            g_row[j] = scale * (t_sum * p_row[j] - t_row[j]);
        }
    }
    PerSampleLoss {
        loss: total / n as f64,
        per_sample,
        grad,
    }
}

/// Mean squared error with per-sample weights (mean over all elements).
/// Predictions and targets are `(N, d)`.
pub fn mse(pred: &Tensor, target: &Tensor, weights: Option<&[f32]>) -> PerSampleLoss {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    let (n, d) = (pred.dim(0), pred.dim(1));
    let mut grad = Tensor::zeros(pred.shape());
    let mut per_sample = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        let w = weight_of(weights, i);
        let p_row = pred.row(i);
        let t_row = target.row(i);
        let mut li = 0.0f64;
        let g_row = grad.row_mut(i);
        for j in 0..d {
            let diff = p_row[j] - t_row[j];
            li += (diff as f64) * (diff as f64);
            g_row[j] = w * 2.0 * diff / (n * d) as f32;
        }
        li /= d as f64;
        per_sample.push(li);
        total += w as f64 * li;
    }
    PerSampleLoss {
        loss: total / n as f64,
        per_sample,
        grad,
    }
}

/// Bidirectional InfoNCE (the MKI objective).
///
/// Rows of `z_t` (time-series features) and `z_k` (knowledge features) are
/// L2-normalised; similarities are scaled by `1/temperature`; the loss is the
/// symmetric cross-entropy that matches each series with its own metadata:
///
/// `L = (1/2N) Σ_i w_i [ −log softmax_row(S)_ii − log softmax_col(S)_ii ]`.
///
/// Returns the loss, per-sample losses, and gradients for both inputs.
pub fn info_nce(
    z_t: &Tensor,
    z_k: &Tensor,
    temperature: f32,
    weights: Option<&[f32]>,
) -> (f64, Vec<f64>, Tensor, Tensor) {
    assert_eq!(z_t.shape(), z_k.shape(), "feature shape mismatch");
    assert!(temperature > 0.0, "temperature must be positive");
    let (n, d) = (z_t.dim(0), z_t.dim(1));
    if n < 2 {
        // A single pair carries no contrastive signal.
        return (
            0.0,
            vec![0.0; n],
            Tensor::zeros(&[n, d]),
            Tensor::zeros(&[n, d]),
        );
    }

    // L2-normalise rows, remembering norms for the backward pass.
    let normalize = |z: &Tensor| -> (Tensor, Vec<f32>) {
        let mut out = z.clone();
        let mut norms = Vec::with_capacity(n);
        for i in 0..n {
            let row = out.row_mut(i);
            let norm = row.iter().map(|&v| v * v).sum::<f32>().sqrt().max(1e-6);
            for v in row.iter_mut() {
                *v /= norm;
            }
            norms.push(norm);
        }
        (out, norms)
    };
    let (zt_hat, t_norms) = normalize(z_t);
    let (zk_hat, k_norms) = normalize(z_k);

    // Similarity matrix S = ẑt ẑkᵀ / τ.
    let mut sim = zt_hat.matmul_t(&zk_hat);
    sim.scale_(1.0 / temperature);

    // Row softmax P and column softmax Q.
    let p = softmax_rows(&sim);
    let sim_t = {
        // transpose
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            for j in 0..n {
                t.row_mut(j)[i] = sim.row(i)[j];
            }
        }
        t
    };
    let q_t = softmax_rows(&sim_t); // q_t[j][i] = Q[i][j]

    let mut per_sample = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        let w = weight_of(weights, i) as f64;
        let li = -(p.row(i)[i].max(1e-12) as f64).ln() - (q_t.row(i)[i].max(1e-12) as f64).ln();
        let li = li / 2.0;
        per_sample.push(li);
        total += w * li;
    }
    let loss = total / n as f64;

    // dL/dS[i][j] = w_i (P[i,j] − δ)/2N  +  w_j (Q[i,j] − δ)/2N.
    let mut ds = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            let delta = if i == j { 1.0 } else { 0.0 };
            let wi = weight_of(weights, i);
            let wj = weight_of(weights, j);
            ds.row_mut(i)[j] =
                (wi * (p.row(i)[j] - delta) + wj * (q_t.row(j)[i] - delta)) / (2.0 * n as f32);
        }
    }
    ds.scale_(1.0 / temperature);

    // Grads wrt normalised features, then through the normalisation.
    let g_zt_hat = ds.matmul(&zk_hat); // (N,N)·(N,D)
    let g_zk_hat = ds.t_matmul(&zt_hat); // dsᵀ·ẑt

    let denormalize = |g_hat: &Tensor, z_hat: &Tensor, norms: &[f32]| -> Tensor {
        let mut g = Tensor::zeros(&[n, d]);
        for (i, &norm_i) in norms.iter().enumerate() {
            let gh = g_hat.row(i);
            let zh = z_hat.row(i);
            let dot: f32 = gh.iter().zip(zh).map(|(&a, &b)| a * b).sum();
            let g_row = g.row_mut(i);
            for j in 0..d {
                g_row[j] = (gh[j] - zh[j] * dot) / norm_i;
            }
        }
        g
    };
    let g_zt = denormalize(&g_zt_hat, &zt_hat, &t_norms);
    let g_zk = denormalize(&g_zk_hat, &zk_hat, &k_norms);

    (loss, per_sample, g_zt, g_zk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_function_gradient;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let s = softmax_rows(&t);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_low() {
        let logits = Tensor::from_vec(&[1, 3], vec![10.0, -10.0, -10.0]);
        let out = cross_entropy(&logits, &[0], None);
        assert!(out.loss < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_logits_is_log_m() {
        let logits = Tensor::zeros(&[1, 4]);
        let out = cross_entropy(&logits, &[2], None);
        assert!((out.loss - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.3, -0.7]);
        let targets = [2usize, 0usize];
        let analytic = cross_entropy(&logits, &targets, None).grad;
        let mut f = |x: &Tensor| cross_entropy(x, &targets, None).loss;
        check_function_gradient(&mut f, &logits, &analytic, 1e-3, 1e-2);
    }

    #[test]
    fn cross_entropy_weight_scales_loss_and_grad() {
        let logits = Tensor::from_vec(&[1, 2], vec![0.3, -0.4]);
        let unweighted = cross_entropy(&logits, &[1], None);
        let weighted = cross_entropy(&logits, &[1], Some(&[2.5]));
        assert!((weighted.loss - 2.5 * unweighted.loss).abs() < 1e-9);
        for (a, b) in weighted.grad.data().iter().zip(unweighted.grad.data()) {
            assert!((a - 2.5 * b).abs() < 1e-6);
        }
        // Per-sample losses stay unweighted (pruning bookkeeping).
        assert!((weighted.per_sample[0] - unweighted.per_sample[0]).abs() < 1e-12);
    }

    #[test]
    fn soft_ce_equals_hard_ce_for_one_hot_targets() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.3, -0.7]);
        let hard = cross_entropy(&logits, &[1, 2], None);
        let one_hot = Tensor::from_vec(&[2, 3], vec![0., 1., 0., 0., 0., 1.]);
        let soft = soft_cross_entropy(&logits, &one_hot, None);
        assert!((hard.loss - soft.loss).abs() < 1e-6);
        for (a, b) in hard.grad.data().iter().zip(soft.grad.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn soft_ce_gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.2, -0.5, 0.9, -0.1, 0.4, 0.0]);
        let targets = Tensor::from_vec(&[2, 3], vec![0.6, 0.3, 0.1, 0.2, 0.2, 0.6]);
        let analytic = soft_cross_entropy(&logits, &targets, None).grad;
        let mut f = |x: &Tensor| soft_cross_entropy(x, &targets, None).loss;
        check_function_gradient(&mut f, &logits, &analytic, 1e-3, 1e-2);
    }

    #[test]
    fn mse_basics_and_gradient() {
        let pred = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let target = Tensor::from_vec(&[2, 2], vec![1.0, 1.0, 3.0, 5.0]);
        let out = mse(&pred, &target, None);
        assert!((out.loss - 0.5).abs() < 1e-9); // mean of (0+1)/2 and (0+1)/2
        let analytic = out.grad;
        let mut f = |x: &Tensor| mse(x, &target, None).loss;
        check_function_gradient(&mut f, &pred, &analytic, 1e-3, 1e-2);
    }

    #[test]
    fn info_nce_aligned_pairs_have_lower_loss() {
        // Aligned: z_k = z_t ⇒ diagonal dominant ⇒ loss below log N.
        let zt = Tensor::from_vec(
            &[3, 4],
            vec![
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0,
            ],
        );
        let (aligned, _, _, _) = info_nce(&zt, &zt, 0.1, None);
        // Misaligned: z_k rows permuted.
        let zk = Tensor::from_vec(
            &[3, 4],
            vec![
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                1.0, 0.0, 0.0, 0.0,
            ],
        );
        let (misaligned, _, _, _) = info_nce(&zt, &zk, 0.1, None);
        assert!(aligned < 0.01, "aligned={aligned}");
        assert!(misaligned > aligned + 1.0, "misaligned={misaligned}");
    }

    #[test]
    fn info_nce_gradients_match_finite_differences() {
        let zt = Tensor::from_vec(
            &[3, 4],
            (0..12).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.2).collect(),
        );
        let zk = Tensor::from_vec(
            &[3, 4],
            (0..12).map(|i| ((i * 5 % 11) as f32 - 5.0) * 0.2).collect(),
        );
        let (_, _, g_zt, g_zk) = info_nce(&zt, &zk, 0.5, None);
        let mut f_t = |x: &Tensor| info_nce(x, &zk, 0.5, None).0;
        check_function_gradient(&mut f_t, &zt, &g_zt, 1e-3, 2e-2);
        let mut f_k = |x: &Tensor| info_nce(&zt, x, 0.5, None).0;
        check_function_gradient(&mut f_k, &zk, &g_zk, 1e-3, 2e-2);
    }

    #[test]
    fn info_nce_single_sample_is_zero() {
        let z = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        let (loss, per, g1, g2) = info_nce(&z, &z, 0.1, None);
        assert_eq!(loss, 0.0);
        assert_eq!(per, vec![0.0]);
        assert!(g1.data().iter().all(|&v| v == 0.0));
        assert!(g2.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn info_nce_scale_invariance_of_inputs() {
        // L2 normalisation makes the loss invariant to row scaling.
        let zt = Tensor::from_vec(&[2, 3], vec![1.0, 0.5, -0.3, -0.2, 0.8, 0.1]);
        let zk = Tensor::from_vec(&[2, 3], vec![0.9, 0.4, -0.2, -0.1, 0.7, 0.2]);
        let mut zt_scaled = zt.clone();
        zt_scaled.scale_(7.0);
        let (a, _, _, _) = info_nce(&zt, &zk, 0.2, None);
        let (b, _, _, _) = info_nce(&zt_scaled, &zk, 0.2, None);
        assert!((a - b).abs() < 1e-5);
    }
}
