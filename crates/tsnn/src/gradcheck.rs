//! Finite-difference gradient verification.
//!
//! Every layer's hand-written backward pass is validated in its unit tests by
//! comparing against central finite differences of a fixed scalar loss
//! `L = Σ_i c_i · y_i`, where the coefficients `c_i` are a deterministic
//! pseudo-random pattern. This catches indexing errors, missed terms and
//! transposition bugs that unit-output tests cannot.

use crate::param::Layer;
use crate::tensor::Tensor;

/// Deterministic coefficient pattern in `[-1, 1]`.
fn coeff(i: usize) -> f32 {
    let mut x = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
}

/// Scalar probe loss `Σ c_i y_i` in f64 for precision.
fn probe_loss(y: &Tensor) -> f64 {
    y.data()
        .iter()
        .enumerate()
        .map(|(i, &v)| coeff(i) as f64 * v as f64)
        .sum()
}

/// Gradient of the probe loss with respect to the output.
fn probe_grad(shape: &[usize]) -> Tensor {
    let numel: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..numel).map(coeff).collect())
}

/// Relative-error comparison suited to f32 finite differences.
fn close(analytic: f64, numeric: f64, tol: f64) -> bool {
    (analytic - numeric).abs() <= tol * (analytic.abs() + numeric.abs() + 0.5)
}

/// Verifies a layer's input and parameter gradients against central
/// differences. Panics with a diagnostic on mismatch.
///
/// * `eps` — perturbation size (1e-2 works well in f32).
/// * `tol` — relative tolerance (2e-2 typical).
///
/// The layer must be deterministic across repeated forward passes (no
/// dropout with p > 0).
pub fn check_layer_gradients<L: Layer>(layer: &mut L, x: &Tensor, eps: f32, tol: f32) {
    // Analytic pass.
    let y = layer.forward(x, true);
    let grad_out = probe_grad(y.shape());
    for p in layer.params_mut() {
        p.zero_grad();
    }
    let grad_in = layer.backward(&grad_out);

    // Input gradients.
    let mut xp = x.clone();
    for i in 0..x.numel() {
        let orig = xp.data()[i];
        xp.data_mut()[i] = orig + eps;
        let lp = probe_loss(&layer.forward(&xp, true));
        xp.data_mut()[i] = orig - eps;
        let lm = probe_loss(&layer.forward(&xp, true));
        xp.data_mut()[i] = orig;
        let numeric = (lp - lm) / (2.0 * eps as f64);
        let analytic = grad_in.data()[i] as f64;
        assert!(
            close(analytic, numeric, tol as f64),
            "input grad {i}: analytic={analytic:.6} numeric={numeric:.6}"
        );
    }

    // Parameter gradients. Collect analytic copies first to avoid aliasing.
    let analytic_param_grads: Vec<Vec<f32>> = layer
        .params_mut()
        .iter()
        .map(|p| p.grad.data().to_vec())
        .collect();
    let n_params = analytic_param_grads.len();
    #[allow(clippy::needless_range_loop)] // `pi` also re-borrows `layer.params_mut()`
    for pi in 0..n_params {
        let numel = layer.params_mut()[pi].value.numel();
        // Check every element of small params; stride through big ones.
        let stride = (numel / 64).max(1);
        let mut i = 0;
        while i < numel {
            let orig = layer.params_mut()[pi].value.data()[i];
            layer.params_mut()[pi].value.data_mut()[i] = orig + eps;
            let lp = probe_loss(&layer.forward(x, true));
            layer.params_mut()[pi].value.data_mut()[i] = orig - eps;
            let lm = probe_loss(&layer.forward(x, true));
            layer.params_mut()[pi].value.data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let analytic = analytic_param_grads[pi][i] as f64;
            assert!(
                close(analytic, numeric, tol as f64),
                "param {pi} grad {i}: analytic={analytic:.6} numeric={numeric:.6}"
            );
            i += stride;
        }
    }
}

/// Verifies the gradient of a scalar-valued function `f(x)` given its
/// analytic gradient — used for the loss functions.
pub fn check_function_gradient(
    f: &mut dyn FnMut(&Tensor) -> f64,
    x: &Tensor,
    analytic: &Tensor,
    eps: f32,
    tol: f32,
) {
    assert_eq!(x.shape(), analytic.shape());
    let mut xp = x.clone();
    for i in 0..x.numel() {
        let orig = xp.data()[i];
        xp.data_mut()[i] = orig + eps;
        let lp = f(&xp);
        xp.data_mut()[i] = orig - eps;
        let lm = f(&xp);
        xp.data_mut()[i] = orig;
        let numeric = (lp - lm) / (2.0 * eps as f64);
        let a = analytic.data()[i] as f64;
        assert!(
            close(a, numeric, tol as f64),
            "grad {i}: analytic={a:.6} numeric={numeric:.6}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coeffs_are_deterministic_and_bounded() {
        for i in 0..100 {
            let c = coeff(i);
            assert_eq!(c, coeff(i));
            assert!((-1.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn function_gradcheck_accepts_correct_gradient() {
        // f(x) = Σ x_i², ∇f = 2x.
        let x = Tensor::from_vec(&[3], vec![0.5, -1.0, 2.0]);
        let analytic = Tensor::from_vec(&[3], vec![1.0, -2.0, 4.0]);
        let mut f = |t: &Tensor| {
            t.data()
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>()
        };
        check_function_gradient(&mut f, &x, &analytic, 1e-3, 1e-2);
    }

    #[test]
    #[should_panic(expected = "grad")]
    fn function_gradcheck_rejects_wrong_gradient() {
        let x = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let wrong = Tensor::from_vec(&[2], vec![5.0, 5.0]);
        let mut f = |t: &Tensor| {
            t.data()
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>()
        };
        check_function_gradient(&mut f, &x, &wrong, 1e-3, 1e-2);
    }
}
