//! Weight initialisation.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Kaiming/He uniform initialisation for a tensor with the given fan-in:
/// `U(-√(6/fan_in), +√(6/fan_in))`. Suitable for ReLU networks.
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0 / fan_in as f64).sqrt() as f32;
    let numel: usize = shape.iter().product();
    let data = (0..numel)
        .map(|_| rng.random_range(-bound..bound))
        .collect();
    Tensor::from_vec(shape, data)
}

/// Xavier/Glorot uniform initialisation:
/// `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`. Suitable for
/// attention blocks and linear projections followed by soft nonlinearities.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    assert!(fan_in + fan_out > 0, "fans must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    let numel: usize = shape.iter().product();
    let data = (0..numel)
        .map(|_| rng.random_range(-bound..bound))
        .collect();
    Tensor::from_vec(shape, data)
}

/// Standard Gaussian initialisation scaled by `std`.
pub fn normal(shape: &[usize], std: f32, rng: &mut StdRng) -> Tensor {
    let numel: usize = shape.iter().product();
    let data = (0..numel).map(|_| std * gaussian(rng) as f32).collect();
    Tensor::from_vec(shape, data)
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kaiming_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = kaiming_uniform(&[100, 10], 10, &mut rng);
        let bound = (6.0f64 / 10.0).sqrt() as f32;
        assert!(t.data().iter().all(|&v| v.abs() <= bound));
        // Not all zero / degenerate.
        assert!(t.data().iter().any(|&v| v.abs() > bound / 10.0));
    }

    #[test]
    fn xavier_bound_smaller_with_larger_fans() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_uniform(&[1000], 500, 500, &mut rng);
        let bound = (6.0f64 / 1000.0).sqrt() as f32;
        assert!(t.data().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn normal_has_roughly_requested_std() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = normal(&[10_000], 0.5, &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = t
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std={}", var.sqrt());
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = kaiming_uniform(&[8], 4, &mut StdRng::seed_from_u64(9));
        let b = kaiming_uniform(&[8], 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
