//! Cache-blocked, register-tiled, parallel `f32` GEMM kernels.
//!
//! One packed kernel serves the three tensor products the NN substrate
//! needs (`A·B`, `Aᵀ·B`, `A·Bᵀ`) by reading either operand transposed
//! during packing. The compute shape is the classic panel-dot formulation:
//!
//! * **B is packed once** into column panels of width [`NR`]: panel `j`
//!   holds `B[p][j..j+NR]` contiguously for `p = 0..k`, zero-padded at the
//!   right edge. Packing linearises the innermost streams so the micro-
//!   kernel reads both operands sequentially (hardware-prefetch friendly).
//! * **A is packed per row tile** of height [`MR`]: `A[i..i+MR][p]`
//!   contiguously for `p = 0..k`, zero-padded at the bottom edge.
//! * The micro-kernel keeps an `MR × NR` accumulator block in registers for
//!   the whole `k` loop, so `C` is written exactly once per tile instead of
//!   once per `k` step — the main win over the naive axpy loop, whose
//!   output-row traffic grows with `k`.
//! * The micro-kernel is written over [`crate::simd::F32x16`] lane types:
//!   each accumulator row is one 16-wide lane vector held in an
//!   individually named local (one 512-bit register on AVX-512 targets —
//!   see the [`F32x16`] docs for why arrays of accumulators and 8-wide
//!   rows both compile to shuffle-heavy spills instead), the `NR` output
//!   columns are the vector lanes, and each `k` step broadcasts one packed
//!   `A` value against one packed `B` row. Eight rows give eight
//!   independent add chains, enough to hide vector-add latency. A scalar
//!   fallback with identical semantics stays compiled (`KD_NO_SIMD=1` or
//!   [`crate::simd::set_simd_policy`]) — see the determinism note below.
//!
//! * For large `k` the inner dimension is **cache-blocked** in steps of
//!   [`KC`]: the packed `A` tile slice for one `k` block ([`KC`]·[`MR`]
//!   floats ≈ 8 KiB) stays L1-resident while the tile sweeps every `B`
//!   panel, instead of a full-`k` `A` tile (32 KiB at `k = 1024`) getting
//!   evicted by each 64 KiB panel stream and re-fetched from L2 per panel.
//!   Partial tiles round-trip through `C` between blocks — see the
//!   determinism note for why that is bitwise inert.
//!
//! **Determinism.** Every `C[i][j]` is one scalar chain of fused
//! multiply-adds `sum = fma(a, b, sum)` in fixed ascending-`p` order,
//! computed by exactly one worker. The fusion is *explicit*
//! (`f32::mul_add` / the lane types' `fma_to`), never left to compiler
//! contraction: IEEE-754 `fusedMultiplyAdd` is correctly rounded, so the
//! value is the same on every platform whether the target has hardware
//! FMA or falls back to libm — unlike `-ffast-math`-style contraction,
//! which is allowed to differ per compilation. (Single rounding per step
//! also makes the products *more* accurate than the seed kernel's
//! separate mul-then-add, and on FMA hardware halves the FP-port cost —
//! which is what lets the dual-panel blocked kernel below actually run
//! faster instead of hitting the same port wall.) Vectorisation runs
//! *across* the `NR` output columns (each lane is one output element's
//! chain), never across `k` — so the lane kernel, the scalar fallback,
//! the previous 4-row blocked kernel ([`gemm_blocked_ref`]) and the naive
//! seed kernel ([`gemm_naive`]) all agree **bitwise**. `k` blocking does not perturb
//! the chains either: the micro-kernel seeds its accumulators from the
//! partial sums stored in `C` by the previous block, and an `f32`
//! register → memory → register round trip is bit-preserving (including
//! NaN payloads and signed zeros), so "accumulate [`KC`] steps, store,
//! reload, continue" is the *same* ascending-`p` chain as one uninterrupted
//! pass — `k_blocked_matches_unblocked_bitwise` pins this at every block
//! size. Parallelism splits row tiles (fixed [`MR`]-aligned boundaries,
//! independent of the worker count), so results are also bit-identical at
//! any thread count — the property `tests/parallel_determinism.rs` pins.
//!
//! `KD_BLOCK` overrides the number of row tiles per parallel task (the
//! split granularity, which never affects values); `KD_THREADS` caps the
//! workers (see [`tspar`]).

use crate::simd::{self, F32x16};

/// Micro-kernel tile height (rows of `A` per register block). Eight rows —
/// one lane accumulator each — give eight independent add chains per `k`
/// step, enough to hide vector-add latency on any recent x86/ARM core
/// (the previous 4-row kernel, kept as [`gemm_blocked_ref`], was
/// latency-bound at half the chains).
pub const MR: usize = 8;
/// Micro-kernel tile width (columns of `B` per register block) — the lane
/// count of [`F32x16`], so one accumulator row is exactly one vector.
pub const NR: usize = 16;

/// Row-tile height of the previous-generation reference kernel
/// ([`gemm_blocked_ref`]).
pub const REF_MR: usize = 4;
/// Panel width of the previous-generation reference kernel.
pub const REF_NR: usize = 8;

/// Work below this many fused multiply-adds is not worth packing.
const PACK_FLOP_THRESHOLD: usize = 4096;

/// Inner-dimension block size. One packed `A` block is `KC · MR` floats
/// (8 KiB) — small enough to stay L1-resident across a full panel sweep —
/// and one packed `B` panel block is `KC · NR` floats (16 KiB), one
/// hardware-prefetch-friendly stream per micro-kernel call. `k ≤ KC`
/// degenerates to a single block, i.e. exactly the pre-blocking kernel.
pub const KC: usize = 256;

/// Whether the k-blocked path may fuse two adjacent `B` panels into one
/// micro-kernel call (an `MR × 2NR` register tile), so every packed-`A`
/// broadcast feeds 32 output columns instead of 16 — at large `k` the
/// kernel is issue-bound on the broadcast + loop streams, and halving
/// them per MAC is where the blocked path's speedup comes from. The dual
/// tile needs 16 lane accumulators plus two `B` vectors live at once:
/// comfortable in AVX-512's 32-register file, guaranteed spills on
/// 16-register files (AVX2, NEON) where each [`F32x16`] already occupies
/// two native vectors — so the fusion is compiled in only for AVX-512
/// targets. Values are unaffected either way: the tile shape never
/// changes any output element's summation chain.
const PAIR_PANELS: bool = cfg!(target_feature = "avx512f");

/// How one operand matrix is laid out relative to the product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Use the matrix as stored: element `(r, c)` at `data[r * ld + c]`.
    Normal,
    /// Use the transpose: element `(r, c)` at `data[c * ld + r]`.
    Transposed,
}

/// `C = A' × B'` where `A'` is `n×k` and `B'` is `k×m` after applying the
/// layouts. `c` must hold `n·m` elements and is fully overwritten.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), n * m);
    if n * m * k < PACK_FLOP_THRESHOLD {
        gemm_naive(n, m, k, a, a_layout, b, b_layout, c);
        return;
    }
    gemm_blocked(
        n,
        m,
        k,
        a,
        a_layout,
        &pack_b::<NR>(m, k, b, b_layout),
        KC,
        c,
    );
}

/// [`gemm`] with an explicit inner-dimension block size `kc` instead of
/// the tuned [`KC`]. `kc ≥ k` disables blocking entirely (one pass, the
/// pre-blocking kernel); any `kc ≥ 1` produces bitwise-identical results
/// (see the module determinism note). Exists so benchmarks and tests can
/// compare blocked against unblocked on the same inputs — production
/// callers want [`gemm`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_kc(
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    kc: usize,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), n * m);
    gemm_blocked(
        n,
        m,
        k,
        a,
        a_layout,
        &pack_b::<NR>(m, k, b, b_layout),
        kc,
        c,
    );
}

/// The blocked compute shared by [`gemm`] and [`gemm_prepacked`]: row-tile
/// loop over pre-packed B panels, serial below the parallel work gate.
/// `kc` is the inner-dimension block size (see [`KC`]).
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    panels: &[f32],
    kc: usize,
    c: &mut [f32],
) {
    let flops = n * m * k;
    let n_tiles = n.div_ceil(MR);
    let tiles_per_task = block_rows().max(1);
    let kc = kc.max(1);
    // The packed-A scratch only ever holds one k block.
    let pa_len = kc.min(k) * MR;

    // Work below the execution backend's gate (`tspar::min_par_work`,
    // shared with the layer-level gates) is not worth a parallel region.
    if flops < tspar::min_par_work() || tspar::threads() <= 1 {
        let mut packed_a = vec![0.0f32; pa_len];
        for tile in 0..n_tiles {
            gemm_row_tile_into(tile, 0, n, m, k, kc, a, a_layout, panels, &mut packed_a, c);
        }
        return;
    }

    // Parallel: each task owns `tiles_per_task` consecutive row tiles and
    // the matching rows of C, dispatched to tspar's persistent pool. Tile
    // boundaries depend only on MR and the task size, never on the worker
    // count or the execution backend.
    let rows_per_task = tiles_per_task * MR;
    tspar::par_chunks_mut(c, rows_per_task * m, |task, c_chunk| {
        let tile0 = task * tiles_per_task;
        let mut packed_a = vec![0.0f32; pa_len];
        let rows_here = c_chunk.len() / m;
        let tiles_here = rows_here.div_ceil(MR);
        for t in 0..tiles_here {
            let tile = tile0 + t;
            // Views are C-chunk-relative: pass a shifted row base.
            gemm_row_tile_into(
                tile,
                tile0 * MR,
                n,
                m,
                k,
                kc,
                a,
                a_layout,
                panels,
                &mut packed_a,
                c_chunk,
            );
        }
    });
}

/// A `B` operand packed once into [`NR`]-wide column panels, held by the
/// caller for repeated products against a constant matrix.
///
/// [`gemm`] re-packs `B` on every call, which is the right trade for
/// one-shot products but wasteful when the same `B` is reused many times —
/// the LSTM multiplies by its recurrent weights `W_h` once per timestep in
/// both directions. Packing once per sequence and calling
/// [`gemm_prepacked`] amortises that cost; results are bit-identical to
/// [`gemm`] because the micro-kernel sums in the same ascending-`p` order
/// regardless of who packed the panels.
#[derive(Debug, Clone)]
pub struct PackedB {
    m: usize,
    k: usize,
    panels: Vec<f32>,
}

impl PackedB {
    /// Packs `B'` (`k×m` after applying `layout`) into column panels.
    pub fn pack(m: usize, k: usize, b: &[f32], layout: Layout) -> Self {
        Self {
            m,
            k,
            panels: pack_b::<NR>(m, k, b, layout),
        }
    }

    /// Output width `m` of products against this operand.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Inner dimension `k` of products against this operand.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// `C = A' × B` with a caller-held pre-packed `B` (see [`PackedB`]).
/// `A'` is `n×k` after applying `a_layout`; `c` must hold `n·m` elements
/// and is fully overwritten. Bit-identical to [`gemm`] at every shape.
pub fn gemm_prepacked(n: usize, a: &[f32], a_layout: Layout, b: &PackedB, c: &mut [f32]) {
    debug_assert_eq!(c.len(), n * b.m);
    gemm_blocked(n, b.m, b.k, a, a_layout, &b.panels, KC, c);
}

/// [`gemm_prepacked`] with an explicit inner-dimension block size — the
/// prepacked twin of [`gemm_with_kc`], isolating the blocked-vs-unblocked
/// comparison from packing cost. Bitwise identical at every `kc ≥ 1`.
pub fn gemm_prepacked_with_kc(
    n: usize,
    a: &[f32],
    a_layout: Layout,
    b: &PackedB,
    kc: usize,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), n * b.m);
    gemm_blocked(n, b.m, b.k, a, a_layout, &b.panels, kc, c);
}

/// Row tiles per parallel task (`KD_BLOCK`, default 8 → 64 rows/task).
fn block_rows() -> usize {
    static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("KD_BLOCK")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| v >= 1)
            .unwrap_or(8)
    })
}

/// Packs `B'` (`k×m` after layout) into `W`-wide column panels,
/// zero-padded. `W` is [`NR`] for the lane kernel, [`REF_NR`] for the
/// reference kernel.
fn pack_b<const W: usize>(m: usize, k: usize, b: &[f32], layout: Layout) -> Vec<f32> {
    let m_pad = m.div_ceil(W) * W;
    let mut out = vec![0.0f32; k * m_pad];
    match layout {
        Layout::Normal => {
            // B'[p][j] = b[p * m + j]; copy row slices panel by panel.
            for (panel, j0) in (0..m).step_by(W).enumerate() {
                let width = W.min(m - j0);
                let dst_base = panel * (k * W);
                for p in 0..k {
                    let src = &b[p * m + j0..p * m + j0 + width];
                    out[dst_base + p * W..dst_base + p * W + width].copy_from_slice(src);
                }
            }
        }
        Layout::Transposed => {
            // B'[p][j] = b[j * k + p]; source columns are contiguous rows.
            for (panel, j0) in (0..m).step_by(W).enumerate() {
                let width = W.min(m - j0);
                let dst_base = panel * (k * W);
                for jj in 0..width {
                    let src = &b[(j0 + jj) * k..(j0 + jj) * k + k];
                    for (p, &v) in src.iter().enumerate() {
                        out[dst_base + p * W + jj] = v;
                    }
                }
            }
        }
    }
    out
}

/// Packs row tile `tile` (height `TH`) of `A'` (`n×k` after layout):
/// `packed[p*TH + ii] = A'[tile*TH + ii][p]`, zero-padded below row `n`.
fn pack_a_tile<const TH: usize>(
    tile: usize,
    n: usize,
    k: usize,
    a: &[f32],
    layout: Layout,
    packed: &mut [f32],
) {
    pack_a_tile_range::<TH>(tile, n, k, 0, k, a, layout, packed);
}

/// Packs the `p ∈ [p0, p0 + pc)` slice of row tile `tile` (height `TH`)
/// of `A'` (`n×k` after layout): `packed[p*TH + ii] = A'[tile*TH + ii]
/// [p0 + p]`, zero-padded below row `n`. The k-blocked tile loop packs
/// one [`KC`]-step block at a time so the scratch stays L1-sized.
#[allow(clippy::too_many_arguments)]
fn pack_a_tile_range<const TH: usize>(
    tile: usize,
    n: usize,
    k: usize,
    p0: usize,
    pc: usize,
    a: &[f32],
    layout: Layout,
    packed: &mut [f32],
) {
    let i0 = tile * TH;
    let rows = TH.min(n - i0);
    match layout {
        Layout::Normal => {
            // A'[i][p] = a[i * k + p].
            for p in 0..pc {
                for ii in 0..TH {
                    packed[p * TH + ii] = if ii < rows {
                        a[(i0 + ii) * k + p0 + p]
                    } else {
                        0.0
                    };
                }
            }
        }
        Layout::Transposed => {
            // A'[i][p] = a[p * n + i]; each p is a contiguous source row.
            for p in 0..pc {
                let src = &a[(p0 + p) * n + i0..(p0 + p) * n + i0 + rows];
                let dst = &mut packed[p * TH..p * TH + TH];
                dst[..rows].copy_from_slice(src);
                for v in &mut dst[rows..] {
                    *v = 0.0;
                }
            }
        }
    }
}

/// Computes row tile `tile`, writing into `c_chunk` whose first row is
/// global row `row_base`, accumulating over `kc`-step blocks of the inner
/// dimension. The first block writes the tile; later blocks seed the
/// micro-kernel accumulators from the partial sums already in `C` — an
/// exact round trip, so the result is bitwise one uninterrupted
/// ascending-`p` chain (module determinism note). `packed_a` must hold
/// `kc.min(k) * MR` floats.
// kdprof: hot
#[allow(clippy::too_many_arguments)]
fn gemm_row_tile_into(
    tile: usize,
    row_base: usize,
    n: usize,
    m: usize,
    k: usize,
    kc: usize,
    a: &[f32],
    a_layout: Layout,
    packed_b: &[f32],
    packed_a: &mut [f32],
    c_chunk: &mut [f32],
) {
    let i0 = tile * MR;
    if i0 >= n {
        return;
    }
    let rows = MR.min(n - i0);
    let row0 = i0 - row_base;
    // One dispatch decision per row tile; the micro-kernels themselves
    // never consult the flag inside the k loop.
    let lanes = simd::simd_enabled();
    // Panel fusion rides with k blocking: both target the same
    // large-inner-dimension regime, and keeping `kc ≥ k` (the "unblocked"
    // setting) on the exact single-panel code path gives benchmarks a
    // faithful pre-blocking baseline.
    let pair = PAIR_PANELS && lanes && k > kc;
    let n_panels = m.div_ceil(NR);
    let mut p0 = 0;
    loop {
        let pc = kc.min(k - p0);
        pack_a_tile_range::<MR>(tile, n, k, p0, pc, a, a_layout, packed_a);
        let ap = &packed_a[..pc * MR];
        let first = p0 == 0;
        let mut panel = 0;
        while panel < n_panels {
            let j0 = panel * NR;
            let base = panel * (k * NR);
            // Fuse two full-width panels when possible (see
            // [`PAIR_PANELS`]); ragged tail panels take the single path.
            if pair && j0 + 2 * NR <= m {
                let bp0 = &packed_b[base + p0 * NR..base + (p0 + pc) * NR];
                let base1 = base + k * NR;
                let bp1 = &packed_b[base1 + p0 * NR..base1 + (p0 + pc) * NR];
                let init0 = load_tile(c_chunk, row0, m, j0, NR, rows, first);
                let init1 = load_tile(c_chunk, row0, m, j0 + NR, NR, rows, first);
                let (acc0, acc1) = micro_kernel_lanes_x2(pc, ap, bp0, bp1, &init0, &init1);
                store_tile(&acc0, c_chunk, row0, m, j0, NR, rows);
                store_tile(&acc1, c_chunk, row0, m, j0 + NR, NR, rows);
                panel += 2;
                continue;
            }
            let width = NR.min(m - j0);
            let bp = &packed_b[base + p0 * NR..base + (p0 + pc) * NR];
            let init = load_tile(c_chunk, row0, m, j0, width, rows, first);
            let acc = if lanes {
                micro_kernel_lanes(pc, ap, bp, &init)
            } else {
                micro_kernel_scalar(pc, ap, bp, &init)
            };
            store_tile(&acc, c_chunk, row0, m, j0, width, rows);
            panel += 1;
        }
        p0 += pc;
        if p0 >= k {
            return;
        }
    }
}

/// The accumulator seed for one register tile: zeros for the first `k`
/// block (and always in the zero-padded edge lanes, whose values are
/// never stored back), the partial sums already in `C` otherwise.
fn load_tile(
    c_chunk: &[f32],
    row0: usize,
    m: usize,
    j0: usize,
    width: usize,
    rows: usize,
    first: bool,
) -> [[f32; NR]; MR] {
    let mut init = [[0.0f32; NR]; MR];
    if !first {
        for (ii, row) in init.iter_mut().enumerate().take(rows) {
            let src = &c_chunk[(row0 + ii) * m + j0..(row0 + ii) * m + j0 + width];
            row[..width].copy_from_slice(src);
        }
    }
    init
}

/// Stores the active `rows × width` part of a register tile into `C`.
fn store_tile(
    acc: &[[f32; NR]; MR],
    c_chunk: &mut [f32],
    row0: usize,
    m: usize,
    j0: usize,
    width: usize,
    rows: usize,
) {
    for (ii, acc_row) in acc.iter().enumerate().take(rows) {
        let dst = &mut c_chunk[(row0 + ii) * m + j0..(row0 + ii) * m + j0 + width];
        dst.copy_from_slice(&acc_row[..width]);
    }
}

/// The MR×NR lane-tile dot kernel: each accumulator row is one [`F32x16`]
/// whose lanes are the `NR` output columns, held in registers for the
/// whole `kc` loop. Each step broadcasts one packed-`A` value against the
/// packed-`B` row — per output element the sum runs in ascending-`p`
/// order, identical to the naive reference, so lane, scalar, reference
/// and naive kernels agree to the last bit. The accumulators are seeded
/// from `init` (all zeros for the first — or only — `k` block; the
/// previous block's partial sums otherwise); loading zeros is bitwise
/// [`F32x16::zero`], so the unblocked case is unchanged.
///
/// The eight rows are individually named locals on purpose: an
/// accumulator *array* this size defeats LLVM's scalar replacement and
/// spills the whole tile to the stack every `k` step (measured ~5× slower
/// than this shape).
// kdprof: hot
#[inline(always)]
fn micro_kernel_lanes(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    init: &[[f32; NR]; MR],
) -> [[f32; NR]; MR] {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let (mut c0, mut c1, mut c2, mut c3) = (
        F32x16::load(&init[0]),
        F32x16::load(&init[1]),
        F32x16::load(&init[2]),
        F32x16::load(&init[3]),
    );
    let (mut c4, mut c5, mut c6, mut c7) = (
        F32x16::load(&init[4]),
        F32x16::load(&init[5]),
        F32x16::load(&init[6]),
        F32x16::load(&init[7]),
    );
    // Fixed-size chunks give LLVM compile-time lengths: no bounds checks
    // inside the k loop.
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        let bv = F32x16::load(b);
        c0 = c0.fma_to(a[0], bv);
        c1 = c1.fma_to(a[1], bv);
        c2 = c2.fma_to(a[2], bv);
        c3 = c3.fma_to(a[3], bv);
        c4 = c4.fma_to(a[4], bv);
        c5 = c5.fma_to(a[5], bv);
        c6 = c6.fma_to(a[6], bv);
        c7 = c7.fma_to(a[7], bv);
    }
    [
        c0.to_array(),
        c1.to_array(),
        c2.to_array(),
        c3.to_array(),
        c4.to_array(),
        c5.to_array(),
        c6.to_array(),
        c7.to_array(),
    ]
}

/// Two [`micro_kernel_lanes`] tiles over the same packed-`A` stream: an
/// `MR × 2NR` register tile spanning two adjacent full-width `B` panels.
/// Each broadcast `a[i]` feeds both panels' lanes, halving the broadcast
/// and loop-overhead cost per MAC — the large-`k` win the blocked path
/// banks on (see [`PAIR_PANELS`] for why this is AVX-512-only). Per
/// output element the chain is exactly the single-panel kernel's
/// ascending-`p` chain, so fused and unfused panel sweeps are bitwise
/// identical.
// kdprof: hot
#[inline(always)]
fn micro_kernel_lanes_x2(
    kc: usize,
    ap: &[f32],
    bp0: &[f32],
    bp1: &[f32],
    init0: &[[f32; NR]; MR],
    init1: &[[f32; NR]; MR],
) -> ([[f32; NR]; MR], [[f32; NR]; MR]) {
    debug_assert!(ap.len() >= kc * MR && bp0.len() >= kc * NR && bp1.len() >= kc * NR);
    let (mut c0, mut c1, mut c2, mut c3) = (
        F32x16::load(&init0[0]),
        F32x16::load(&init0[1]),
        F32x16::load(&init0[2]),
        F32x16::load(&init0[3]),
    );
    let (mut c4, mut c5, mut c6, mut c7) = (
        F32x16::load(&init0[4]),
        F32x16::load(&init0[5]),
        F32x16::load(&init0[6]),
        F32x16::load(&init0[7]),
    );
    let (mut d0, mut d1, mut d2, mut d3) = (
        F32x16::load(&init1[0]),
        F32x16::load(&init1[1]),
        F32x16::load(&init1[2]),
        F32x16::load(&init1[3]),
    );
    let (mut d4, mut d5, mut d6, mut d7) = (
        F32x16::load(&init1[4]),
        F32x16::load(&init1[5]),
        F32x16::load(&init1[6]),
        F32x16::load(&init1[7]),
    );
    for ((a, b0), b1) in ap
        .chunks_exact(MR)
        .zip(bp0.chunks_exact(NR))
        .zip(bp1.chunks_exact(NR))
        .take(kc)
    {
        let bv0 = F32x16::load(b0);
        let bv1 = F32x16::load(b1);
        // The splat is hoisted into a named register on purpose: written
        // as two `fma_to` calls, LLVM folds a *separate* broadcast load
        // into each multiply, and the kernel stays load-port bound at the
        // single-panel rate. One explicit splat with two register uses
        // halves the broadcast traffic — the point of the fusion.
        // `fma_vv(splat(s), x)` is bitwise `fma_to(s, x)`, so values are
        // unchanged.
        let av = F32x16::splat(a[0]);
        c0 = c0.fma_vv(av, bv0);
        d0 = d0.fma_vv(av, bv1);
        let av = F32x16::splat(a[1]);
        c1 = c1.fma_vv(av, bv0);
        d1 = d1.fma_vv(av, bv1);
        let av = F32x16::splat(a[2]);
        c2 = c2.fma_vv(av, bv0);
        d2 = d2.fma_vv(av, bv1);
        let av = F32x16::splat(a[3]);
        c3 = c3.fma_vv(av, bv0);
        d3 = d3.fma_vv(av, bv1);
        let av = F32x16::splat(a[4]);
        c4 = c4.fma_vv(av, bv0);
        d4 = d4.fma_vv(av, bv1);
        let av = F32x16::splat(a[5]);
        c5 = c5.fma_vv(av, bv0);
        d5 = d5.fma_vv(av, bv1);
        let av = F32x16::splat(a[6]);
        c6 = c6.fma_vv(av, bv0);
        d6 = d6.fma_vv(av, bv1);
        let av = F32x16::splat(a[7]);
        c7 = c7.fma_vv(av, bv0);
        d7 = d7.fma_vv(av, bv1);
    }
    (
        [
            c0.to_array(),
            c1.to_array(),
            c2.to_array(),
            c3.to_array(),
            c4.to_array(),
            c5.to_array(),
            c6.to_array(),
            c7.to_array(),
        ],
        [
            d0.to_array(),
            d1.to_array(),
            d2.to_array(),
            d3.to_array(),
            d4.to_array(),
            d5.to_array(),
            d6.to_array(),
            d7.to_array(),
        ],
    )
}

/// The scalar fallback of [`micro_kernel_lanes`]: the same MR×NR
/// accumulator walked with plain scalar loops in the same order — bitwise
/// identical by construction, kept compiled and exercised by the
/// `KD_NO_SIMD=1` CI leg.
// kdprof: hot
#[inline(always)]
fn micro_kernel_scalar(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    init: &[[f32; NR]; MR],
) -> [[f32; NR]; MR] {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut acc = *init;
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        let a: &[f32; MR] = a.try_into().unwrap();
        let b: &[f32; NR] = b.try_into().unwrap();
        for (row, &av) in acc.iter_mut().zip(a) {
            for (acc_v, &bv) in row.iter_mut().zip(b) {
                *acc_v = av.mul_add(bv, *acc_v);
            }
        }
    }
    acc
}

/// The previous-generation blocked kernel: [`REF_MR`]-row tiles with the
/// compiler-vectorised scalar micro-kernel, serial. Kept as the timing and
/// equality reference for the lane kernel (as [`gemm_naive`] is the seed
/// reference) — `BENCH_micro.json`'s `simd` entry records the lane
/// kernel's speedup over this, with a `max_abs_diff = 0` guard.
#[allow(clippy::too_many_arguments)]
pub fn gemm_blocked_ref(
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), n * m);
    let panels = pack_b::<REF_NR>(m, k, b, b_layout);
    let mut packed_a = vec![0.0f32; k * REF_MR];
    for tile in 0..n.div_ceil(REF_MR) {
        let i0 = tile * REF_MR;
        let rows = REF_MR.min(n - i0);
        pack_a_tile::<REF_MR>(tile, n, k, a, a_layout, &mut packed_a);
        for (panel, j0) in (0..m).step_by(REF_NR).enumerate() {
            let width = REF_NR.min(m - j0);
            let bp = &panels[panel * (k * REF_NR)..(panel + 1) * (k * REF_NR)];
            let acc = micro_kernel_ref(k, &packed_a, bp);
            for (ii, acc_row) in acc.iter().enumerate().take(rows) {
                let dst = &mut c[(i0 + ii) * m + j0..(i0 + ii) * m + j0 + width];
                dst.copy_from_slice(&acc_row[..width]);
            }
        }
    }
}

/// The previous 4×8 register-tile kernel, verbatim.
#[inline(always)]
fn micro_kernel_ref(k: usize, ap: &[f32], bp: &[f32]) -> [[f32; REF_NR]; REF_MR] {
    let mut acc = [[0.0f32; REF_NR]; REF_MR];
    debug_assert!(ap.len() >= k * REF_MR && bp.len() >= k * REF_NR);
    for (a, b) in ap.chunks_exact(REF_MR).zip(bp.chunks_exact(REF_NR)).take(k) {
        let a: &[f32; REF_MR] = a.try_into().unwrap();
        let b: &[f32; REF_NR] = b.try_into().unwrap();
        for (row, &av) in acc.iter_mut().zip(a) {
            for (acc_v, &bv) in row.iter_mut().zip(b) {
                *acc_v = av.mul_add(bv, *acc_v);
            }
        }
    }
    acc
}

/// Reference implementation: straightforward loops, ascending-`p` sums.
/// Public so tests and benchmarks can compare against the blocked path.
#[allow(clippy::too_many_arguments)]
pub fn gemm_naive(
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), n * m);
    let a_at = |i: usize, p: usize| match a_layout {
        Layout::Normal => a[i * k + p],
        Layout::Transposed => a[p * n + i],
    };
    let b_at = |p: usize, j: usize| match b_layout {
        Layout::Normal => b[p * m + j],
        Layout::Transposed => b[j * k + p],
    };
    for i in 0..n {
        let out_row = &mut c[i * m..(i + 1) * m];
        for (j, o) in out_row.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            for p in 0..k {
                sum = a_at(i, p).mul_add(b_at(p, j), sum);
            }
            *o = sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::{set_simd_policy, SimdPolicy};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.random_range(-1.0f32..1.0)).collect()
    }

    fn check_all_layouts(n: usize, m: usize, k: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for (la, lb) in [
            (Layout::Normal, Layout::Normal),
            (Layout::Transposed, Layout::Normal),
            (Layout::Normal, Layout::Transposed),
        ] {
            let a_len = n * k;
            let b_len = k * m;
            let a = random_matrix(&mut rng, a_len);
            let b = random_matrix(&mut rng, b_len);
            let mut fast = vec![0.0f32; n * m];
            let mut slow = vec![0.0f32; n * m];
            gemm(n, m, k, &a, la, &b, lb, &mut fast);
            gemm_naive(n, m, k, &a, la, &b, lb, &mut slow);
            assert_eq!(fast, slow, "({n},{m},{k}) {la:?}/{lb:?}");
        }
    }

    #[test]
    fn blocked_matches_naive_on_rectangles() {
        for &(n, m, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 16),
            (5, 9, 33),
            (17, 13, 64),
            (64, 12, 96),
            (33, 65, 48),
            (128, 40, 50),
        ] {
            check_all_layouts(n, m, k, (n * 1000 + m * 10 + k) as u64);
        }
    }

    #[test]
    fn degenerate_edges_survive() {
        // m or n smaller than a tile; k = 1.
        check_all_layouts(1, 8, 1, 1);
        check_all_layouts(2, 3, 1, 2);
        check_all_layouts(4, 1, 128, 3);
    }

    /// simd ≡ blocked-reference ≡ naive, bitwise, at the ragged shapes the
    /// tiling has to pad — `n % MR != 0`, `m % NR != 0`, `m < NR`,
    /// `n < MR`, `k == 0` — across both dispatch paths and
    /// `KD_THREADS ∈ {1, 4}`. The blocked path is driven directly (not
    /// through `gemm`'s naive small-shape shortcut) so the tile padding is
    /// really exercised at the tiny shapes.
    ///
    /// Flipping the global simd policy mid-suite is safe for concurrently
    /// running tests: both paths are bitwise identical, so any dispatch a
    /// neighbour happens to observe produces the same results — the same
    /// argument `tspar`'s pool property tests rely on.
    #[test]
    fn ragged_shapes_bitwise_equal_across_kernels_paths_and_threads() {
        // (n, m, k): n ragged vs MR=8, m ragged vs NR=16 (above and below
        // one panel), m < NR, n < MR, both ragged, k = 0, and one aligned
        // control.
        let shapes = [
            (13, 16, 24), // n % MR != 0
            (16, 21, 24), // m % NR != 0, m > NR
            (16, 13, 24), // m % NR != 0, m < NR
            (16, 5, 24),  // m < NR, below the ref panel width too
            (5, 16, 24),  // n < MR
            (11, 7, 33),  // both ragged, odd k
            (9, 9, 0),    // k == 0 → all-zero C
            (16, 16, 16), // aligned control
        ];
        for &threads in &[1usize, 4] {
            tspar::set_parallelism(tspar::Parallelism::Fixed(threads));
            for &policy in &[SimdPolicy::Lanes, SimdPolicy::Scalar] {
                set_simd_policy(policy);
                for &(n, m, k) in &shapes {
                    let mut rng = StdRng::seed_from_u64((n * 971 + m * 31 + k) as u64);
                    for (la, lb) in [
                        (Layout::Normal, Layout::Normal),
                        (Layout::Transposed, Layout::Normal),
                        (Layout::Normal, Layout::Transposed),
                    ] {
                        let a = random_matrix(&mut rng, n * k);
                        let b = random_matrix(&mut rng, k * m);
                        let mut naive = vec![f32::NAN; n * m];
                        gemm_naive(n, m, k, &a, la, &b, lb, &mut naive);
                        let mut blocked_ref = vec![f32::NAN; n * m];
                        gemm_blocked_ref(n, m, k, &a, la, &b, lb, &mut blocked_ref);
                        let mut lane = vec![f32::NAN; n * m];
                        gemm_blocked(n, m, k, &a, la, &pack_b::<NR>(m, k, &b, lb), KC, &mut lane);
                        let ctx =
                            format!("({n},{m},{k}) {la:?}/{lb:?} threads={threads} {policy:?}");
                        assert_eq!(naive, blocked_ref, "naive vs ref {ctx}");
                        assert_eq!(naive, lane, "naive vs lane {ctx}");
                        if k == 0 {
                            assert!(lane.iter().all(|&v| v == 0.0), "k=0 zeroes C {ctx}");
                        }
                    }
                }
            }
            set_simd_policy(SimdPolicy::Auto);
        }
        tspar::set_parallelism(tspar::Parallelism::Auto);
    }

    #[test]
    fn lane_and_scalar_micro_kernels_bitwise_equal() {
        let mut rng = StdRng::seed_from_u64(77);
        let zero = [[0.0f32; NR]; MR];
        for &k in &[0usize, 1, 7, 32, 129] {
            let ap = random_matrix(&mut rng, k * MR);
            let bp = random_matrix(&mut rng, k * NR);
            assert_eq!(
                micro_kernel_lanes(k, &ap, &bp, &zero),
                micro_kernel_scalar(k, &ap, &bp, &zero),
                "k={k} zero seed"
            );
            // Non-trivial accumulator seeds (the k-blocked continuation
            // path) must agree too.
            let mut init = [[0.0f32; NR]; MR];
            for row in &mut init {
                for v in row.iter_mut() {
                    *v = rng.random_range(-2.0f32..2.0);
                }
            }
            assert_eq!(
                micro_kernel_lanes(k, &ap, &bp, &init),
                micro_kernel_scalar(k, &ap, &bp, &init),
                "k={k} seeded"
            );
        }
    }

    /// k-blocked ≡ unblocked, bitwise, at every block size — including
    /// `kc = 1` (one store/reload round trip per `p` step, the worst
    /// case for the "memory round trips are exact" argument), ragged
    /// shapes, every layout pair, and both simd policies. This is the
    /// pin the module-level determinism note points at.
    #[test]
    fn k_blocked_matches_unblocked_bitwise() {
        let shapes = [
            (5, 9, 40),    // ragged everything
            (13, 21, 70),  // ragged rows and columns
            (16, 16, 300), // aligned, k > KC at kc = 256
            (8, 16, 513),  // one step past a kc = 256 boundary
        ];
        for &policy in &[SimdPolicy::Lanes, SimdPolicy::Scalar] {
            set_simd_policy(policy);
            for &(n, m, k) in &shapes {
                let mut rng = StdRng::seed_from_u64((n * 7919 + m * 131 + k) as u64);
                for (la, lb) in [
                    (Layout::Normal, Layout::Normal),
                    (Layout::Transposed, Layout::Normal),
                    (Layout::Normal, Layout::Transposed),
                ] {
                    let a = random_matrix(&mut rng, n * k);
                    let b = random_matrix(&mut rng, k * m);
                    let mut unblocked = vec![f32::NAN; n * m];
                    gemm_with_kc(n, m, k, &a, la, &b, lb, usize::MAX, &mut unblocked);
                    let mut naive = vec![f32::NAN; n * m];
                    gemm_naive(n, m, k, &a, la, &b, lb, &mut naive);
                    assert_eq!(naive, unblocked, "({n},{m},{k}) {la:?}/{lb:?} {policy:?}");
                    for &kc in &[1usize, 3, 64, 256] {
                        let mut blocked = vec![f32::NAN; n * m];
                        gemm_with_kc(n, m, k, &a, la, &b, lb, kc, &mut blocked);
                        assert_eq!(
                            unblocked, blocked,
                            "({n},{m},{k}) {la:?}/{lb:?} kc={kc} {policy:?}"
                        );
                    }
                }
            }
        }
        set_simd_policy(SimdPolicy::Auto);
    }

    #[test]
    fn prepacked_with_kc_matches_gemm() {
        let (n, m, k) = (24, 40, 600);
        let mut rng = StdRng::seed_from_u64(42);
        let a = random_matrix(&mut rng, n * k);
        let b = random_matrix(&mut rng, k * m);
        let mut direct = vec![0.0f32; n * m];
        gemm(n, m, k, &a, Layout::Normal, &b, Layout::Normal, &mut direct);
        let packed = PackedB::pack(m, k, &b, Layout::Normal);
        for &kc in &[7usize, KC, usize::MAX] {
            let mut pre = vec![f32::NAN; n * m];
            gemm_prepacked_with_kc(n, &a, Layout::Normal, &packed, kc, &mut pre);
            assert_eq!(direct, pre, "kc={kc}");
        }
    }

    #[test]
    fn identity_product() {
        let k = 16;
        let mut eye = vec![0.0f32; k * k];
        for i in 0..k {
            eye[i * k + i] = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_matrix(&mut rng, 8 * k);
        let mut c = vec![0.0f32; 8 * k];
        gemm(8, k, k, &a, Layout::Normal, &eye, Layout::Normal, &mut c);
        for (x, y) in c.iter().zip(&a) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn prepacked_matches_gemm_bit_for_bit() {
        // Shapes spanning the naive shortcut, the serial blocked path and
        // parallel-eligible sizes, in both B layouts.
        for &(n, m, k) in &[(2, 3, 4), (5, 9, 33), (64, 48, 96), (96, 80, 120)] {
            let mut rng = StdRng::seed_from_u64((n * 100 + m * 10 + k) as u64);
            let a = random_matrix(&mut rng, n * k);
            let b = random_matrix(&mut rng, k * m);
            for lb in [Layout::Normal, Layout::Transposed] {
                let mut direct = vec![0.0f32; n * m];
                gemm(n, m, k, &a, Layout::Normal, &b, lb, &mut direct);
                let packed = PackedB::pack(m, k, &b, lb);
                assert_eq!((packed.m(), packed.k()), (m, k));
                let mut pre = vec![0.0f32; n * m];
                gemm_prepacked(n, &a, Layout::Normal, &packed, &mut pre);
                assert_eq!(direct, pre, "({n},{m},{k}) {lb:?}");
            }
        }
    }

    #[test]
    fn prepacked_parallel_split_is_bit_identical() {
        let (n, m, k) = (96, 80, 120);
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, n * k);
        let b = random_matrix(&mut rng, k * m);
        let packed = PackedB::pack(m, k, &b, Layout::Normal);
        tspar::set_parallelism(tspar::Parallelism::Fixed(1));
        let mut c1 = vec![0.0f32; n * m];
        gemm_prepacked(n, &a, Layout::Normal, &packed, &mut c1);
        tspar::set_parallelism(tspar::Parallelism::Fixed(7));
        let mut c7 = vec![0.0f32; n * m];
        gemm_prepacked(n, &a, Layout::Normal, &packed, &mut c7);
        tspar::set_parallelism(tspar::Parallelism::Auto);
        assert_eq!(c1, c7, "prepacked parallel GEMM must be bit-identical");
    }

    #[test]
    fn parallel_split_is_bit_identical() {
        let (n, m, k) = (96, 80, 120);
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_matrix(&mut rng, n * k);
        let b = random_matrix(&mut rng, k * m);
        tspar::set_parallelism(tspar::Parallelism::Fixed(1));
        let mut c1 = vec![0.0f32; n * m];
        gemm(n, m, k, &a, Layout::Normal, &b, Layout::Normal, &mut c1);
        tspar::set_parallelism(tspar::Parallelism::Fixed(7));
        let mut c7 = vec![0.0f32; n * m];
        gemm(n, m, k, &a, Layout::Normal, &b, Layout::Normal, &mut c7);
        tspar::set_parallelism(tspar::Parallelism::Auto);
        assert_eq!(c1, c7, "row-split parallel GEMM must be bit-identical");
    }
}
