//! Cache-blocked, register-tiled, parallel `f32` GEMM kernels.
//!
//! One packed kernel serves the three tensor products the NN substrate
//! needs (`A·B`, `Aᵀ·B`, `A·Bᵀ`) by reading either operand transposed
//! during packing. The compute shape is the classic panel-dot formulation:
//!
//! * **B is packed once** into column panels of width [`NR`]: panel `j`
//!   holds `B[p][j..j+NR]` contiguously for `p = 0..k`, zero-padded at the
//!   right edge. Packing linearises the innermost streams so the micro-
//!   kernel reads both operands sequentially (hardware-prefetch friendly).
//! * **A is packed per row tile** of height [`MR`]: `A[i..i+MR][p]`
//!   contiguously for `p = 0..k`, zero-padded at the bottom edge.
//! * The micro-kernel keeps an `MR × NR` accumulator block in registers for
//!   the whole `k` loop, so `C` is written exactly once per tile instead of
//!   once per `k` step — the main win over the naive axpy loop, whose
//!   output-row traffic grows with `k`.
//! * The micro-kernel is written over [`crate::simd::F32x16`] lane types:
//!   each accumulator row is one 16-wide lane vector held in an
//!   individually named local (one 512-bit register on AVX-512 targets —
//!   see the [`F32x16`] docs for why arrays of accumulators and 8-wide
//!   rows both compile to shuffle-heavy spills instead), the `NR` output
//!   columns are the vector lanes, and each `k` step broadcasts one packed
//!   `A` value against one packed `B` row. Eight rows give eight
//!   independent add chains, enough to hide vector-add latency. A scalar
//!   fallback with identical semantics stays compiled (`KD_NO_SIMD=1` or
//!   [`crate::simd::set_simd_policy`]) — see the determinism note below.
//!
//! **Determinism.** Every `C[i][j]` is one scalar chain `Σ_p a·b` in fixed
//! ascending-`p` order, computed by exactly one worker. Vectorisation runs
//! *across* the `NR` output columns (each lane is one output element's
//! chain), never across `k`, and lane arithmetic is plain IEEE-754 with no
//! FMA contraction — so the lane kernel, the scalar fallback, the previous
//! 4-row blocked kernel ([`gemm_blocked_ref`]) and the naive seed kernel
//! ([`gemm_naive`]) all agree **bitwise**. Parallelism splits row tiles
//! (fixed [`MR`]-aligned boundaries, independent of the worker count), so
//! results are also bit-identical at any thread count — the property
//! `tests/parallel_determinism.rs` pins.
//!
//! `KD_BLOCK` overrides the number of row tiles per parallel task (the
//! split granularity, which never affects values); `KD_THREADS` caps the
//! workers (see [`tspar`]).

use crate::simd::{self, F32x16};

/// Micro-kernel tile height (rows of `A` per register block). Eight rows —
/// one lane accumulator each — give eight independent add chains per `k`
/// step, enough to hide vector-add latency on any recent x86/ARM core
/// (the previous 4-row kernel, kept as [`gemm_blocked_ref`], was
/// latency-bound at half the chains).
pub const MR: usize = 8;
/// Micro-kernel tile width (columns of `B` per register block) — the lane
/// count of [`F32x16`], so one accumulator row is exactly one vector.
pub const NR: usize = 16;

/// Row-tile height of the previous-generation reference kernel
/// ([`gemm_blocked_ref`]).
pub const REF_MR: usize = 4;
/// Panel width of the previous-generation reference kernel.
pub const REF_NR: usize = 8;

/// Work below this many fused multiply-adds is not worth packing.
const PACK_FLOP_THRESHOLD: usize = 4096;

/// How one operand matrix is laid out relative to the product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Use the matrix as stored: element `(r, c)` at `data[r * ld + c]`.
    Normal,
    /// Use the transpose: element `(r, c)` at `data[c * ld + r]`.
    Transposed,
}

/// `C = A' × B'` where `A'` is `n×k` and `B'` is `k×m` after applying the
/// layouts. `c` must hold `n·m` elements and is fully overwritten.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), n * m);
    if n * m * k < PACK_FLOP_THRESHOLD {
        gemm_naive(n, m, k, a, a_layout, b, b_layout, c);
        return;
    }
    gemm_blocked(n, m, k, a, a_layout, &pack_b::<NR>(m, k, b, b_layout), c);
}

/// The blocked compute shared by [`gemm`] and [`gemm_prepacked`]: row-tile
/// loop over pre-packed B panels, serial below the parallel work gate.
fn gemm_blocked(
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    panels: &[f32],
    c: &mut [f32],
) {
    let flops = n * m * k;
    let n_tiles = n.div_ceil(MR);
    let tiles_per_task = block_rows().max(1);

    // Work below the execution backend's gate (`tspar::min_par_work`,
    // shared with the layer-level gates) is not worth a parallel region.
    if flops < tspar::min_par_work() || tspar::threads() <= 1 {
        let mut packed_a = vec![0.0f32; k * MR];
        for tile in 0..n_tiles {
            gemm_row_tile(tile, n, m, k, a, a_layout, panels, &mut packed_a, c);
        }
        return;
    }

    // Parallel: each task owns `tiles_per_task` consecutive row tiles and
    // the matching rows of C, dispatched to tspar's persistent pool. Tile
    // boundaries depend only on MR and the task size, never on the worker
    // count or the execution backend.
    let rows_per_task = tiles_per_task * MR;
    tspar::par_chunks_mut(c, rows_per_task * m, |task, c_chunk| {
        let tile0 = task * tiles_per_task;
        let mut packed_a = vec![0.0f32; k * MR];
        let rows_here = c_chunk.len() / m;
        let tiles_here = rows_here.div_ceil(MR);
        for t in 0..tiles_here {
            let tile = tile0 + t;
            // Views are C-chunk-relative: pass a shifted row base.
            gemm_row_tile_into(
                tile,
                tile0 * MR,
                n,
                m,
                k,
                a,
                a_layout,
                panels,
                &mut packed_a,
                c_chunk,
            );
        }
    });
}

/// A `B` operand packed once into [`NR`]-wide column panels, held by the
/// caller for repeated products against a constant matrix.
///
/// [`gemm`] re-packs `B` on every call, which is the right trade for
/// one-shot products but wasteful when the same `B` is reused many times —
/// the LSTM multiplies by its recurrent weights `W_h` once per timestep in
/// both directions. Packing once per sequence and calling
/// [`gemm_prepacked`] amortises that cost; results are bit-identical to
/// [`gemm`] because the micro-kernel sums in the same ascending-`p` order
/// regardless of who packed the panels.
#[derive(Debug, Clone)]
pub struct PackedB {
    m: usize,
    k: usize,
    panels: Vec<f32>,
}

impl PackedB {
    /// Packs `B'` (`k×m` after applying `layout`) into column panels.
    pub fn pack(m: usize, k: usize, b: &[f32], layout: Layout) -> Self {
        Self {
            m,
            k,
            panels: pack_b::<NR>(m, k, b, layout),
        }
    }

    /// Output width `m` of products against this operand.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Inner dimension `k` of products against this operand.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// `C = A' × B` with a caller-held pre-packed `B` (see [`PackedB`]).
/// `A'` is `n×k` after applying `a_layout`; `c` must hold `n·m` elements
/// and is fully overwritten. Bit-identical to [`gemm`] at every shape.
pub fn gemm_prepacked(n: usize, a: &[f32], a_layout: Layout, b: &PackedB, c: &mut [f32]) {
    debug_assert_eq!(c.len(), n * b.m);
    gemm_blocked(n, b.m, b.k, a, a_layout, &b.panels, c);
}

/// Row tiles per parallel task (`KD_BLOCK`, default 8 → 64 rows/task).
fn block_rows() -> usize {
    static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("KD_BLOCK")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| v >= 1)
            .unwrap_or(8)
    })
}

/// Packs `B'` (`k×m` after layout) into `W`-wide column panels,
/// zero-padded. `W` is [`NR`] for the lane kernel, [`REF_NR`] for the
/// reference kernel.
fn pack_b<const W: usize>(m: usize, k: usize, b: &[f32], layout: Layout) -> Vec<f32> {
    let m_pad = m.div_ceil(W) * W;
    let mut out = vec![0.0f32; k * m_pad];
    match layout {
        Layout::Normal => {
            // B'[p][j] = b[p * m + j]; copy row slices panel by panel.
            for (panel, j0) in (0..m).step_by(W).enumerate() {
                let width = W.min(m - j0);
                let dst_base = panel * (k * W);
                for p in 0..k {
                    let src = &b[p * m + j0..p * m + j0 + width];
                    out[dst_base + p * W..dst_base + p * W + width].copy_from_slice(src);
                }
            }
        }
        Layout::Transposed => {
            // B'[p][j] = b[j * k + p]; source columns are contiguous rows.
            for (panel, j0) in (0..m).step_by(W).enumerate() {
                let width = W.min(m - j0);
                let dst_base = panel * (k * W);
                for jj in 0..width {
                    let src = &b[(j0 + jj) * k..(j0 + jj) * k + k];
                    for (p, &v) in src.iter().enumerate() {
                        out[dst_base + p * W + jj] = v;
                    }
                }
            }
        }
    }
    out
}

/// Packs row tile `tile` (height `TH`) of `A'` (`n×k` after layout):
/// `packed[p*TH + ii] = A'[tile*TH + ii][p]`, zero-padded below row `n`.
fn pack_a_tile<const TH: usize>(
    tile: usize,
    n: usize,
    k: usize,
    a: &[f32],
    layout: Layout,
    packed: &mut [f32],
) {
    let i0 = tile * TH;
    let rows = TH.min(n - i0);
    match layout {
        Layout::Normal => {
            // A'[i][p] = a[i * k + p].
            for p in 0..k {
                for ii in 0..TH {
                    packed[p * TH + ii] = if ii < rows { a[(i0 + ii) * k + p] } else { 0.0 };
                }
            }
        }
        Layout::Transposed => {
            // A'[i][p] = a[p * n + i]; each p is a contiguous source row.
            for p in 0..k {
                let src = &a[p * n + i0..p * n + i0 + rows];
                let dst = &mut packed[p * TH..p * TH + TH];
                dst[..rows].copy_from_slice(src);
                for v in &mut dst[rows..] {
                    *v = 0.0;
                }
            }
        }
    }
}

/// Computes one MR-row tile of C (C rows indexed from 0).
#[allow(clippy::too_many_arguments)]
fn gemm_row_tile(
    tile: usize,
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    packed_b: &[f32],
    packed_a: &mut [f32],
    c: &mut [f32],
) {
    gemm_row_tile_into(tile, 0, n, m, k, a, a_layout, packed_b, packed_a, c);
}

/// Computes row tile `tile`, writing into `c_chunk` whose first row is
/// global row `row_base`.
#[allow(clippy::too_many_arguments)]
fn gemm_row_tile_into(
    tile: usize,
    row_base: usize,
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    packed_b: &[f32],
    packed_a: &mut [f32],
    c_chunk: &mut [f32],
) {
    let i0 = tile * MR;
    if i0 >= n {
        return;
    }
    let rows = MR.min(n - i0);
    pack_a_tile::<MR>(tile, n, k, a, a_layout, packed_a);
    // One dispatch decision per row tile; the micro-kernels themselves
    // never consult the flag inside the k loop.
    let lanes = simd::simd_enabled();
    for (panel, j0) in (0..m).step_by(NR).enumerate() {
        let width = NR.min(m - j0);
        let bp = &packed_b[panel * (k * NR)..(panel + 1) * (k * NR)];
        let acc = if lanes {
            micro_kernel_lanes(k, packed_a, bp)
        } else {
            micro_kernel_scalar(k, packed_a, bp)
        };
        // Store the active part of the register tile.
        for (ii, acc_row) in acc.iter().enumerate().take(rows) {
            let row = i0 - row_base + ii;
            let dst = &mut c_chunk[row * m + j0..row * m + j0 + width];
            dst.copy_from_slice(&acc_row[..width]);
        }
    }
}

/// The MR×NR lane-tile dot kernel: each accumulator row is one [`F32x16`]
/// whose lanes are the `NR` output columns, held in registers for the
/// whole `k` loop. Each `k` step broadcasts one packed-`A` value against
/// the packed-`B` row — per output element the sum runs in ascending-`p`
/// order, identical to the naive reference, so lane, scalar, reference
/// and naive kernels agree to the last bit.
///
/// The eight rows are individually named locals on purpose: an
/// accumulator *array* this size defeats LLVM's scalar replacement and
/// spills the whole tile to the stack every `k` step (measured ~5× slower
/// than this shape).
#[inline(always)]
fn micro_kernel_lanes(k: usize, ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
    debug_assert!(ap.len() >= k * MR && bp.len() >= k * NR);
    let (mut c0, mut c1, mut c2, mut c3) = (
        F32x16::zero(),
        F32x16::zero(),
        F32x16::zero(),
        F32x16::zero(),
    );
    let (mut c4, mut c5, mut c6, mut c7) = (
        F32x16::zero(),
        F32x16::zero(),
        F32x16::zero(),
        F32x16::zero(),
    );
    // Fixed-size chunks give LLVM compile-time lengths: no bounds checks
    // inside the k loop.
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(k) {
        let bv = F32x16::load(b);
        c0 = c0.mul_add_to(a[0], bv);
        c1 = c1.mul_add_to(a[1], bv);
        c2 = c2.mul_add_to(a[2], bv);
        c3 = c3.mul_add_to(a[3], bv);
        c4 = c4.mul_add_to(a[4], bv);
        c5 = c5.mul_add_to(a[5], bv);
        c6 = c6.mul_add_to(a[6], bv);
        c7 = c7.mul_add_to(a[7], bv);
    }
    [
        c0.to_array(),
        c1.to_array(),
        c2.to_array(),
        c3.to_array(),
        c4.to_array(),
        c5.to_array(),
        c6.to_array(),
        c7.to_array(),
    ]
}

/// The scalar fallback of [`micro_kernel_lanes`]: the same MR×NR
/// accumulator walked with plain scalar loops in the same order — bitwise
/// identical by construction, kept compiled and exercised by the
/// `KD_NO_SIMD=1` CI leg.
#[inline(always)]
fn micro_kernel_scalar(k: usize, ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
    debug_assert!(ap.len() >= k * MR && bp.len() >= k * NR);
    let mut acc = [[0.0f32; NR]; MR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(k) {
        let a: &[f32; MR] = a.try_into().unwrap();
        let b: &[f32; NR] = b.try_into().unwrap();
        for (row, &av) in acc.iter_mut().zip(a) {
            for (acc_v, &bv) in row.iter_mut().zip(b) {
                *acc_v += av * bv;
            }
        }
    }
    acc
}

/// The previous-generation blocked kernel: [`REF_MR`]-row tiles with the
/// compiler-vectorised scalar micro-kernel, serial. Kept as the timing and
/// equality reference for the lane kernel (as [`gemm_naive`] is the seed
/// reference) — `BENCH_micro.json`'s `simd` entry records the lane
/// kernel's speedup over this, with a `max_abs_diff = 0` guard.
#[allow(clippy::too_many_arguments)]
pub fn gemm_blocked_ref(
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), n * m);
    let panels = pack_b::<REF_NR>(m, k, b, b_layout);
    let mut packed_a = vec![0.0f32; k * REF_MR];
    for tile in 0..n.div_ceil(REF_MR) {
        let i0 = tile * REF_MR;
        let rows = REF_MR.min(n - i0);
        pack_a_tile::<REF_MR>(tile, n, k, a, a_layout, &mut packed_a);
        for (panel, j0) in (0..m).step_by(REF_NR).enumerate() {
            let width = REF_NR.min(m - j0);
            let bp = &panels[panel * (k * REF_NR)..(panel + 1) * (k * REF_NR)];
            let acc = micro_kernel_ref(k, &packed_a, bp);
            for (ii, acc_row) in acc.iter().enumerate().take(rows) {
                let dst = &mut c[(i0 + ii) * m + j0..(i0 + ii) * m + j0 + width];
                dst.copy_from_slice(&acc_row[..width]);
            }
        }
    }
}

/// The previous 4×8 register-tile kernel, verbatim.
#[inline(always)]
fn micro_kernel_ref(k: usize, ap: &[f32], bp: &[f32]) -> [[f32; REF_NR]; REF_MR] {
    let mut acc = [[0.0f32; REF_NR]; REF_MR];
    debug_assert!(ap.len() >= k * REF_MR && bp.len() >= k * REF_NR);
    for (a, b) in ap.chunks_exact(REF_MR).zip(bp.chunks_exact(REF_NR)).take(k) {
        let a: &[f32; REF_MR] = a.try_into().unwrap();
        let b: &[f32; REF_NR] = b.try_into().unwrap();
        for (row, &av) in acc.iter_mut().zip(a) {
            for (acc_v, &bv) in row.iter_mut().zip(b) {
                *acc_v += av * bv;
            }
        }
    }
    acc
}

/// Reference implementation: straightforward loops, ascending-`p` sums.
/// Public so tests and benchmarks can compare against the blocked path.
#[allow(clippy::too_many_arguments)]
pub fn gemm_naive(
    n: usize,
    m: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), n * m);
    let a_at = |i: usize, p: usize| match a_layout {
        Layout::Normal => a[i * k + p],
        Layout::Transposed => a[p * n + i],
    };
    let b_at = |p: usize, j: usize| match b_layout {
        Layout::Normal => b[p * m + j],
        Layout::Transposed => b[j * k + p],
    };
    for i in 0..n {
        let out_row = &mut c[i * m..(i + 1) * m];
        for (j, o) in out_row.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            for p in 0..k {
                sum += a_at(i, p) * b_at(p, j);
            }
            *o = sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::{set_simd_policy, SimdPolicy};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.random_range(-1.0f32..1.0)).collect()
    }

    fn check_all_layouts(n: usize, m: usize, k: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for (la, lb) in [
            (Layout::Normal, Layout::Normal),
            (Layout::Transposed, Layout::Normal),
            (Layout::Normal, Layout::Transposed),
        ] {
            let a_len = n * k;
            let b_len = k * m;
            let a = random_matrix(&mut rng, a_len);
            let b = random_matrix(&mut rng, b_len);
            let mut fast = vec![0.0f32; n * m];
            let mut slow = vec![0.0f32; n * m];
            gemm(n, m, k, &a, la, &b, lb, &mut fast);
            gemm_naive(n, m, k, &a, la, &b, lb, &mut slow);
            assert_eq!(fast, slow, "({n},{m},{k}) {la:?}/{lb:?}");
        }
    }

    #[test]
    fn blocked_matches_naive_on_rectangles() {
        for &(n, m, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 16),
            (5, 9, 33),
            (17, 13, 64),
            (64, 12, 96),
            (33, 65, 48),
            (128, 40, 50),
        ] {
            check_all_layouts(n, m, k, (n * 1000 + m * 10 + k) as u64);
        }
    }

    #[test]
    fn degenerate_edges_survive() {
        // m or n smaller than a tile; k = 1.
        check_all_layouts(1, 8, 1, 1);
        check_all_layouts(2, 3, 1, 2);
        check_all_layouts(4, 1, 128, 3);
    }

    /// simd ≡ blocked-reference ≡ naive, bitwise, at the ragged shapes the
    /// tiling has to pad — `n % MR != 0`, `m % NR != 0`, `m < NR`,
    /// `n < MR`, `k == 0` — across both dispatch paths and
    /// `KD_THREADS ∈ {1, 4}`. The blocked path is driven directly (not
    /// through `gemm`'s naive small-shape shortcut) so the tile padding is
    /// really exercised at the tiny shapes.
    ///
    /// Flipping the global simd policy mid-suite is safe for concurrently
    /// running tests: both paths are bitwise identical, so any dispatch a
    /// neighbour happens to observe produces the same results — the same
    /// argument `tspar`'s pool property tests rely on.
    #[test]
    fn ragged_shapes_bitwise_equal_across_kernels_paths_and_threads() {
        // (n, m, k): n ragged vs MR=8, m ragged vs NR=16 (above and below
        // one panel), m < NR, n < MR, both ragged, k = 0, and one aligned
        // control.
        let shapes = [
            (13, 16, 24), // n % MR != 0
            (16, 21, 24), // m % NR != 0, m > NR
            (16, 13, 24), // m % NR != 0, m < NR
            (16, 5, 24),  // m < NR, below the ref panel width too
            (5, 16, 24),  // n < MR
            (11, 7, 33),  // both ragged, odd k
            (9, 9, 0),    // k == 0 → all-zero C
            (16, 16, 16), // aligned control
        ];
        for &threads in &[1usize, 4] {
            tspar::set_parallelism(tspar::Parallelism::Fixed(threads));
            for &policy in &[SimdPolicy::Lanes, SimdPolicy::Scalar] {
                set_simd_policy(policy);
                for &(n, m, k) in &shapes {
                    let mut rng = StdRng::seed_from_u64((n * 971 + m * 31 + k) as u64);
                    for (la, lb) in [
                        (Layout::Normal, Layout::Normal),
                        (Layout::Transposed, Layout::Normal),
                        (Layout::Normal, Layout::Transposed),
                    ] {
                        let a = random_matrix(&mut rng, n * k);
                        let b = random_matrix(&mut rng, k * m);
                        let mut naive = vec![f32::NAN; n * m];
                        gemm_naive(n, m, k, &a, la, &b, lb, &mut naive);
                        let mut blocked_ref = vec![f32::NAN; n * m];
                        gemm_blocked_ref(n, m, k, &a, la, &b, lb, &mut blocked_ref);
                        let mut lane = vec![f32::NAN; n * m];
                        gemm_blocked(n, m, k, &a, la, &pack_b::<NR>(m, k, &b, lb), &mut lane);
                        let ctx =
                            format!("({n},{m},{k}) {la:?}/{lb:?} threads={threads} {policy:?}");
                        assert_eq!(naive, blocked_ref, "naive vs ref {ctx}");
                        assert_eq!(naive, lane, "naive vs lane {ctx}");
                        if k == 0 {
                            assert!(lane.iter().all(|&v| v == 0.0), "k=0 zeroes C {ctx}");
                        }
                    }
                }
            }
            set_simd_policy(SimdPolicy::Auto);
        }
        tspar::set_parallelism(tspar::Parallelism::Auto);
    }

    #[test]
    fn lane_and_scalar_micro_kernels_bitwise_equal() {
        let mut rng = StdRng::seed_from_u64(77);
        for &k in &[0usize, 1, 7, 32, 129] {
            let ap = random_matrix(&mut rng, k * MR);
            let bp = random_matrix(&mut rng, k * NR);
            assert_eq!(
                micro_kernel_lanes(k, &ap, &bp),
                micro_kernel_scalar(k, &ap, &bp),
                "k={k}"
            );
        }
    }

    #[test]
    fn identity_product() {
        let k = 16;
        let mut eye = vec![0.0f32; k * k];
        for i in 0..k {
            eye[i * k + i] = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_matrix(&mut rng, 8 * k);
        let mut c = vec![0.0f32; 8 * k];
        gemm(8, k, k, &a, Layout::Normal, &eye, Layout::Normal, &mut c);
        for (x, y) in c.iter().zip(&a) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn prepacked_matches_gemm_bit_for_bit() {
        // Shapes spanning the naive shortcut, the serial blocked path and
        // parallel-eligible sizes, in both B layouts.
        for &(n, m, k) in &[(2, 3, 4), (5, 9, 33), (64, 48, 96), (96, 80, 120)] {
            let mut rng = StdRng::seed_from_u64((n * 100 + m * 10 + k) as u64);
            let a = random_matrix(&mut rng, n * k);
            let b = random_matrix(&mut rng, k * m);
            for lb in [Layout::Normal, Layout::Transposed] {
                let mut direct = vec![0.0f32; n * m];
                gemm(n, m, k, &a, Layout::Normal, &b, lb, &mut direct);
                let packed = PackedB::pack(m, k, &b, lb);
                assert_eq!((packed.m(), packed.k()), (m, k));
                let mut pre = vec![0.0f32; n * m];
                gemm_prepacked(n, &a, Layout::Normal, &packed, &mut pre);
                assert_eq!(direct, pre, "({n},{m},{k}) {lb:?}");
            }
        }
    }

    #[test]
    fn prepacked_parallel_split_is_bit_identical() {
        let (n, m, k) = (96, 80, 120);
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, n * k);
        let b = random_matrix(&mut rng, k * m);
        let packed = PackedB::pack(m, k, &b, Layout::Normal);
        tspar::set_parallelism(tspar::Parallelism::Fixed(1));
        let mut c1 = vec![0.0f32; n * m];
        gemm_prepacked(n, &a, Layout::Normal, &packed, &mut c1);
        tspar::set_parallelism(tspar::Parallelism::Fixed(7));
        let mut c7 = vec![0.0f32; n * m];
        gemm_prepacked(n, &a, Layout::Normal, &packed, &mut c7);
        tspar::set_parallelism(tspar::Parallelism::Auto);
        assert_eq!(c1, c7, "prepacked parallel GEMM must be bit-identical");
    }

    #[test]
    fn parallel_split_is_bit_identical() {
        let (n, m, k) = (96, 80, 120);
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_matrix(&mut rng, n * k);
        let b = random_matrix(&mut rng, k * m);
        tspar::set_parallelism(tspar::Parallelism::Fixed(1));
        let mut c1 = vec![0.0f32; n * m];
        gemm(n, m, k, &a, Layout::Normal, &b, Layout::Normal, &mut c1);
        tspar::set_parallelism(tspar::Parallelism::Fixed(7));
        let mut c7 = vec![0.0f32; n * m];
        gemm(n, m, k, &a, Layout::Normal, &b, Layout::Normal, &mut c7);
        tspar::set_parallelism(tspar::Parallelism::Auto);
        assert_eq!(c1, c7, "row-split parallel GEMM must be bit-identical");
    }
}
