//! Batch normalisation (channel-wise on sequences) and layer normalisation.

use crate::param::{Layer, Param};
use crate::tensor::Tensor;

const EPS: f32 = 1e-5;

/// Batch norm over `(N, C, L)`: statistics per channel across `N · L`.
///
/// Running statistics (momentum 0.1) are used in inference mode.
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    /// Scale γ, shape `(C,)`.
    pub gamma: Param,
    /// Shift β, shape `(C,)`.
    pub beta: Param,
    /// Running mean per channel.
    pub running_mean: Vec<f32>,
    /// Running variance per channel.
    pub running_var: Vec<f32>,
    momentum: f32,
    channels: usize,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm1d {
    /// New layer with γ=1, β=0.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::from_vec(&[channels], vec![1.0; channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            channels,
            cache: None,
        }
    }

    /// Normalises with the given statistics: returns `γ·x̂ + β`, plus `x̂`
    /// itself when `keep_x_hat` (the training path caches it for backward;
    /// the serving path skips the input-sized allocation). Both branches
    /// run the identical per-element arithmetic — `x̂ = (v − m)·s` then
    /// `y = γ·x̂ + β` — so train-eval and infer outputs match bit-for-bit.
    fn normalise(
        &self,
        x: &Tensor,
        mean: &[f32],
        inv_std: &[f32],
        keep_x_hat: bool,
    ) -> (Tensor, Option<Tensor>) {
        let (n, c, l) = (x.dim(0), x.dim(1), x.dim(2));
        let mut y = Tensor::zeros(&[n, c, l]);
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();
        if !keep_x_hat {
            for ni in 0..n {
                let xb = x.batch(ni);
                let yb = y.batch_mut(ni);
                for ci in 0..c {
                    let (m, s) = (mean[ci], inv_std[ci]);
                    let (g, b) = (gamma[ci], beta[ci]);
                    for (yv, &v) in yb[ci * l..(ci + 1) * l]
                        .iter_mut()
                        .zip(&xb[ci * l..(ci + 1) * l])
                    {
                        let h = (v - m) * s;
                        *yv = g * h + b;
                    }
                }
            }
            return (y, None);
        }
        let mut x_hat = Tensor::zeros(&[n, c, l]);
        for ni in 0..n {
            let xb = x.batch(ni);
            let hb = x_hat.batch_mut(ni);
            for ci in 0..c {
                let (m, s) = (mean[ci], inv_std[ci]);
                for (h, &v) in hb[ci * l..(ci + 1) * l]
                    .iter_mut()
                    .zip(&xb[ci * l..(ci + 1) * l])
                {
                    *h = (v - m) * s;
                }
            }
        }
        for ni in 0..n {
            let hb = x_hat.batch(ni);
            let yb = y.batch_mut(ni);
            for ci in 0..c {
                let (g, b) = (gamma[ci], beta[ci]);
                for (yv, &h) in yb[ci * l..(ci + 1) * l]
                    .iter_mut()
                    .zip(&hb[ci * l..(ci + 1) * l])
                {
                    *yv = g * h + b;
                }
            }
        }
        (y, Some(x_hat))
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.infer(x);
        }
        assert_eq!(x.shape().len(), 3, "BatchNorm1d expects (N, C, L)");
        assert_eq!(x.dim(1), self.channels, "channel mismatch");
        let (n, c, l) = (x.dim(0), x.dim(1), x.dim(2));
        let count = (n * l) as f32;

        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for ni in 0..n {
            let xb = x.batch(ni);
            for ci in 0..c {
                mean[ci] += xb[ci * l..(ci + 1) * l].iter().sum::<f32>();
            }
        }
        for m in &mut mean {
            *m /= count;
        }
        for ni in 0..n {
            let xb = x.batch(ni);
            for ci in 0..c {
                let m = mean[ci];
                var[ci] += xb[ci * l..(ci + 1) * l]
                    .iter()
                    .map(|&v| (v - m) * (v - m))
                    .sum::<f32>();
            }
        }
        for v in &mut var {
            *v /= count;
        }
        for ci in 0..c {
            self.running_mean[ci] =
                (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean[ci];
            self.running_var[ci] =
                (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var[ci];
        }

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + EPS).sqrt()).collect();
        let (y, x_hat) = self.normalise(x, &mean, &inv_std, true);
        self.cache = Some(BnCache {
            x_hat: x_hat.expect("requested cache"),
            inv_std,
        });
        y
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 3, "BatchNorm1d expects (N, C, L)");
        assert_eq!(x.dim(1), self.channels, "channel mismatch");
        let inv_std: Vec<f32> = self
            .running_var
            .iter()
            .map(|&v| 1.0 / (v + EPS).sqrt())
            .collect();
        self.normalise(x, &self.running_mean, &inv_std, false).0
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward without forward(train)");
        let (n, c, l) = (grad_out.dim(0), grad_out.dim(1), grad_out.dim(2));
        let count = (n * l) as f32;
        let gamma = self.gamma.value.data().to_vec();

        // Per-channel reductions: Σg and Σ g·x̂.
        let mut sum_g = vec![0.0f32; c];
        let mut sum_gx = vec![0.0f32; c];
        for ni in 0..n {
            let gb = grad_out.batch(ni);
            let hb = cache.x_hat.batch(ni);
            for ci in 0..c {
                let g_row = &gb[ci * l..(ci + 1) * l];
                let h_row = &hb[ci * l..(ci + 1) * l];
                sum_g[ci] += g_row.iter().sum::<f32>();
                sum_gx[ci] += g_row.iter().zip(h_row).map(|(&g, &h)| g * h).sum::<f32>();
            }
        }
        for ci in 0..c {
            self.gamma.grad.data_mut()[ci] += sum_gx[ci];
            self.beta.grad.data_mut()[ci] += sum_g[ci];
        }

        // dx = (γ·inv_std / count) · (count·g − Σg − x̂·Σ(g·x̂))
        let mut gx = Tensor::zeros(&[n, c, l]);
        for ni in 0..n {
            let gb = grad_out.batch(ni);
            let hb = cache.x_hat.batch(ni);
            let ob = gx.batch_mut(ni);
            for ci in 0..c {
                let scale = gamma[ci] * cache.inv_std[ci] / count;
                let (sg, sgx) = (sum_g[ci], sum_gx[ci]);
                let g_row = &gb[ci * l..(ci + 1) * l];
                let h_row = &hb[ci * l..(ci + 1) * l];
                let o_row = &mut ob[ci * l..(ci + 1) * l];
                for ((o, &g), &h) in o_row.iter_mut().zip(g_row).zip(h_row) {
                    *o = scale * (count * g - sg - h * sgx);
                }
            }
        }
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }
}

/// Layer norm over the last dimension of `(N, T, D)` or `(N, D)`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale γ, shape `(D,)`.
    pub gamma: Param,
    /// Shift β, shape `(D,)`.
    pub beta: Param,
    dim: usize,
    cache: Option<LnCache>,
}

#[derive(Debug, Clone)]
struct LnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>, // one per normalisation row
}

impl LayerNorm {
    /// New layer normalising vectors of length `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::from_vec(&[dim], vec![1.0; dim])),
            beta: Param::new(Tensor::zeros(&[dim])),
            dim,
            cache: None,
        }
    }

    /// Shared normalisation: `y`, plus `(x̂, inv_std per row)` when
    /// `keep_cache` (training needs them for backward; serving skips the
    /// input-sized x̂ allocation). Identical per-element arithmetic either
    /// way, so both paths produce the same bits.
    fn normalise(&self, x: &Tensor, keep_cache: bool) -> (Tensor, Option<(Tensor, Vec<f32>)>) {
        let d = *x.shape().last().expect("non-scalar input");
        assert_eq!(d, self.dim, "last-dim mismatch");
        let rows = x.numel() / d;
        let mut y = Tensor::zeros(x.shape());
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();
        if !keep_cache {
            for r in 0..rows {
                let xs = &x.data()[r * d..(r + 1) * d];
                let mean: f32 = xs.iter().sum::<f32>() / d as f32;
                let var: f32 = xs.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                let inv_std = 1.0 / (var + EPS).sqrt();
                let yb = &mut y.data_mut()[r * d..(r + 1) * d];
                for i in 0..d {
                    let h = (xs[i] - mean) * inv_std;
                    yb[i] = gamma[i] * h + beta[i];
                }
            }
            return (y, None);
        }
        let mut x_hat = Tensor::zeros(x.shape());
        let mut inv_stds = Vec::with_capacity(rows);
        for r in 0..rows {
            let xs = &x.data()[r * d..(r + 1) * d];
            let mean: f32 = xs.iter().sum::<f32>() / d as f32;
            let var: f32 = xs.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + EPS).sqrt();
            inv_stds.push(inv_std);
            let hb = &mut x_hat.data_mut()[r * d..(r + 1) * d];
            for (h, &v) in hb.iter_mut().zip(xs) {
                *h = (v - mean) * inv_std;
            }
            let yb = &mut y.data_mut()[r * d..(r + 1) * d];
            for i in 0..d {
                yb[i] = gamma[i] * x_hat.data()[r * d + i] + beta[i];
            }
        }
        (y, Some((x_hat, inv_stds)))
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (y, cache) = self.normalise(x, train);
        if train {
            let (x_hat, inv_std) = cache.expect("requested cache");
            self.cache = Some(LnCache { x_hat, inv_std });
        }
        y
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        self.normalise(x, false).0
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward without forward(train)");
        let d = self.dim;
        let rows = grad_out.numel() / d;
        let gamma = self.gamma.value.data().to_vec();
        let mut gx = Tensor::zeros(grad_out.shape());
        for r in 0..rows {
            let g_row = &grad_out.data()[r * d..(r + 1) * d];
            let h_row = &cache.x_hat.data()[r * d..(r + 1) * d];
            // Param grads.
            for i in 0..d {
                self.gamma.grad.data_mut()[i] += g_row[i] * h_row[i];
                self.beta.grad.data_mut()[i] += g_row[i];
            }
            // dx for this row.
            let gg: Vec<f32> = (0..d).map(|i| g_row[i] * gamma[i]).collect();
            let sum_gg: f32 = gg.iter().sum();
            let sum_ggh: f32 = gg.iter().zip(h_row).map(|(&a, &h)| a * h).sum();
            let inv_std = cache.inv_std[r];
            let o_row = &mut gx.data_mut()[r * d..(r + 1) * d];
            for i in 0..d {
                o_row[i] = inv_std / d as f32 * (d as f32 * gg[i] - sum_gg - h_row[i] * sum_ggh);
            }
        }
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn batchnorm_normalises_in_train_mode() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(
            &[2, 2, 4],
            vec![
                1., 2., 3., 4., 10., 20., 30., 40., // batch 0: ch0, ch1
                5., 6., 7., 8., 50., 60., 70., 80., // batch 1
            ],
        );
        let y = bn.forward(&x, true);
        // Channel 0 values across N·L should have ~0 mean, ~1 std.
        let ch0: Vec<f32> = (0..2).flat_map(|n| y.batch(n)[0..4].to_vec()).collect();
        let mean: f32 = ch0.iter().sum::<f32>() / 8.0;
        let var: f32 = ch0.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let x = Tensor::from_vec(&[1, 1, 4], vec![10., 10., 10., 10.]);
        // Warm up running stats with several train passes.
        for _ in 0..200 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        // running_mean → 10, running_var → 0 ⇒ output ≈ β = 0.
        assert!(y.data().iter().all(|&v| v.abs() < 0.2), "{:?}", y.data());
    }

    #[test]
    fn batchnorm_gradients() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(
            &[2, 2, 3],
            (0..12).map(|i| ((i * 5 % 7) as f32 - 3.0) * 0.5).collect(),
        );
        check_layer_gradients(&mut bn, &x, 1e-2, 3e-2);
    }

    #[test]
    fn layernorm_normalises_each_row() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_vec(&[2, 4], vec![1., 2., 3., 4., -10., 0., 10., 20.]);
        let y = ln.forward(&x, false);
        for r in 0..2 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean={mean}");
        }
    }

    #[test]
    fn layernorm_gradients() {
        let mut ln = LayerNorm::new(5);
        let x = Tensor::from_vec(
            &[3, 5],
            (0..15).map(|i| ((i * 3 % 11) as f32 - 5.0) * 0.4).collect(),
        );
        check_layer_gradients(&mut ln, &x, 1e-2, 3e-2);
    }

    #[test]
    fn layernorm_works_on_rank3() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_vec(&[2, 3, 4], (0..24).map(|i| i as f32 * 0.1).collect());
        let y = ln.forward(&x, false);
        assert_eq!(y.shape(), &[2, 3, 4]);
    }
}
