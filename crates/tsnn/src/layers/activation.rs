//! Elementwise activations.

use crate::param::{Layer, Param};
use crate::tensor::Tensor;

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// New ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.infer(x);
        }
        let mut y = x.clone();
        let mask: Vec<bool> = x.data().iter().map(|&v| v > 0.0).collect();
        for (v, &keep) in y.data_mut().iter_mut().zip(&mask) {
            if !keep {
                *v = 0.0;
            }
        }
        self.mask = Some(mask);
        y
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        for v in y.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("backward without forward(train)");
        let mut g = grad_out.clone();
        for (v, keep) in g.data_mut().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }
}

/// Gaussian error linear unit (tanh approximation, as used by transformer
/// feed-forward blocks).
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    cached_input: Option<Tensor>,
}

impl Gelu {
    /// New GELU.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn value(x: f32) -> f32 {
        const C: f32 = 0.797_884_6; // √(2/π)
        0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
    }

    #[inline]
    fn derivative(x: f32) -> f32 {
        const C: f32 = 0.797_884_6;
        let u = C * (x + 0.044715 * x * x * x);
        let t = u.tanh();
        let sech2 = 1.0 - t * t;
        0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
    }
}

impl Layer for Gelu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(x.clone());
        }
        self.infer(x)
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        for v in y.data_mut() {
            *v = Self::value(*v);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward without forward(train)");
        let mut g = grad_out.clone();
        for (gv, &xv) in g.data_mut().iter_mut().zip(x.data()) {
            *gv *= Self::derivative(xv);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = r.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_gradients() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[6], vec![-1.0, 0.5, 2.0, -3.0, 1.0, -0.2]);
        check_layer_gradients(&mut r, &x, 1e-3, 1e-2);
    }

    #[test]
    fn gelu_known_values() {
        // GELU(0) = 0, GELU(large) ≈ identity, GELU(-large) ≈ 0.
        assert!(Gelu::value(0.0).abs() < 1e-6);
        assert!((Gelu::value(10.0) - 10.0).abs() < 1e-3);
        assert!(Gelu::value(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_gradients() {
        let mut g = Gelu::new();
        let x = Tensor::from_vec(&[5], vec![-2.0, -0.5, 0.0, 0.5, 2.0]);
        check_layer_gradients(&mut g, &x, 1e-3, 2e-2);
    }

    #[test]
    fn activations_have_no_params() {
        assert_eq!(Relu::new().param_count(), 0);
        assert_eq!(Gelu::new().param_count(), 0);
    }
}
