//! Pooling layers.

use crate::param::{Layer, Param};
use crate::tensor::Tensor;

/// Max pooling on `(N, C, L) → (N, C, L/k)` (non-overlapping, floor).
#[derive(Debug, Clone)]
pub struct MaxPool1d {
    kernel: usize,
    argmax: Option<Vec<usize>>,
    in_shape: Option<Vec<usize>>,
}

impl MaxPool1d {
    /// New pool of width `kernel`.
    ///
    /// # Panics
    /// Panics if `kernel == 0`.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        Self {
            kernel,
            argmax: None,
            in_shape: None,
        }
    }
}

impl Layer for MaxPool1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "MaxPool1d expects (N, C, L)");
        let (n, c, l) = (x.dim(0), x.dim(1), x.dim(2));
        let lo = l / self.kernel;
        assert!(lo > 0, "sequence shorter than pooling kernel");
        let mut y = Tensor::zeros(&[n, c, lo]);
        let mut argmax = vec![0usize; n * c * lo];
        for ni in 0..n {
            let xb = x.batch(ni);
            let yb = y.batch_mut(ni);
            for ci in 0..c {
                let x_row = &xb[ci * l..(ci + 1) * l];
                let y_row = &mut yb[ci * lo..(ci + 1) * lo];
                for (t, yv) in y_row.iter_mut().enumerate() {
                    let base = t * self.kernel;
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = base;
                    for (i, &v) in x_row[base..base + self.kernel].iter().enumerate() {
                        if v > best {
                            best = v;
                            best_i = base + i;
                        }
                    }
                    *yv = best;
                    argmax[(ni * c + ci) * lo + t] = best_i;
                }
            }
        }
        if train {
            self.argmax = Some(argmax);
            self.in_shape = Some(x.shape().to_vec());
        }
        y
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 3, "MaxPool1d expects (N, C, L)");
        let (n, c, l) = (x.dim(0), x.dim(1), x.dim(2));
        let lo = l / self.kernel;
        assert!(lo > 0, "sequence shorter than pooling kernel");
        let mut y = Tensor::zeros(&[n, c, lo]);
        for ni in 0..n {
            let xb = x.batch(ni);
            let yb = y.batch_mut(ni);
            for ci in 0..c {
                let x_row = &xb[ci * l..(ci + 1) * l];
                let y_row = &mut yb[ci * lo..(ci + 1) * lo];
                for (t, yv) in y_row.iter_mut().enumerate() {
                    let base = t * self.kernel;
                    let mut best = f32::NEG_INFINITY;
                    for &v in &x_row[base..base + self.kernel] {
                        if v > best {
                            best = v;
                        }
                    }
                    *yv = best;
                }
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self.argmax.take().expect("backward without forward(train)");
        let in_shape = self
            .in_shape
            .take()
            .expect("backward without forward(train)");
        let (n, c, lo) = (grad_out.dim(0), grad_out.dim(1), grad_out.dim(2));
        let l = in_shape[2];
        let mut gx = Tensor::zeros(&in_shape);
        for ni in 0..n {
            let gb = grad_out.batch(ni);
            let ob = gx.batch_mut(ni);
            for ci in 0..c {
                for t in 0..lo {
                    let src = argmax[(ni * c + ci) * lo + t];
                    ob[ci * l + src] += gb[ci * lo + t];
                }
            }
        }
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }
}

/// Global average pooling `(N, C, L) → (N, C)`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool1d {
    in_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool1d {
    /// New pool.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.in_shape = Some(x.shape().to_vec());
        }
        self.infer(x)
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 3, "GlobalAvgPool1d expects (N, C, L)");
        let (n, c, l) = (x.dim(0), x.dim(1), x.dim(2));
        let mut y = Tensor::zeros(&[n, c]);
        for ni in 0..n {
            let xb = x.batch(ni);
            let y_row = y.row_mut(ni);
            for ci in 0..c {
                y_row[ci] = xb[ci * l..(ci + 1) * l].iter().sum::<f32>() / l as f32;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let in_shape = self
            .in_shape
            .take()
            .expect("backward without forward(train)");
        let (n, c, l) = (in_shape[0], in_shape[1], in_shape[2]);
        let mut gx = Tensor::zeros(&in_shape);
        for ni in 0..n {
            let g_row = grad_out.row(ni);
            let ob = gx.batch_mut(ni);
            for ci in 0..c {
                let g = g_row[ci] / l as f32;
                for v in &mut ob[ci * l..(ci + 1) * l] {
                    *v = g;
                }
            }
        }
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn maxpool_picks_maxima() {
        let mut p = MaxPool1d::new(2);
        let x = Tensor::from_vec(&[1, 1, 6], vec![1., 3., 2., 2., 5., 4.]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[3., 2., 5.]);
    }

    #[test]
    fn maxpool_floor_division() {
        let mut p = MaxPool1d::new(4);
        let x = Tensor::from_vec(&[1, 1, 10], (0..10).map(|i| i as f32).collect());
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2]); // last 2 points dropped
        assert_eq!(y.data(), &[3., 7.]);
    }

    #[test]
    fn maxpool_gradients() {
        let mut p = MaxPool1d::new(2);
        // Distinct values so argmax is stable under ±eps perturbations.
        let x = Tensor::from_vec(&[2, 2, 4], (0..16).map(|i| (i * 13 % 17) as f32).collect());
        check_layer_gradients(&mut p, &x, 1e-3, 1e-2);
    }

    #[test]
    fn gap_averages() {
        let mut p = GlobalAvgPool1d::new();
        let x = Tensor::from_vec(&[1, 2, 4], vec![1., 2., 3., 4., 10., 10., 10., 10.]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    fn gap_gradients() {
        let mut p = GlobalAvgPool1d::new();
        let x = Tensor::from_vec(&[2, 3, 4], (0..24).map(|i| i as f32 * 0.1).collect());
        check_layer_gradients(&mut p, &x, 1e-2, 1e-2);
    }
}
