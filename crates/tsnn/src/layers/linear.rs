//! Fully connected layer.

use crate::init::kaiming_uniform;
use crate::param::{Layer, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// `y = x W + b` on `(N, in) → (N, out)`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weights, shape `(in, out)`.
    pub weight: Param,
    /// Bias, shape `(out,)`.
    pub bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// New layer with Kaiming-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Self {
            weight: Param::new(kaiming_uniform(
                &[in_features, out_features],
                in_features,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dim(0)
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dim(1)
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(x.clone());
        }
        self.infer(x)
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Linear expects (N, in)");
        assert_eq!(x.dim(1), self.in_features(), "feature mismatch");
        let mut y = x.matmul(&self.weight.value);
        let out = self.out_features();
        let bias = self.bias.value.data();
        for i in 0..y.dim(0) {
            let row = &mut y.data_mut()[i * out..(i + 1) * out];
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward without forward(train)");
        // dW += xᵀ · g
        let dw = x.t_matmul(grad_out);
        self.weight.grad.add_assign(&dw);
        // db += column sums of g
        let out = self.out_features();
        for i in 0..grad_out.dim(0) {
            let row = grad_out.row(i);
            for (b, &g) in self.bias.grad.data_mut().iter_mut().zip(row) {
                *b += g;
            }
        }
        let _ = out;
        // dx = g · Wᵀ
        grad_out.matmul_t(&self.weight.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        l.bias.value.data_mut().copy_from_slice(&[1.0, -1.0]);
        let x = Tensor::zeros(&[4, 3]);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), &[4, 2]);
        assert_eq!(y.row(2), &[1.0, -1.0]); // zero input → bias
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = Tensor::from_vec(&[2, 4], (0..8).map(|i| 0.1 * i as f32 - 0.3).collect());
        check_layer_gradients(&mut l, &x, 1e-2, 2e-2);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = Linear::new(5, 7, &mut rng);
        assert_eq!(l.param_count(), 5 * 7 + 7);
    }
}
