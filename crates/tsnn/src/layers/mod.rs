//! Neural-network layers with hand-written backward passes.

mod activation;
mod attention;
mod conv1d;
mod dropout;
mod linear;
mod lstm;
mod norm;
mod pool;

pub use activation::{Gelu, Relu};
pub use attention::MultiHeadSelfAttention;
pub use conv1d::Conv1d;
pub use dropout::Dropout;
pub use linear::Linear;
pub use lstm::Lstm;
pub use norm::{BatchNorm1d, LayerNorm};
pub use pool::{GlobalAvgPool1d, MaxPool1d};

pub use crate::param::Layer;
