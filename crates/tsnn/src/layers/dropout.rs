//! Inverted dropout.

use crate::param::{Layer, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: active only in training mode, identity at inference.
///
/// Carries its own seeded RNG so training runs are reproducible.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// New dropout with drop probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        Self {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            if train {
                self.mask = Some(vec![1.0; x.numel()]);
            }
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..x.numel())
            .map(|_| {
                if self.rng.random::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mut y = x.clone();
        for (v, &m) in y.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("backward without forward(train)");
        let mut g = grad_out.clone();
        for (v, m) in g.data_mut().iter_mut().zip(mask) {
            *v *= m;
        }
        g
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        x.clone()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(&[4], vec![1., 2., 3., 4.]);
        assert_eq!(d.forward(&x, false).data(), x.data());
    }

    #[test]
    fn training_scales_survivors() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::from_vec(&[1000], vec![1.0; 1000]);
        let y = d.forward(&x, true);
        let kept = y.data().iter().filter(|&&v| v > 0.0).count();
        // Survivors scaled to 1/keep = 2.0.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        assert!((kept as f64 / 1000.0 - 0.5).abs() < 0.08, "kept={kept}");
        // Expectation preserved.
        let mean: f32 = y.data().iter().sum::<f32>() / 1000.0;
        assert!((mean - 1.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::from_vec(&[100], vec![1.0; 100]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::from_vec(&[100], vec![1.0; 100]));
        // Gradient zero exactly where output is zero.
        for (gy, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(*gy == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_in_training() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::from_vec(&[4], vec![1., 2., 3., 4.]);
        assert_eq!(d.forward(&x, true).data(), x.data());
    }
}
