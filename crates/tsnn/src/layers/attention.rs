//! Multi-head self-attention.

use crate::layers::Linear;
use crate::param::{Layer, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Multi-head self-attention on `(N, T, D) → (N, T, D)`.
///
/// Q/K/V/output projections are [`Linear`] layers applied to the flattened
/// `(N·T, D)` view; the attention core (scaled dot-product + row softmax) is
/// computed per batch element and head with an explicit backward pass.
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    n: usize,
    t: usize,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax attention weights, one `(T, T)` matrix per `(batch, head)`.
    attn: Vec<Vec<f32>>,
}

impl MultiHeadSelfAttention {
    /// New attention block with `heads` heads over model width `dim`.
    ///
    /// # Panics
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim must divide by heads"
        );
        Self {
            wq: Linear::new(dim, dim, rng),
            wk: Linear::new(dim, dim, rng),
            wv: Linear::new(dim, dim, rng),
            wo: Linear::new(dim, dim, rng),
            heads,
            dim,
            cache: None,
        }
    }

    /// Head width `D / heads`.
    fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// The attention core shared by training and inference: scaled
    /// dot-product + row softmax + value mixing, per batch element and head.
    /// Returns the concatenated head outputs and (when `keep_attn`) the
    /// softmax matrices the backward pass needs.
    fn attention_core(
        &self,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        n: usize,
        t: usize,
        keep_attn: bool,
    ) -> (Tensor, Vec<Vec<f32>>) {
        let d = self.dim;
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let mut o = Tensor::zeros(&[n * t, d]);
        let mut attn_cache = Vec::with_capacity(if keep_attn { n * self.heads } else { 0 });
        for ni in 0..n {
            for h in 0..self.heads {
                let qa = head_block(q, ni, t, d, dh, h);
                let ka = head_block(k, ni, t, d, dh, h);
                let va = head_block(v, ni, t, d, dh, h);
                // S = Q Kᵀ · scale, row softmax → A.
                let mut attn = vec![0.0f32; t * t];
                for i in 0..t {
                    let qi = &qa[i * dh..(i + 1) * dh];
                    let row = &mut attn[i * t..(i + 1) * t];
                    let mut max = f32::NEG_INFINITY;
                    for (j, rv) in row.iter_mut().enumerate() {
                        let kj = &ka[j * dh..(j + 1) * dh];
                        let s: f32 = qi.iter().zip(kj).map(|(&a, &b)| a * b).sum();
                        *rv = s * scale;
                        if *rv > max {
                            max = *rv;
                        }
                    }
                    let mut sum = 0.0f32;
                    for rv in row.iter_mut() {
                        *rv = (*rv - max).exp();
                        sum += *rv;
                    }
                    for rv in row.iter_mut() {
                        *rv /= sum;
                    }
                }
                // O = A · V  → write into head slice of o.
                let mut oa = vec![0.0f32; t * dh];
                for i in 0..t {
                    let a_row = &attn[i * t..(i + 1) * t];
                    let o_row = &mut oa[i * dh..(i + 1) * dh];
                    for (j, &a) in a_row.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let v_row = &va[j * dh..(j + 1) * dh];
                        for (ov, &vv) in o_row.iter_mut().zip(v_row) {
                            *ov += a * vv;
                        }
                    }
                }
                add_head_block(&mut o, &oa, ni, t, d, dh, h);
                if keep_attn {
                    attn_cache.push(attn);
                }
            }
        }
        (o, attn_cache)
    }
}

/// Copies head `h`'s `(T, dh)` block out of a flat `(N·T, D)` tensor.
fn head_block(flat: &Tensor, n: usize, t: usize, dim: usize, dh: usize, h: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(t * dh);
    for ti in 0..t {
        let row = &flat.data()[(n * t + ti) * dim..(n * t + ti) * dim + dim];
        out.extend_from_slice(&row[h * dh..(h + 1) * dh]);
    }
    out
}

/// Adds a `(T, dh)` head block back into a flat `(N·T, D)` gradient tensor.
fn add_head_block(
    flat: &mut Tensor,
    block: &[f32],
    n: usize,
    t: usize,
    dim: usize,
    dh: usize,
    h: usize,
) {
    for ti in 0..t {
        let dst = &mut flat.data_mut()[(n * t + ti) * dim..(n * t + ti) * dim + dim];
        for (d, &s) in dst[h * dh..(h + 1) * dh]
            .iter_mut()
            .zip(&block[ti * dh..(ti + 1) * dh])
        {
            *d += s;
        }
    }
}

impl Layer for MultiHeadSelfAttention {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "attention expects (N, T, D)");
        let (n, t, d) = (x.dim(0), x.dim(1), x.dim(2));
        assert_eq!(d, self.dim, "model width mismatch");

        let flat = x.clone().reshape(&[n * t, d]);
        let q = self.wq.forward(&flat, train);
        let k = self.wk.forward(&flat, train);
        let v = self.wv.forward(&flat, train);

        let (o, attn_cache) = self.attention_core(&q, &k, &v, n, t, train);

        let y = self.wo.forward(&o, train);
        if train {
            self.cache = Some(AttnCache {
                n,
                t,
                q,
                k,
                v,
                attn: attn_cache,
            });
        }
        y.reshape(&[n, t, d])
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 3, "attention expects (N, T, D)");
        let (n, t, d) = (x.dim(0), x.dim(1), x.dim(2));
        assert_eq!(d, self.dim, "model width mismatch");
        let flat = x.clone().reshape(&[n * t, d]);
        let q = self.wq.infer(&flat);
        let k = self.wk.infer(&flat);
        let v = self.wv.infer(&flat);
        let (o, _) = self.attention_core(&q, &k, &v, n, t, false);
        self.wo.infer(&o).reshape(&[n, t, d])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward without forward(train)");
        let (n, t, d) = (cache.n, cache.t, self.dim);
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();

        let g_flat = grad_out.clone().reshape(&[n * t, d]);
        let go = self.wo.backward(&g_flat); // grad wrt concatenated heads

        let mut gq = Tensor::zeros(&[n * t, d]);
        let mut gk = Tensor::zeros(&[n * t, d]);
        let mut gv = Tensor::zeros(&[n * t, d]);

        for ni in 0..n {
            for h in 0..self.heads {
                let attn = &cache.attn[ni * self.heads + h];
                let qa = head_block(&cache.q, ni, t, d, dh, h);
                let ka = head_block(&cache.k, ni, t, d, dh, h);
                let va = head_block(&cache.v, ni, t, d, dh, h);
                let goa = head_block(&go, ni, t, d, dh, h);

                // dV = Aᵀ · dO ; dA = dO · Vᵀ
                let mut dva = vec![0.0f32; t * dh];
                let mut da = vec![0.0f32; t * t];
                for i in 0..t {
                    let a_row = &attn[i * t..(i + 1) * t];
                    let go_row = &goa[i * dh..(i + 1) * dh];
                    for j in 0..t {
                        let a = a_row[j];
                        let v_row = &va[j * dh..(j + 1) * dh];
                        let mut dot = 0.0f32;
                        for (&g, &vv) in go_row.iter().zip(v_row) {
                            dot += g * vv;
                        }
                        da[i * t + j] = dot;
                        if a != 0.0 {
                            let dv_row = &mut dva[j * dh..(j + 1) * dh];
                            for (dv, &g) in dv_row.iter_mut().zip(go_row) {
                                *dv += a * g;
                            }
                        }
                    }
                }
                // Softmax backward: dS = A ⊙ (dA − rowsum(dA ⊙ A)).
                let mut ds = vec![0.0f32; t * t];
                for i in 0..t {
                    let a_row = &attn[i * t..(i + 1) * t];
                    let da_row = &da[i * t..(i + 1) * t];
                    let dot: f32 = a_row.iter().zip(da_row).map(|(&a, &g)| a * g).sum();
                    let ds_row = &mut ds[i * t..(i + 1) * t];
                    for j in 0..t {
                        ds_row[j] = a_row[j] * (da_row[j] - dot);
                    }
                }
                // dQ = dS · K · scale ; dK = dSᵀ · Q · scale.
                let mut dqa = vec![0.0f32; t * dh];
                let mut dka = vec![0.0f32; t * dh];
                for i in 0..t {
                    let ds_row = &ds[i * t..(i + 1) * t];
                    let dq_row = &mut dqa[i * dh..(i + 1) * dh];
                    for j in 0..t {
                        let s = ds_row[j] * scale;
                        if s == 0.0 {
                            continue;
                        }
                        let k_row = &ka[j * dh..(j + 1) * dh];
                        for (dq, &kv) in dq_row.iter_mut().zip(k_row) {
                            *dq += s * kv;
                        }
                        let dk_row = &mut dka[j * dh..(j + 1) * dh];
                        let q_row = &qa[i * dh..(i + 1) * dh];
                        for (dk, &qv) in dk_row.iter_mut().zip(q_row) {
                            *dk += s * qv;
                        }
                    }
                }
                add_head_block(&mut gq, &dqa, ni, t, d, dh, h);
                add_head_block(&mut gk, &dka, ni, t, d, dh, h);
                add_head_block(&mut gv, &dva, ni, t, d, dh, h);
            }
        }

        let mut gx = self.wq.backward(&gq);
        gx.add_assign(&self.wk.backward(&gk));
        gx.add_assign(&self.wv.backward(&gv));
        gx.reshape(&[n, t, d])
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.wq.params_mut();
        params.extend(self.wk.params_mut());
        params.extend(self.wv.params_mut());
        params.extend(self.wo.params_mut());
        params
    }

    fn params(&self) -> Vec<&Param> {
        let mut params = self.wq.params();
        params.extend(self.wk.params());
        params.extend(self.wv.params());
        params.extend(self.wo.params());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut attn = MultiHeadSelfAttention::new(8, 2, &mut rng);
        let x = Tensor::zeros(&[3, 5, 8]);
        let y = attn.forward(&x, false);
        assert_eq!(y.shape(), &[3, 5, 8]);
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut attn = MultiHeadSelfAttention::new(4, 1, &mut rng);
        let x = Tensor::from_vec(&[1, 3, 4], (0..12).map(|i| i as f32 * 0.1).collect());
        let _ = attn.forward(&x, true);
        let cache = attn.cache.as_ref().unwrap();
        for a in &cache.attn {
            for i in 0..3 {
                let sum: f32 = a[i * 3..(i + 1) * 3].iter().sum();
                assert!((sum - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut attn = MultiHeadSelfAttention::new(4, 2, &mut rng);
        let x = Tensor::from_vec(
            &[2, 3, 4],
            (0..24)
                .map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.15)
                .collect(),
        );
        check_layer_gradients(&mut attn, &x, 1e-2, 3e-2);
    }

    #[test]
    fn param_count_is_four_projections() {
        let mut rng = StdRng::seed_from_u64(3);
        let attn = MultiHeadSelfAttention::new(8, 2, &mut rng);
        assert_eq!(attn.param_count(), 4 * (8 * 8 + 8));
    }

    #[test]
    #[should_panic(expected = "dim must divide")]
    fn indivisible_heads_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = MultiHeadSelfAttention::new(6, 4, &mut rng);
    }
}
