//! 1-D convolution with "same" padding.

use crate::init::kaiming_uniform;
use crate::param::{Layer, Param};
use crate::simd;
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// 1-D convolution on `(N, C_in, L) → (N, C_out, L)` with stride 1 and
/// zero "same" padding (`pad = k / 2`; odd kernel sizes keep the length).
///
/// The inner loops run over the contiguous time axis so LLVM can vectorise
/// them — this layer dominates the wall-clock of selector training.
#[derive(Debug, Clone)]
pub struct Conv1d {
    /// Weights, shape `(C_out, C_in, K)`.
    pub weight: Param,
    /// Bias, shape `(C_out,)`.
    pub bias: Param,
    kernel: usize,
    in_channels: usize,
    out_channels: usize,
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// New layer with Kaiming-uniform weights (fan-in = `C_in · K`).
    ///
    /// # Panics
    /// Panics if `kernel` is even (same-padding needs odd kernels).
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, rng: &mut StdRng) -> Self {
        assert!(
            kernel % 2 == 1,
            "Conv1d requires odd kernel size, got {kernel}"
        );
        let fan_in = in_channels * kernel;
        Self {
            weight: Param::new(kaiming_uniform(
                &[out_channels, in_channels, kernel],
                fan_in,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            kernel,
            in_channels,
            out_channels,
            cached_input: None,
        }
    }

    /// Output channel count.
    #[allow(dead_code)]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(x.clone());
        }
        self.infer(x)
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 3, "Conv1d expects (N, C, L)");
        assert_eq!(x.dim(1), self.in_channels, "channel mismatch");
        let (n, l) = (x.dim(0), x.dim(2));
        let pad = self.kernel / 2;
        let mut y = Tensor::zeros(&[n, self.out_channels, l]);
        let w = self.weight.value.data();
        let b = self.bias.value.data();
        let (c_in, c_out, kernel) = (self.in_channels, self.out_channels, self.kernel);
        // Batch elements are independent: one pool task per element, each
        // writing its own (C_out · L) output slab. Small convolutions stay
        // serial — the work gate keeps per-minibatch 1×1 convs off the pool.
        let x_data = x.data();
        let in_stride = c_in * l;
        let work = n * c_out * c_in * kernel * l;
        // Hoisted out of the tap loops: the old tap-major axpy formulation
        // paid this (SeqCst) policy load, a length assert and a splat per
        // (co, ci, k) tap — ~1.5k times per 64-sample window through the
        // ConvNet encoder. The policy is stable within one infer call.
        let use_lanes = simd::simd_enabled();
        // Dense non-zero tap lists, one per output channel, shared by every
        // batch element: the `w == 0.0` skip and the weight bounds checks
        // move here, so the per-block accumulate loop in `conv_row` is
        // branch-free straight-line code LLVM keeps in lane registers.
        // Taps are pushed in ascending (ci, k) order — the canonical
        // accumulation chain.
        let taps: Vec<Vec<Tap>> = (0..c_out)
            .map(|co| {
                let mut v = Vec::with_capacity(c_in * kernel);
                for ci in 0..c_in {
                    for k in 0..kernel {
                        let wv = w[(co * c_in + ci) * kernel + k];
                        if wv != 0.0 {
                            v.push(Tap {
                                base: ci * l + k,
                                k,
                                wv,
                            });
                        }
                    }
                }
                v
            })
            .collect();
        tspar::par_chunks_mut_gated(y.data_mut(), c_out * l, work, |ni, yb| {
            let xb = &x_data[ni * in_stride..(ni + 1) * in_stride];
            for co in 0..c_out {
                let y_row = &mut yb[co * l..(co + 1) * l];
                conv_row(y_row, xb, &taps[co], b[co], pad, l, use_lanes);
            }
        });
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward without forward(train)");
        let (n, l) = (x.dim(0), x.dim(2));
        assert_eq!(grad_out.shape(), &[n, self.out_channels, l]);
        let pad = self.kernel / 2;
        let mut gx = Tensor::zeros(&[n, self.in_channels, l]);
        let w = self.weight.value.data().to_vec();
        let gw = self.weight.grad.data_mut();
        for ni in 0..n {
            let xb = x.batch(ni);
            let gb = grad_out.batch(ni);
            for co in 0..self.out_channels {
                let g_row = &gb[co * l..(co + 1) * l];
                // Bias gradient: sum over time (striped canonical order).
                self.bias.grad.data_mut()[co] += simd::sum(g_row);
                for ci in 0..self.in_channels {
                    let x_row = &xb[ci * l..(ci + 1) * l];
                    let w_base = (co * self.in_channels + ci) * self.kernel;
                    for k in 0..self.kernel {
                        let (t0, t1) = valid_range(l, k, pad);
                        if t0 >= t1 {
                            continue;
                        }
                        let off = k as isize - pad as isize;
                        let xs = &x_row[(t0 as isize + off) as usize..(t1 as isize + off) as usize];
                        // dW[k] += Σ_t g[t] · x[t+k-pad]
                        gw[w_base + k] += simd::dot(&g_row[t0..t1], xs);
                    }
                }
            }
        }
        // dX: gx[ci][t+k-pad] += w[co][ci][k] * g[co][t]. Unlike the weight
        // gradient above (accumulated serially across the batch to keep one
        // fixed summation order), each input-gradient slab belongs to one
        // batch element, so the batch loop parallelises cleanly.
        let (c_in, c_out, kernel) = (self.in_channels, self.out_channels, self.kernel);
        let g_data = grad_out.data();
        let out_stride = c_out * l;
        let work = n * c_out * c_in * kernel * l;
        tspar::par_chunks_mut_gated(gx.data_mut(), c_in * l, work, |ni, gxb| {
            let gb = &g_data[ni * out_stride..(ni + 1) * out_stride];
            for co in 0..c_out {
                let g_row = &gb[co * l..(co + 1) * l];
                for ci in 0..c_in {
                    let gx_row = &mut gxb[ci * l..(ci + 1) * l];
                    let w_base = (co * c_in + ci) * kernel;
                    for k in 0..kernel {
                        let wv = w[w_base + k];
                        if wv == 0.0 {
                            continue;
                        }
                        let (t0, t1) = valid_range(l, k, pad);
                        let off = k as isize - pad as isize;
                        let gxs =
                            &mut gx_row[(t0 as isize + off) as usize..(t1 as isize + off) as usize];
                        simd::axpy(gxs, wv, &g_row[t0..t1]);
                    }
                }
            }
        });
        gx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }
}

/// One non-zero convolution tap: weight plus its flat input offset
/// (`base = ci·l + k`, so a lane block at `tb` reads
/// `xb[base + tb − pad ..]`).
#[derive(Clone, Copy)]
struct Tap {
    base: usize,
    k: usize,
    wv: f32,
}

/// One output row `y[t] = bias + Σ_{taps} w·x[t+k−pad]`, accumulated in
/// registers: each lane block (or scalar element) folds **all** taps into
/// one accumulator and stores once, instead of the old tap-major
/// formulation that re-read and re-wrote the output row once per tap
/// (`c_in · kernel` passes of y-row memory traffic plus per-tap axpy call
/// overhead).
///
/// # Determinism
///
/// Per output element the arithmetic chain is *identical* to the old
/// code: start from the bias, then add `w · x` for each `(ci, k)` tap in
/// ascending `(ci, k)` order (the tap-list build order), skipping
/// `w == 0.0` taps and out-of-range reads. Both paths use a plain
/// (uncontracted) multiply-then-add per tap, so lane blocks, the
/// overlapped final block (which *recomputes* its leading elements with
/// the same chain — same bits), the scalar edges and the full scalar
/// fallback all produce byte-identical rows. The `w == 0.0` skip (applied
/// when the tap list is built) is load-bearing for that equivalence:
/// folding a zero tap in would turn `-0.0` outputs into `+0.0` and could
/// launder `inf`/`NaN` through `0.0 · x`.
fn conv_row(
    y_row: &mut [f32],
    xb: &[f32],
    taps: &[Tap],
    bias: f32,
    pad: usize,
    l: usize,
    use_lanes: bool,
) {
    // Every tap is in-range for t ∈ [pad, l − pad): the interior where
    // lane blocks need no boundary checks.
    let lo = pad.min(l);
    let hi = l.saturating_sub(pad).max(lo);
    const LANES: usize = simd::F32_LANES;
    if use_lanes && hi - lo >= LANES {
        let mut tb = lo;
        loop {
            // tb ≥ pad, so base + tb − pad ≥ 0; the block end stays within
            // the tap's input row: in-row index tb + k − pad ≤
            // (hi − LANES) + pad − pad + pad... bounded by l − LANES since
            // tb ≤ l − pad − LANES and k − pad ≤ pad.
            let shift = tb - pad;
            let mut acc = simd::F32x8::splat(bias);
            for tap in taps {
                let x0 = tap.base + shift;
                acc = acc + simd::F32x8::splat(tap.wv) * simd::F32x8::load(&xb[x0..x0 + LANES]);
            }
            acc.store(&mut y_row[tb..tb + LANES]);
            if tb + LANES >= hi {
                break;
            }
            // Step a full block, or overlap the final block back to end
            // exactly at `hi` — overlapped elements recompute the same
            // chain, so the double store is bitwise inert.
            tb = (tb + LANES).min(hi - LANES);
        }
        for t in (0..lo).chain(hi..l) {
            y_row[t] = conv_elem(xb, taps, bias, pad, l, t);
        }
    } else {
        for (t, yv) in y_row.iter_mut().enumerate() {
            *yv = conv_elem(xb, taps, bias, pad, l, t);
        }
    }
}

/// One output element, replaying the canonical tap chain (see
/// [`conv_row`]).
#[inline]
fn conv_elem(xb: &[f32], taps: &[Tap], bias: f32, pad: usize, l: usize, t: usize) -> f32 {
    let mut acc = bias;
    for tap in taps {
        let xi = t as isize + tap.k as isize - pad as isize;
        if xi < 0 || xi >= l as isize {
            continue;
        }
        // base − k + xi = ci·l + (t + k − pad): the tap's in-range read.
        acc += tap.wv * xb[tap.base - tap.k + xi as usize];
    }
    acc
}

/// Valid output range `[t0, t1)` such that `t + k - pad ∈ [0, l)`.
#[inline]
fn valid_range(l: usize, k: usize, pad: usize) -> (usize, usize) {
    let off = k as isize - pad as isize;
    let t0 = (-off).max(0) as usize;
    let t1 = ((l as isize - off).min(l as isize)).max(0) as usize;
    (t0, t1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 3, &mut rng);
        c.weight.value.data_mut().copy_from_slice(&[0.0, 1.0, 0.0]);
        c.bias.value.data_mut()[0] = 0.0;
        let x = Tensor::from_vec(&[1, 1, 5], vec![1., 2., 3., 4., 5.]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn shift_kernel_pads_with_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 3, &mut rng);
        // y[t] = x[t-1] (weight on k=0 reads offset -1).
        c.weight.value.data_mut().copy_from_slice(&[1.0, 0.0, 0.0]);
        c.bias.value.data_mut()[0] = 0.0;
        let x = Tensor::from_vec(&[1, 1, 4], vec![1., 2., 3., 4.]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), &[0., 1., 2., 3.]);
    }

    #[test]
    fn multi_channel_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Conv1d::new(3, 5, 7, &mut rng);
        let x = Tensor::zeros(&[2, 3, 16]);
        let y = c.forward(&x, false);
        assert_eq!(y.shape(), &[2, 5, 16]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = Conv1d::new(2, 3, 3, &mut rng);
        let x = Tensor::from_vec(
            &[2, 2, 6],
            (0..24).map(|i| ((i * 7 % 11) as f32 - 5.0) * 0.1).collect(),
        );
        check_layer_gradients(&mut c, &x, 1e-2, 2e-2);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = Conv1d::new(1, 1, 4, &mut rng);
    }

    #[test]
    fn forward_and_backward_bitwise_equal_across_simd_paths() {
        use crate::simd::{set_simd_policy, SimdPolicy};
        let run = || {
            let mut rng = StdRng::seed_from_u64(9);
            let mut c = Conv1d::new(3, 4, 5, &mut rng);
            let x = Tensor::from_vec(
                &[2, 3, 19], // odd length exercises the lane-remainder tails
                (0..114)
                    .map(|i| ((i * 13 % 29) as f32 - 14.0) * 0.07)
                    .collect(),
            );
            let y = c.forward(&x, true);
            let g = Tensor::from_vec(&[2, 4, 19], y.data().iter().map(|v| v * 0.5).collect());
            let gx = c.backward(&g);
            (
                y.data().to_vec(),
                gx.data().to_vec(),
                c.weight.grad.data().to_vec(),
                c.bias.grad.data().to_vec(),
            )
        };
        set_simd_policy(SimdPolicy::Lanes);
        let lanes = run();
        set_simd_policy(SimdPolicy::Scalar);
        let scalar = run();
        set_simd_policy(SimdPolicy::Auto);
        assert!(lanes == scalar, "Conv1d lane and scalar paths diverge");
    }

    /// The pre-register-blocking formulation: bias fill, then one axpy
    /// pass over the row per (ci, k) tap. Kept as the reference the
    /// blocked kernel must reproduce bitwise.
    fn infer_tap_major(c: &Conv1d, x: &Tensor) -> Tensor {
        let (n, l) = (x.dim(0), x.dim(2));
        let (c_in, c_out, kernel) = (c.in_channels, c.out_channels, c.kernel);
        let pad = kernel / 2;
        let mut y = Tensor::zeros(&[n, c_out, l]);
        let w = c.weight.value.data().to_vec();
        let b = c.bias.value.data().to_vec();
        let x_data = x.data().to_vec();
        let in_stride = c_in * l;
        let yd = y.data_mut();
        for ni in 0..n {
            let xb = &x_data[ni * in_stride..(ni + 1) * in_stride];
            let yb = &mut yd[ni * c_out * l..(ni + 1) * c_out * l];
            for co in 0..c_out {
                let y_row = &mut yb[co * l..(co + 1) * l];
                for v in y_row.iter_mut() {
                    *v = b[co];
                }
                for ci in 0..c_in {
                    let x_row = &xb[ci * l..(ci + 1) * l];
                    let w_base = (co * c_in + ci) * kernel;
                    for k in 0..kernel {
                        let wv = w[w_base + k];
                        if wv == 0.0 {
                            continue;
                        }
                        let (t0, t1) = valid_range(l, k, pad);
                        if t0 >= t1 {
                            // Rows shorter than the pad: the original code
                            // paths never saw these (encoder rows are ≥ 16);
                            // the guard mirrors `backward`'s.
                            continue;
                        }
                        let off = k as isize - pad as isize;
                        let xs = &x_row[(t0 as isize + off) as usize..(t1 as isize + off) as usize];
                        simd::axpy(&mut y_row[t0..t1], wv, xs);
                    }
                }
            }
        }
        y
    }

    #[test]
    fn register_blocked_matches_tap_major_bitwise() {
        use crate::simd::{set_simd_policy, SimdPolicy};
        let mut rng = StdRng::seed_from_u64(11);
        // Shapes spanning the ConvNet encoder stages (l = 64/32/16), a
        // sub-lane row, a kernel-1 conv, and a row shorter than the pad.
        let shapes: &[(usize, usize, usize, usize, usize)] = &[
            (2, 1, 8, 7, 64),
            (2, 8, 16, 5, 32),
            (2, 16, 16, 3, 16),
            (1, 2, 3, 3, 5),
            (1, 4, 4, 1, 32),
            (1, 2, 2, 7, 2),
        ];
        for &(n, cin, cout, k, l) in shapes {
            let mut c = Conv1d::new(cin, cout, k, &mut rng);
            // Exercise the w == 0.0 skip and non-finite propagation.
            c.weight.value.data_mut()[0] = 0.0;
            if cin * k > 2 {
                c.weight.value.data_mut()[2] = -0.0;
            }
            let mut xv: Vec<f32> = (0..n * cin * l)
                .map(|i| ((i * 13 % 31) as f32 - 15.0) * 0.11)
                .collect();
            xv[0] = f32::NAN;
            xv[n * cin * l - 1] = f32::INFINITY;
            let x = Tensor::from_vec(&[n, cin, l], xv);
            for policy in [SimdPolicy::Lanes, SimdPolicy::Scalar] {
                set_simd_policy(policy);
                let got = c.infer(&x);
                let want = infer_tap_major(&c, &x);
                assert!(
                    got.data()
                        .iter()
                        .zip(want.data())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "blocked conv diverged from tap-major at \
                     (n={n}, cin={cin}, cout={cout}, k={k}, l={l}, {policy:?})"
                );
            }
            set_simd_policy(SimdPolicy::Auto);
        }
    }

    #[test]
    fn bias_applied_everywhere() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut c = Conv1d::new(1, 2, 3, &mut rng);
        c.weight.value.zero_();
        c.bias.value.data_mut().copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::zeros(&[1, 1, 4]);
        let y = c.forward(&x, false);
        assert_eq!(y.batch(0), &[0.5, 0.5, 0.5, 0.5, -0.5, -0.5, -0.5, -0.5]);
    }
}
