//! Single-layer LSTM with full backpropagation through time.
//!
//! Used by the LSTM-AD detector: encode a window, predict the next value(s)
//! from the final hidden state.

use crate::init::xavier_uniform;
use crate::param::{Layer, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// LSTM over `(N, T, I) → (N, H)` (final hidden state).
///
/// Gate order in the stacked weight matrices is `[i, f, g, o]`.
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input weights, shape `(I, 4H)`.
    pub w_x: Param,
    /// Recurrent weights, shape `(H, 4H)`.
    pub w_h: Param,
    /// Bias, shape `(4H,)` (forget gate initialised to 1).
    pub bias: Param,
    input_dim: usize,
    hidden: usize,
    cache: Option<LstmCache>,
}

#[derive(Debug, Clone)]
struct LstmCache {
    x: Tensor,
    /// Per timestep: gates after nonlinearity `(N, 4H)`, cell `(N, H)`,
    /// hidden `(N, H)`, and tanh(c) `(N, H)`.
    gates: Vec<Vec<f32>>,
    cells: Vec<Vec<f32>>,
    hiddens: Vec<Vec<f32>>,
    tanh_c: Vec<Vec<f32>>,
}

impl Lstm {
    /// New LSTM with `hidden` units for `input_dim`-dimensional inputs.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut bias = Tensor::zeros(&[4 * hidden]);
        // Forget-gate bias 1.0: the standard trick for gradient flow.
        for v in &mut bias.data_mut()[hidden..2 * hidden] {
            *v = 1.0;
        }
        Self {
            w_x: Param::new(xavier_uniform(
                &[input_dim, 4 * hidden],
                input_dim,
                hidden,
                rng,
            )),
            w_h: Param::new(xavier_uniform(&[hidden, 4 * hidden], hidden, hidden, rng)),
            bias: Param::new(bias),
            input_dim,
            hidden,
            cache: None,
        }
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// The shared forward computation; returns the cache when `keep` is set.
    fn run_forward(&self, x: &Tensor, keep: bool) -> (Tensor, Option<LstmCache>) {
        assert_eq!(x.shape().len(), 3, "Lstm expects (N, T, I)");
        let (n, t, i_dim) = (x.dim(0), x.dim(1), x.dim(2));
        assert_eq!(i_dim, self.input_dim, "input width mismatch");
        let h = self.hidden;
        let h4 = 4 * h;
        let b = self.bias.value.data();

        // The input projection of *every* timestep is one (N·T, I) × (I, 4H)
        // product — hoist it onto the blocked GEMM path instead of
        // recomputing scalar dot products per step. Computed straight from
        // the borrowed input buffer; no reshape copy of `x`.
        let mut x_proj = Tensor::zeros(&[n * t, h4]);
        crate::gemm::gemm(
            n * t,
            h4,
            i_dim,
            x.data(),
            crate::gemm::Layout::Normal,
            self.w_x.value.data(),
            crate::gemm::Layout::Normal,
            x_proj.data_mut(),
        );

        // W_h is constant across the sequence: pack its panels once and run
        // every per-timestep recurrent product through the prepacked kernel
        // instead of re-packing inside each gemm call.
        let wh_packed =
            crate::gemm::PackedB::pack(h4, h, self.w_h.value.data(), crate::gemm::Layout::Normal);

        let mut h_prev = vec![0.0f32; n * h];
        let mut c_prev = vec![0.0f32; n * h];
        let mut rec = vec![0.0f32; n * h4];
        let mut gates_t = Vec::with_capacity(t);
        let mut cells_t = Vec::with_capacity(t);
        let mut hidden_t = Vec::with_capacity(t);
        let mut tanh_c_t = Vec::with_capacity(t);

        for ti in 0..t {
            // Recurrent contribution (N,H)·(H,4H) against the packed panels.
            crate::gemm::gemm_prepacked(
                n,
                &h_prev,
                crate::gemm::Layout::Normal,
                &wh_packed,
                &mut rec,
            );
            let mut pre = vec![0.0f32; n * h4];
            for ni in 0..n {
                let pre_row = &mut pre[ni * h4..(ni + 1) * h4];
                let xp_row = x_proj.row(ni * t + ti);
                let rec_row = &rec[ni * h4..(ni + 1) * h4];
                for (((p, &bv), &xp), &rv) in pre_row.iter_mut().zip(b).zip(xp_row).zip(rec_row) {
                    *p = bv + xp + rv;
                }
            }
            // Nonlinearities and state update.
            let mut gates = vec![0.0f32; n * 4 * h];
            let mut c_new = vec![0.0f32; n * h];
            let mut h_new = vec![0.0f32; n * h];
            let mut tc = vec![0.0f32; n * h];
            for ni in 0..n {
                for k in 0..h {
                    let base = ni * 4 * h;
                    let ig = sigmoid(pre[base + k]);
                    let fg = sigmoid(pre[base + h + k]);
                    let gg = pre[base + 2 * h + k].tanh();
                    let og = sigmoid(pre[base + 3 * h + k]);
                    gates[base + k] = ig;
                    gates[base + h + k] = fg;
                    gates[base + 2 * h + k] = gg;
                    gates[base + 3 * h + k] = og;
                    let c = fg * c_prev[ni * h + k] + ig * gg;
                    let tch = c.tanh();
                    c_new[ni * h + k] = c;
                    tc[ni * h + k] = tch;
                    h_new[ni * h + k] = og * tch;
                }
            }
            h_prev.copy_from_slice(&h_new);
            c_prev.copy_from_slice(&c_new);
            gates_t.push(gates);
            cells_t.push(c_new);
            hidden_t.push(h_new);
            tanh_c_t.push(tc);
        }

        let out = Tensor::from_vec(&[n, h], h_prev);
        let cache = keep.then(|| LstmCache {
            x: x.clone(),
            gates: gates_t,
            cells: cells_t,
            hiddens: hidden_t,
            tanh_c: tanh_c_t,
        });
        (out, cache)
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (out, cache) = self.run_forward(x, train);
        if train {
            self.cache = cache;
        }
        out
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        self.run_forward(x, false).0
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward without forward(train)");
        let x = &cache.x;
        let (n, t, i_dim) = (x.dim(0), x.dim(1), x.dim(2));
        let h = self.hidden;
        let h4 = 4 * h;

        let mut dh = grad_out.data().to_vec(); // (N, H) gradient on final h
        let mut dc = vec![0.0f32; n * h];
        // Whᵀ is constant across the reverse sweep: pack once for the
        // per-timestep dh_prev products (mirror of the forward's W_h pack).
        let wh_t_packed = crate::gemm::PackedB::pack(
            h,
            h4,
            self.w_h.value.data(),
            crate::gemm::Layout::Transposed,
        );
        // All timesteps' gate pre-activation gradients, laid out like the
        // forward's x-projection (row ni*T + ti), so the x-side gradients
        // collapse into two blocked GEMMs after the time loop.
        let mut dpre_all = vec![0.0f32; n * t * h4];
        // Per-step scratch, reused across the whole reverse loop.
        let mut dpre = vec![0.0f32; n * h4];
        let mut dwh_step = vec![0.0f32; h * h4];

        for ti in (0..t).rev() {
            let gates = &cache.gates[ti];
            let tanh_c = &cache.tanh_c[ti];
            let c_prev: &[f32] = if ti == 0 { &[] } else { &cache.cells[ti - 1] };
            let h_prev: &[f32] = if ti == 0 { &[] } else { &cache.hiddens[ti - 1] };
            // Gate pre-activation gradients for this step.
            for ni in 0..n {
                for k in 0..h {
                    let base = ni * h4;
                    let idx = ni * h + k;
                    let ig = gates[base + k];
                    let fg = gates[base + h + k];
                    let gg = gates[base + 2 * h + k];
                    let og = gates[base + 3 * h + k];
                    let tch = tanh_c[idx];
                    let dh_k = dh[idx];
                    // dc accumulates from h (through tanh) and carry-in.
                    let dc_k = dc[idx] + dh_k * og * (1.0 - tch * tch);
                    let cp = if ti == 0 { 0.0 } else { c_prev[idx] };
                    dpre[base + k] = dc_k * gg * ig * (1.0 - ig); // input gate
                    dpre[base + h + k] = dc_k * cp * fg * (1.0 - fg); // forget
                    dpre[base + 2 * h + k] = dc_k * ig * (1.0 - gg * gg); // cell cand
                    dpre[base + 3 * h + k] = dh_k * tch * og * (1.0 - og); // output
                    dc[idx] = dc_k * fg; // carry to t-1
                }
            }
            for ni in 0..n {
                dpre_all[(ni * t + ti) * h4..(ni * t + ti + 1) * h4]
                    .copy_from_slice(&dpre[ni * h4..(ni + 1) * h4]);
            }
            // db += column sums of dpre.
            let gb = self.bias.grad.data_mut();
            for ni in 0..n {
                for (g, &p) in gb.iter_mut().zip(&dpre[ni * h4..(ni + 1) * h4]) {
                    *g += p;
                }
            }
            // dWh += h_prev^T . dpre and dh_prev = dpre . Wh^T, both through
            // the kernel, reading the cached slices in place. At ti == 0
            // there is no earlier step to feed, so neither product is
            // needed.
            if ti > 0 {
                crate::gemm::gemm(
                    h,
                    h4,
                    n,
                    h_prev,
                    crate::gemm::Layout::Transposed,
                    &dpre,
                    crate::gemm::Layout::Normal,
                    &mut dwh_step,
                );
                for (g, &d) in self.w_h.grad.data_mut().iter_mut().zip(&dwh_step) {
                    *g += d;
                }
                crate::gemm::gemm_prepacked(
                    n,
                    &dpre,
                    crate::gemm::Layout::Normal,
                    &wh_t_packed,
                    &mut dh,
                );
            }
        }

        // x-side gradients in two blocked GEMMs over every timestep at once:
        // dWx += x^T . dpre_all (read transposed straight from the cached
        // input; no reshape copy), dx = dpre_all . Wx^T.
        let mut dwx = Tensor::zeros(&[i_dim, h4]);
        crate::gemm::gemm(
            i_dim,
            h4,
            n * t,
            x.data(),
            crate::gemm::Layout::Transposed,
            &dpre_all,
            crate::gemm::Layout::Normal,
            dwx.data_mut(),
        );
        self.w_x.grad.add_assign(&dwx);
        let dpre_flat = Tensor::from_vec(&[n * t, h4], dpre_all);
        dpre_flat.matmul_t(&self.w_x.value).reshape(&[n, t, i_dim])
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_x, &mut self.w_h, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w_x, &self.w_h, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use rand::SeedableRng;

    #[test]
    fn output_is_final_hidden_state_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lstm = Lstm::new(1, 6, &mut rng);
        let x = Tensor::zeros(&[4, 10, 1]);
        let y = lstm.forward(&x, false);
        assert_eq!(y.shape(), &[4, 6]);
    }

    #[test]
    fn hidden_state_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lstm = Lstm::new(1, 4, &mut rng);
        let x = Tensor::from_vec(
            &[1, 20, 1],
            (0..20).map(|i| (i as f32).sin() * 5.0).collect(),
        );
        let y = lstm.forward(&x, false);
        // h = o ⊙ tanh(c) ∈ (-1, 1).
        assert!(y.data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let x = Tensor::from_vec(
            &[2, 4, 2],
            (0..16).map(|i| ((i * 5 % 9) as f32 - 4.0) * 0.2).collect(),
        );
        check_layer_gradients(&mut lstm, &x, 1e-2, 3e-2);
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let lstm = Lstm::new(1, 5, &mut rng);
        let b = lstm.bias.value.data();
        assert!(b[5..10].iter().all(|&v| v == 1.0));
        assert!(b[0..5].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn different_inputs_give_different_states() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lstm = Lstm::new(1, 4, &mut rng);
        let a = lstm.forward(
            &Tensor::from_vec(&[1, 5, 1], vec![1., 2., 3., 4., 5.]),
            false,
        );
        let b = lstm.forward(
            &Tensor::from_vec(&[1, 5, 1], vec![5., 4., 3., 2., 1.]),
            false,
        );
        assert_ne!(a.data(), b.data());
    }
}
