//! From-scratch CPU neural-network substrate.
//!
//! This crate stands in for PyTorch in the reproduction. It provides exactly
//! what the paper's selector architectures and NN-based detectors need:
//!
//! * [`Tensor`] — a dense row-major `f32` tensor (rank ≤ 3 in practice).
//! * [`layers`] — conv1d, linear, batch/layer norm, pooling, dropout,
//!   activations, multi-head self-attention and an LSTM cell, each with
//!   hand-written backward passes that cache what they need from the forward
//!   pass.
//! * [`loss`] — hard cross-entropy, soft-label cross-entropy (PISL), InfoNCE
//!   (MKI) and MSE, all accepting **per-sample weights** so that the
//!   InfoBatch/PA gradient rescaling (`1/(1-r)`) is exact.
//! * [`optim`] — SGD with momentum and Adam, plus global-norm gradient
//!   clipping (the boundedness assumption of the paper's §A.1).
//! * [`gradcheck`] — finite-difference gradient verification used throughout
//!   the test suite.
//! * [`simd`] — dependency-free fixed-width lane types (`F32x8`, `F64x4`)
//!   behind the GEMM micro-kernel and the other measured hot loops, each
//!   with a bitwise-identical scalar fallback (`KD_NO_SIMD=1`).
//!
//! Design notes: layers are stateful (`forward` caches, `backward` consumes)
//! and models compose them explicitly — there is no autograd graph. That
//! keeps the substrate small, fully deterministic, and easy to verify layer
//! by layer.

pub mod gemm;
pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod param;
pub mod serialize;
pub mod simd;
pub mod tensor;

pub use param::Param;
pub use tensor::Tensor;
