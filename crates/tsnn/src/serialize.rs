//! Portable (de)serialisation of tensors and parameter sets.
//!
//! Selector management (save / load / list) needs to persist trained models.
//! Tensors serialise to a plain `{shape, data}` pair; a named parameter set
//! serialises to an ordered list so architectures can rebuild themselves and
//! load weights positionally.

use crate::param::Param;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Serialisable tensor snapshot.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TensorData {
    /// Shape of the tensor.
    pub shape: Vec<usize>,
    /// Flat row-major values.
    pub data: Vec<f32>,
}

impl From<&Tensor> for TensorData {
    fn from(t: &Tensor) -> Self {
        Self {
            shape: t.shape().to_vec(),
            data: t.data().to_vec(),
        }
    }
}

impl TensorData {
    /// Rebuilds the tensor.
    ///
    /// # Panics
    /// Panics if the shape and buffer disagree.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(&self.shape, self.data.clone())
    }
}

/// Snapshot of an ordered parameter list (weights only, no gradients).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct StateDict {
    /// Parameter tensors in `params_mut()` order.
    pub tensors: Vec<TensorData>,
}

/// Extracts a state dict from a parameter list. Takes read-only parameter
/// references — snapshotting a trained model is not a mutation.
pub fn save_params(params: &[&Param]) -> StateDict {
    StateDict {
        tensors: params.iter().map(|p| TensorData::from(&p.value)).collect(),
    }
}

/// Loads a state dict into a parameter list.
///
/// # Errors
/// Returns a message if counts or shapes mismatch.
pub fn load_params(params: &mut [&mut Param], state: &StateDict) -> Result<(), String> {
    if params.len() != state.tensors.len() {
        return Err(format!(
            "parameter count mismatch: model has {}, snapshot has {}",
            params.len(),
            state.tensors.len()
        ));
    }
    for (i, (p, t)) in params.iter_mut().zip(&state.tensors).enumerate() {
        if p.value.shape() != t.shape.as_slice() {
            return Err(format!(
                "parameter {i} shape mismatch: model {:?}, snapshot {:?}",
                p.value.shape(),
                t.shape
            ));
        }
        p.value = t.to_tensor();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_roundtrip() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect());
        let snap = TensorData::from(&t);
        assert_eq!(snap.to_tensor(), t);
    }

    #[test]
    fn params_roundtrip() {
        let p1 = Param::new(Tensor::from_vec(&[2], vec![1.0, 2.0]));
        let p2 = Param::new(Tensor::from_vec(&[1, 2], vec![3.0, 4.0]));
        let state = save_params(&[&p1, &p2]);

        let mut q1 = Param::new(Tensor::zeros(&[2]));
        let mut q2 = Param::new(Tensor::zeros(&[1, 2]));
        load_params(&mut [&mut q1, &mut q2], &state).unwrap();
        assert_eq!(q1.value.data(), &[1.0, 2.0]);
        assert_eq!(q2.value.data(), &[3.0, 4.0]);
    }

    #[test]
    fn load_rejects_count_mismatch() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        let state = StateDict { tensors: vec![] };
        assert!(load_params(&mut [&mut p], &state).is_err());
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let p1 = Param::new(Tensor::zeros(&[2]));
        let state = save_params(&[&p1]);
        let mut q = Param::new(Tensor::zeros(&[3]));
        assert!(load_params(&mut [&mut q], &state).is_err());
    }

    #[test]
    fn json_roundtrip_via_serde() {
        let t = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        let snap = TensorData::from(&t);
        let json = serde_json::to_string(&snap).unwrap();
        let back: TensorData = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
