//! Frozen text embedding for the MKI module.
//!
//! The paper feeds natural-language metadata through a *frozen* pre-trained
//! LLM (BERT-base) to obtain a unified feature vector `z_K`. Running a
//! transformer LLM is neither feasible in this offline CPU environment nor
//! necessary for the mechanism under test: MKI only requires a frozen,
//! deterministic text→vector map where *similar descriptions produce nearby
//! vectors* so that the InfoNCE objective can align series features with
//! metadata features.
//!
//! [`FrozenTextEncoder`] provides exactly that: a hashed bag of word tokens
//! and character trigrams, each expanded into a seeded Gaussian vector
//! (derived from the token hash, so there is no stored vocabulary), summed
//! with sub-linear term weighting and L2-normalised. Numeric tokens
//! additionally emit magnitude-bucket tokens so "length 128" and "length 130"
//! land close together. The substitution is documented in DESIGN.md.

mod encoder;
mod template;

pub use encoder::FrozenTextEncoder;
pub use template::{render_metadata, SeriesMetadata};

/// Default embedding width, matching BERT-base's hidden size.
pub const DEFAULT_EMBED_DIM: usize = 768;
