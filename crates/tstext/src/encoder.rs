//! Deterministic hashed bag-of-tokens embedding.

/// A frozen text encoder: deterministic, training-free, vocabulary-free.
///
/// Construction parameters are the embedding dimension and a seed; two
/// encoders with the same parameters produce identical embeddings on every
/// platform, which stands in for the "frozen pre-trained LLM" of the paper.
#[derive(Debug, Clone)]
pub struct FrozenTextEncoder {
    dim: usize,
    seed: u64,
}

impl FrozenTextEncoder {
    /// Creates an encoder producing `dim`-dimensional embeddings.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self { dim, seed }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes a text into an L2-normalised embedding.
    ///
    /// Empty or punctuation-only text returns the zero vector.
    pub fn encode(&self, text: &str) -> Vec<f32> {
        let mut acc = vec![0.0f64; self.dim];
        let mut any = false;
        for (token, weight) in tokens_with_weights(text) {
            any = true;
            self.add_token(&mut acc, token_hash(&token), weight);
        }
        if !any {
            return vec![0.0; self.dim];
        }
        let norm: f64 = acc.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return vec![0.0; self.dim];
        }
        acc.iter().map(|&x| (x / norm) as f32).collect()
    }

    /// Cosine similarity between two embeddings of this encoder.
    pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "embedding dimension mismatch");
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na < 1e-12 || nb < 1e-12 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Adds the seeded Gaussian vector for a token hash, scaled by `weight`.
    ///
    /// The per-token vector is generated on the fly from a splitmix64 stream
    /// keyed by `(encoder seed, token hash)` — no vocabulary is stored, so
    /// the encoder handles arbitrary open-vocabulary input.
    fn add_token(&self, acc: &mut [f64], token_hash: u64, weight: f64) {
        let mut state = self.seed ^ token_hash.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut i = 0;
        while i < acc.len() {
            state = splitmix64(state);
            // Two approximately-Gaussian values per 64-bit state via the sum
            // of uniform nibbles (Irwin–Hall, 12 terms ≈ N(0,1)).
            let g = irwin_hall_gaussian(state);
            acc[i] += weight * g;
            i += 1;
        }
    }
}

/// splitmix64 step.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Approximate standard Gaussian from a 64-bit state (Irwin–Hall with 12
/// uniform(0,1) terms built from 5-bit slices).
fn irwin_hall_gaussian(state: u64) -> f64 {
    let mut sum = 0.0;
    for k in 0..12 {
        let bits = (state >> (k * 5)) & 0x1F;
        sum += bits as f64 / 31.0;
    }
    sum - 6.0
}

/// FNV-1a hash of a token.
fn token_hash(token: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in token.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Tokenises text into weighted terms:
/// * lowercase word tokens (weight 1.0),
/// * numeric magnitude buckets `⟨num:⌊log2⌋⟩` (weight 0.8) so nearby numbers
///   share a token,
/// * character trigrams of each word (weight 0.25) for robustness to
///   morphology and typos.
fn tokens_with_weights(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for raw in text.split(|c: char| !c.is_alphanumeric() && c != '.') {
        if raw.is_empty() {
            continue;
        }
        let word = raw.to_lowercase();
        if let Ok(value) = word.parse::<f64>() {
            // Exact value token plus a magnitude bucket for smoothness.
            out.push((format!("num#{word}"), 0.6));
            let bucket = if value.abs() < 1.0 {
                0
            } else {
                value.abs().log2().floor() as i64
            };
            out.push((format!("mag#{bucket}"), 0.8));
            continue;
        }
        out.push((word.clone(), 1.0));
        let chars: Vec<char> = word.chars().collect();
        if chars.len() >= 3 {
            for w in chars.windows(3) {
                out.push((format!("tri#{}{}{}", w[0], w[1], w[2]), 0.25));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_deterministic() {
        let enc = FrozenTextEncoder::new(128, 42);
        let a = enc.encode("This is a time series from dataset ECG.");
        let b = enc.encode("This is a time series from dataset ECG.");
        assert_eq!(a, b);
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let enc = FrozenTextEncoder::new(256, 7);
        let v = enc.encode("anomaly detection benchmark");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "norm={norm}");
    }

    #[test]
    fn similar_texts_are_closer_than_different_texts() {
        let enc = FrozenTextEncoder::new(384, 1);
        let a = enc.encode("This is a time series from dataset ECG with 3 anomalies.");
        let b = enc.encode("This is a time series from dataset ECG with 4 anomalies.");
        let c = enc.encode("completely unrelated gibberish about cooking recipes");
        let sim_ab = FrozenTextEncoder::cosine(&a, &b);
        let sim_ac = FrozenTextEncoder::cosine(&a, &c);
        assert!(sim_ab > sim_ac + 0.2, "ab={sim_ab} ac={sim_ac}");
    }

    #[test]
    fn nearby_numbers_share_magnitude_bucket() {
        let enc = FrozenTextEncoder::new(384, 1);
        let a = enc.encode("length 1000");
        let b = enc.encode("length 1100");
        let c = enc.encode("length 3");
        let sim_ab = FrozenTextEncoder::cosine(&a, &b);
        let sim_ac = FrozenTextEncoder::cosine(&a, &c);
        assert!(sim_ab > sim_ac, "ab={sim_ab} ac={sim_ac}");
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let enc = FrozenTextEncoder::new(64, 9);
        let v = enc.encode("   ,,, !!! ");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn different_seeds_give_different_spaces() {
        let a = FrozenTextEncoder::new(64, 1).encode("hello world");
        let b = FrozenTextEncoder::new(64, 2).encode("hello world");
        assert!(FrozenTextEncoder::cosine(&a, &b).abs() < 0.5);
    }

    #[test]
    fn case_insensitive() {
        let enc = FrozenTextEncoder::new(128, 5);
        assert_eq!(enc.encode("ECG Dataset"), enc.encode("ecg dataset"));
    }

    #[test]
    fn gaussian_has_roughly_unit_variance() {
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        let n = 10_000;
        let mut state = 12345u64;
        for _ in 0..n {
            state = splitmix64(state);
            let g = irwin_hall_gaussian(state);
            sum += g;
            sumsq += g * g;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.15, "var={var}");
    }
}
