//! The paper's metadata-to-natural-language template (§B.1).

/// Metadata describing one time series, rendered into the MKI input text.
///
/// Mirrors the fields the paper feeds to BERT: series length, anomaly count,
/// anomaly lengths, and the dataset's domain description (Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesMetadata {
    /// Dataset name, e.g. `"ECG"`.
    pub dataset_name: String,
    /// Domain description from the benchmark's documentation.
    pub domain_description: String,
    /// Number of points in the series.
    pub series_length: usize,
    /// Length (in points) of each labeled anomaly.
    pub anomaly_lengths: Vec<usize>,
}

impl SeriesMetadata {
    /// Number of anomalies.
    pub fn num_anomalies(&self) -> usize {
        self.anomaly_lengths.len()
    }
}

/// Renders metadata with the exact template of §B.1:
///
/// > “This is a time series from dataset \[Dataset name\], \[Description\].
/// > The length of the series is \[Length of series\]. There are \[Number of
/// > anomalies\] anomalies in this series. The lengths of the anomalies are
/// > \[Length of anomalies\].” (last sentence omitted when there are no
/// > anomalies)
pub fn render_metadata(meta: &SeriesMetadata) -> String {
    let mut text = format!(
        "This is a time series from dataset {}, {}. The length of the series is {}. \
         There are {} anomalies in this series.",
        meta.dataset_name,
        meta.domain_description.trim_end_matches('.'),
        meta.series_length,
        meta.num_anomalies(),
    );
    if !meta.anomaly_lengths.is_empty() {
        let lengths: Vec<String> = meta.anomaly_lengths.iter().map(|l| l.to_string()).collect();
        text.push_str(&format!(
            " The lengths of the anomalies are {}.",
            lengths.join(", ")
        ));
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(anoms: Vec<usize>) -> SeriesMetadata {
        SeriesMetadata {
            dataset_name: "ECG".into(),
            domain_description: "a standard electrocardiogram dataset".into(),
            series_length: 1200,
            anomaly_lengths: anoms,
        }
    }

    #[test]
    fn template_with_anomalies() {
        let text = render_metadata(&meta(vec![36, 12]));
        assert!(text.starts_with("This is a time series from dataset ECG,"));
        assert!(text.contains("The length of the series is 1200."));
        assert!(text.contains("There are 2 anomalies in this series."));
        assert!(text.contains("The lengths of the anomalies are 36, 12."));
    }

    #[test]
    fn template_without_anomalies_omits_last_sentence() {
        let text = render_metadata(&meta(vec![]));
        assert!(text.contains("There are 0 anomalies in this series."));
        assert!(!text.contains("lengths of the anomalies"));
    }

    #[test]
    fn trailing_period_in_description_not_doubled() {
        let mut m = meta(vec![5]);
        m.domain_description = "a dataset.".into();
        let text = render_metadata(&m);
        assert!(text.contains("a dataset. The length"));
        assert!(!text.contains("a dataset.. "));
    }
}
