//! Property tests for the parallel runtime: pool execution must match a
//! sequential reference for arbitrary partition counts, work sizes and
//! `KD_THREADS` values — including regions below the `MIN_PAR_WORK` gate —
//! and the pool backend must match the scoped-spawn reference backend
//! bitwise.
//!
//! These tests mutate the process-global thread policy and backend
//! concurrently (the harness runs them in parallel), which is safe here
//! because every assertion is *width- and backend-independent*: any
//! snapshot an interleaved region happens to observe must produce the same
//! bits. That is exactly the determinism contract under test.

use proptest::prelude::*;
use tspar::{Backend, Parallelism};

/// Deterministic pure-float task: bit-identical wherever it runs.
fn task(i: usize, salt: u64) -> f64 {
    let x = (i as f64 * 0.37 + salt as f64 * 0.11).sin();
    x * x + (i as f64 + 1.0).sqrt() * 0.5
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn par_map_matches_sequential(
        n in 0usize..300,
        width in 1usize..9,
        salt in 0u64..10_000,
    ) {
        tspar::set_parallelism(Parallelism::Fixed(width));
        let expect: Vec<f64> = (0..n).map(|i| task(i, salt)).collect();
        let got = tspar::par_map(n, |i| task(i, salt));
        tspar::set_parallelism(Parallelism::Auto);
        prop_assert_eq!(got, expect, "n={} width={}", n, width);
    }

    #[test]
    fn par_chunks_mut_matches_sequential(
        len in 0usize..400,
        chunk_len in 1usize..64,
        width in 1usize..9,
        salt in 0u64..10_000,
    ) {
        let fill = |ci: usize, chunk: &mut [f64]| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = task(ci * 1000 + j, salt);
            }
        };
        let mut expect = vec![0.0f64; len];
        for (ci, chunk) in expect.chunks_mut(chunk_len).enumerate() {
            fill(ci, chunk);
        }

        tspar::set_parallelism(Parallelism::Fixed(width));
        let mut got = vec![0.0f64; len];
        tspar::par_chunks_mut(&mut got, chunk_len, fill);
        tspar::set_parallelism(Parallelism::Auto);
        prop_assert_eq!(got, expect, "len={} chunk={} width={}", len, chunk_len, width);
    }

    #[test]
    fn gated_regions_match_sequential_below_and_above_the_gate(
        len in 1usize..300,
        chunk_len in 1usize..48,
        width in 1usize..9,
        above_gate in proptest::bool::ANY,
        salt in 0u64..10_000,
    ) {
        // Below the gate the region must stay serial (same chunk
        // boundaries); above it, dispatch must not change a single bit.
        let work = if above_gate { tspar::MIN_PAR_WORK } else { tspar::MIN_PAR_WORK - 1 };
        let fill = |ci: usize, chunk: &mut [f64]| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = task(ci * 1000 + j, salt) * 1.5;
            }
        };
        let mut expect = vec![0.0f64; len];
        for (ci, chunk) in expect.chunks_mut(chunk_len).enumerate() {
            fill(ci, chunk);
        }

        tspar::set_parallelism(Parallelism::Fixed(width));
        let mut got = vec![0.0f64; len];
        tspar::par_chunks_mut_gated(&mut got, chunk_len, work, fill);
        tspar::set_parallelism(Parallelism::Auto);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn pool_backend_matches_spawn_backend_bitwise(
        n in 2usize..250,
        width in 2usize..9,
        salt in 0u64..10_000,
    ) {
        tspar::set_parallelism(Parallelism::Fixed(width));
        tspar::set_backend(Backend::Pool);
        let pooled = tspar::par_map(n, |i| task(i, salt));
        tspar::set_backend(Backend::Spawn);
        let spawned = tspar::par_map(n, |i| task(i, salt));
        tspar::set_backend(Backend::Pool);
        tspar::set_parallelism(Parallelism::Auto);
        prop_assert_eq!(pooled, spawned, "n={} width={}", n, width);
    }
}
