//! Regression test for `KD_THREADS` snapshot semantics.
//!
//! The policy is read **once per region** at entry (not cached for the
//! process, not re-read per task): a mid-run env change takes effect at
//! the next region boundary and can never desync the partitioner from the
//! pool dispatch inside a region, because both derive from the same
//! snapshot.
//!
//! Own integration binary (own process): it mutates the process
//! environment, which must not race other tests' `threads()` reads.

use tspar::Parallelism;

/// One test fn so the env/override mutations never interleave.
#[test]
fn kd_threads_is_snapshotted_once_per_region() {
    let original = std::env::var("KD_THREADS").ok();
    tspar::set_parallelism(Parallelism::Auto);

    // Live per region: a change is visible at the next resolve, not pinned
    // to the first value the process ever saw (the pre-pool runtime cached
    // it for the whole process, so the pool size could never follow; now
    // both follow together from one snapshot).
    std::env::set_var("KD_THREADS", "3");
    assert_eq!(tspar::threads(), 3, "env value must apply to new regions");
    std::env::set_var("KD_THREADS", "5");
    assert_eq!(
        tspar::threads(),
        5,
        "mid-run env change applies at the next region"
    );

    // Invalid values fall back to the core count (>= 1).
    std::env::set_var("KD_THREADS", "zero");
    assert!(tspar::threads() >= 1);
    std::env::set_var("KD_THREADS", "0");
    assert!(tspar::threads() >= 1);

    // A change *inside* a running region cannot desync it: partitioning and
    // dispatch were fixed by the entry snapshot, and results must equal the
    // sequential reference exactly.
    std::env::set_var("KD_THREADS", "4");
    let expect: Vec<f64> = (0..200).map(|i| (i as f64).sqrt() * 3.0).collect();
    let got = tspar::par_map(200, |i| {
        if i == 0 {
            std::env::set_var("KD_THREADS", "1");
        }
        (i as f64).sqrt() * 3.0
    });
    assert_eq!(
        got, expect,
        "mid-region env change must not affect the region"
    );
    assert_eq!(
        tspar::threads(),
        1,
        "the change applies from the next region on"
    );

    // The programmatic override takes precedence over the env.
    tspar::set_parallelism(Parallelism::Fixed(2));
    std::env::set_var("KD_THREADS", "7");
    assert_eq!(tspar::threads(), 2);
    tspar::set_parallelism(Parallelism::Auto);
    assert_eq!(tspar::threads(), 7);

    match original {
        Some(v) => std::env::set_var("KD_THREADS", v),
        None => std::env::remove_var("KD_THREADS"),
    }
}
