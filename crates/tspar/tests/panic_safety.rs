//! Panic safety: a panicking partition body must propagate to the
//! submitting caller, leave the pool reusable, and not poison unrelated
//! concurrent regions.
//!
//! Own integration binary (own process): it pins a fixed thread policy and
//! replaces the panic hook while deliberately panicking regions run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use tspar::{Backend, Parallelism};

/// Runs `f` with panic-hook output suppressed (the panics in here are
/// deliberate; their default-hook stack traces would drown the test log).
fn quiet<R>(f: impl FnOnce() -> R) -> R {
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    let _ = std::panic::take_hook();
    out
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string payload>")
}

/// One test fn so the global policy/backend mutations never interleave.
#[test]
fn panics_propagate_and_the_pool_stays_usable() {
    tspar::set_parallelism(Parallelism::Fixed(4));
    tspar::set_backend(Backend::Pool);

    // --- A worker-executed lot panics: the submitter gets the payload. ---
    let err = quiet(|| {
        catch_unwind(AssertUnwindSafe(|| {
            tspar::par_map(64, |i| {
                if i == 13 {
                    panic!("boom at {i}");
                }
                i * 2
            })
        }))
    })
    .expect_err("a panicking partition must fail the region");
    assert_eq!(panic_message(err.as_ref()), "boom at 13");

    // --- The caller-executed lot (partition 0 runs inline) panics too. ---
    let err = quiet(|| {
        catch_unwind(AssertUnwindSafe(|| {
            tspar::par_map(64, |i| {
                if i == 0 {
                    panic!("boom at caller lot");
                }
                i
            })
        }))
    })
    .expect_err("a panic on the inline partition must fail the region");
    assert_eq!(panic_message(err.as_ref()), "boom at caller lot");

    // --- Every partition panicking still yields exactly one panic. ---
    let err = quiet(|| {
        catch_unwind(AssertUnwindSafe(|| {
            tspar::par_map(16, |i| -> usize { panic!("all panic ({i})") })
        }))
    })
    .expect_err("region must fail");
    assert!(panic_message(err.as_ref()).starts_with("all panic"));

    // --- The pool is reusable afterwards: same workers, correct bits. ---
    let workers_after_panics = tspar::pool_workers();
    assert!(
        workers_after_panics >= 1,
        "workers must survive captured panics (got {workers_after_panics})"
    );
    let out = tspar::par_map(100, |i| i * 3);
    assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());

    // --- Unrelated concurrent regions are not poisoned: one caller
    //     panics repeatedly while another computes; the clean caller must
    //     see exact results every time. ---
    let clean_runs = AtomicUsize::new(0);
    let expect: Vec<f64> = (0..300).map(|i| (i as f64 * 0.7).cos()).collect();
    quiet(|| {
        std::thread::scope(|s| {
            s.spawn(|| {
                for round in 0..20 {
                    let err = catch_unwind(AssertUnwindSafe(|| {
                        tspar::par_map(32, |i| {
                            if i == 7 {
                                panic!("round {round}");
                            }
                            i
                        })
                    }));
                    assert!(err.is_err(), "round {round} must panic");
                }
            });
            s.spawn(|| {
                for _ in 0..20 {
                    let got = tspar::par_map(300, |i| (i as f64 * 0.7).cos());
                    assert_eq!(got, expect, "clean region poisoned by a concurrent panic");
                    // kdlint: allow(relaxed): stat counter — the final value
                    // is published by scope join, not by this ordering.
                    clean_runs.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
    });
    // kdlint: allow(relaxed): read after scope join — the join edge already
    // ordered every increment before this load.
    assert_eq!(clean_runs.load(Ordering::Relaxed), 20);

    // --- Parity: the spawn reference backend also fails the region
    //     (`thread::scope` re-panics with a generic payload; the pool is
    //     strictly better — it preserves the original message above). ---
    let err = quiet(|| {
        catch_unwind(AssertUnwindSafe(|| {
            tspar::set_backend(Backend::Spawn);
            tspar::par_map(64, |i| {
                if i == 13 {
                    panic!("boom at {i}");
                }
                i * 2
            })
        }))
    });
    tspar::set_backend(Backend::Pool);
    err.expect_err("spawn backend must propagate too");

    tspar::set_parallelism(Parallelism::Auto);
}
