//! Pool lifecycle: lazy spawn, growth to the region width, reuse across
//! regions and concurrent callers, shutdown and respawn.
//!
//! Own integration binary (own process): worker-count assertions require
//! that nothing else drives the pool concurrently.

use tspar::{Backend, Parallelism};

/// One test fn so the global policy mutations and worker-count
/// observations never interleave.
#[test]
fn pool_grows_lazily_is_reused_and_survives_shutdown() {
    tspar::set_backend(Backend::Pool);
    assert_eq!(
        tspar::pool_workers(),
        0,
        "no workers before the first pooled region"
    );

    // First region at width 4: the caller is executor 0, so exactly 3
    // helpers are spawned.
    tspar::set_parallelism(Parallelism::Fixed(4));
    let out = tspar::par_map(16, |i| i + 1);
    assert_eq!(out, (1..=16).collect::<Vec<_>>());
    assert_eq!(
        tspar::pool_workers(),
        3,
        "width 4 needs 3 persistent helpers"
    );

    // Wider region: the pool grows to the new width...
    tspar::set_parallelism(Parallelism::Fixed(7));
    let out = tspar::par_map(32, |i| i * i);
    assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    assert_eq!(
        tspar::pool_workers(),
        6,
        "width 7 grows the pool to 6 helpers"
    );

    // ...and narrower regions reuse it without shrinking (idle workers
    // sleep on the queue condvar; they cost nothing per region).
    tspar::set_parallelism(Parallelism::Fixed(2));
    let out = tspar::par_map(8, |i| i as f64 * 0.5);
    assert_eq!(out, (0..8).map(|i| i as f64 * 0.5).collect::<Vec<_>>());
    assert_eq!(tspar::pool_workers(), 6, "the pool never shrinks mid-run");

    // A region wider than the partition count spawns only what it can use.
    tspar::set_parallelism(Parallelism::Fixed(100));
    let out = tspar::par_map(3, |i| i);
    assert_eq!(out, vec![0, 1, 2]);
    assert_eq!(
        tspar::pool_workers(),
        6,
        "3 partitions need at most 2 helpers; the pool stays at 6"
    );

    // Concurrent independent callers share the one pool and all get exact
    // results (each caller drains its own region, so this cannot deadlock
    // even if every worker is busy elsewhere).
    tspar::set_parallelism(Parallelism::Fixed(3));
    let expect: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(2654435761)).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let expect = &expect;
                s.spawn(move || {
                    for _ in 0..10 {
                        let got = tspar::par_map(500, |i| (i as u64).wrapping_mul(2654435761));
                        assert_eq!(&got, expect);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("caller thread");
        }
    });

    // Shutdown joins every worker; the next region lazily respawns.
    tspar::shutdown_pool();
    assert_eq!(tspar::pool_workers(), 0, "shutdown joins all workers");
    tspar::shutdown_pool(); // idempotent
    assert_eq!(tspar::pool_workers(), 0);

    tspar::set_parallelism(Parallelism::Fixed(4));
    let out = tspar::par_map(16, |i| i + 2);
    assert_eq!(out, (2..18).collect::<Vec<_>>());
    assert_eq!(
        tspar::pool_workers(),
        3,
        "regions after shutdown respawn the pool"
    );

    // Shutdowns racing each other and racing active regions must neither
    // deadlock nor corrupt results: shutdowns serialize internally, and a
    // submitting caller always drains its own lots even with zero workers.
    let expect: Vec<usize> = (0..100).map(|i| i * 7).collect();
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                for _ in 0..5 {
                    tspar::shutdown_pool();
                }
            });
        }
        s.spawn(|| {
            for _ in 0..10 {
                assert_eq!(tspar::par_map(100, |i| i * 7), expect);
            }
        });
    });

    tspar::set_parallelism(Parallelism::Auto);
}
