//! The persistent worker pool behind [`crate::Backend::Pool`].
//!
//! Every parallel region used to spawn and join one scoped OS thread per
//! partition, so hot per-minibatch layers just above the
//! [`crate::MIN_PAR_WORK`] gate paid recurring spawn cost. This module
//! replaces that with a lazily-initialized, process-wide pool of long-lived
//! workers fed from a shared FIFO injector queue:
//!
//! * **Jobs, not tasks.** A region submits one [`Job`] describing its fixed
//!   partitions ("lots"). Executors *claim* lots from the job's atomic
//!   claim counter, so a lot runs exactly once no matter how many workers
//!   wake. The queue only tracks unclaimed work: an exhausted job is popped
//!   the next time a worker sees it at the front.
//! * **The caller is executor 0.** The submitting thread runs lot 0 inline,
//!   then claims whatever the workers have not taken, and finally blocks on
//!   the job's completion latch. Because the caller always drains its own
//!   region, a region completes even with zero live workers — the pool can
//!   never deadlock a submitter.
//! * **Determinism is upstream.** Partition boundaries and per-lot work are
//!   fixed by [`crate::par_map`]/[`crate::par_chunks_mut`] before dispatch
//!   and each lot writes disjoint output, so *which* executor runs a lot
//!   cannot affect results. The pool path is bit-identical to the scoped
//!   spawn path ([`crate::Backend::Spawn`]) — `tests/pool_determinism.rs`
//!   at the workspace root pins that contract.
//! * **Panic safety.** Each lot body runs under `catch_unwind`; the first
//!   payload is stored on the job and re-raised on the submitting thread
//!   after every lot has finished (mirroring [`std::thread::scope`]).
//!   Workers survive payload capture, so one panicking region neither
//!   poisons the pool nor disturbs unrelated concurrent regions.
//! * **Nested regions run inline.** Workers (and the caller, while it
//!   executes lots) are flagged via the crate's worker scope, which makes
//!   [`crate::threads`] report 1 — an inner parallel region therefore runs
//!   serially on the executor instead of re-entering the pool and risking a
//!   wait-for-self deadlock.
//!
//! # Safety model
//!
//! A [`Job`] stores a lifetime-erased pointer to the region body, which
//! borrows the caller's stack. The invariant making that sound: the body
//! pointer is only dereferenced while running a claimed lot, every lot
//! holds `remaining > 0` until its body call returns, and [`run_region`]
//! does not return (or resume a panic) until `remaining == 0`. After the
//! last lot finishes, the only reachable traces of the job are its atomics
//! — the pointer value may dangle but is never dereferenced again.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Hard ceiling on live pool workers: a runaway `KD_THREADS` must not fork
/// an unbounded thread herd. Regions wanting more width than this still
/// complete — the caller claims the surplus lots itself.
const MAX_WORKERS: usize = 256;

/// Lifetime-erased pointer to a region body (`Fn(lot_index)`).
struct BodyPtr(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is only dereferenced by [`run_lot`] under the job
// invariant documented in the module header (the submitting caller outlives
// every dereference), so moving the pointer to another thread cannot
// outlive the borrow it erases.
unsafe impl Send for BodyPtr {}
// SAFETY: `dyn Fn(usize) + Sync` is callable from any thread by
// definition, so shared references to the pointer are as safe as the
// pointee's own `Sync` bound.
unsafe impl Sync for BodyPtr {}

/// One submitted parallel region: `n_lots` fixed partitions, each executed
/// exactly once by whichever executor claims it.
struct Job {
    body: BodyPtr,
    n_lots: usize,
    /// Claim counter: `fetch_add` hands out lot indices; values `>= n_lots`
    /// mean the job is exhausted (overshoot is harmless).
    next: AtomicUsize,
    /// Completion latch + first panic payload.
    state: Mutex<JobState>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
}

struct JobState {
    /// Lots whose body call has not yet returned.
    remaining: usize,
    /// First captured panic payload, re-raised by the submitter.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct PoolState {
    /// FIFO of jobs that may still have unclaimed lots.
    queue: VecDeque<Arc<Job>>,
    /// Live workers (spawned, not shut down).
    workers: usize,
    /// Join handles for [`shutdown_pool`].
    handles: Vec<JoinHandle<()>>,
    /// When set, workers exit instead of sleeping; submits stop growing the
    /// pool (regions still complete via the caller's claim loop).
    shutdown: bool,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Signalled on submit and shutdown.
    work_ready: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            workers: 0,
            handles: Vec::new(),
            shutdown: false,
        }),
        work_ready: Condvar::new(),
    })
}

/// Runs a region of `n_lots` fixed partitions on the pool. Called with
/// `n_lots >= 2` (serial regions never reach dispatch) from a thread that
/// is not itself a pool executor (nested regions short-circuit at
/// [`crate::threads`] `== 1`).
///
/// Panics with the first captured payload if any lot body panicked, after
/// every lot has finished.
pub(crate) fn run_region(n_lots: usize, body: &(dyn Fn(usize) + Sync)) {
    debug_assert!(n_lots >= 2, "serial regions must not be dispatched");
    let erased: *const (dyn Fn(usize) + Sync) = body;
    // SAFETY: lifetime erasure only — see the module header. We do not
    // return until `remaining == 0`, so `body` outlives every dereference.
    let erased = BodyPtr(unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync + 'static)>(
            erased,
        )
    });
    let job = Arc::new(Job {
        body: erased,
        n_lots,
        // Lot 0 is pre-claimed: the caller always runs it inline.
        next: AtomicUsize::new(1),
        state: Mutex::new(JobState {
            remaining: n_lots,
            panic: None,
        }),
        done: Condvar::new(),
    });
    submit(Arc::clone(&job), n_lots - 1);

    // The caller is executor 0: lot 0 first, then whatever the workers have
    // not claimed. The worker scope makes nested regions run inline here,
    // exactly as they do on pool workers.
    {
        let _nested_inline = crate::worker_scope();
        run_lot(&job, 0);
        loop {
            // kdlint: allow(relaxed): RMW-unique lot claim — fetch_add hands
            // each index to exactly one executor; lot data is published by
            // the submit-side mutex, not by this counter.
            let lot = job.next.fetch_add(1, Ordering::Relaxed);
            if lot >= n_lots {
                break;
            }
            run_lot(&job, lot);
        }
    }

    // Completion latch: workers may still be running claimed lots. The
    // state mutex also publishes their output writes to this thread.
    let payload = {
        let st = job.state.lock().unwrap();
        let mut st = job.done.wait_while(st, |s| s.remaining > 0).unwrap();
        st.panic.take()
    };
    retire(&job);
    if let Some(p) = payload {
        panic::resume_unwind(p);
    }
}

/// Enqueues a job and makes sure up to `helpers` workers exist to claim
/// its lots alongside the caller.
fn submit(job: Arc<Job>, helpers: usize) {
    let pool = pool();
    let mut st = pool.state.lock().unwrap();
    let target = helpers.min(MAX_WORKERS);
    while !st.shutdown && st.workers < target {
        let idx = st.workers;
        match std::thread::Builder::new()
            .name(format!("tspar-worker-{idx}"))
            .spawn(worker_loop)
        {
            Ok(handle) => {
                st.workers += 1;
                st.handles.push(handle);
            }
            // Spawn failure (resource exhaustion) degrades gracefully: the
            // caller's claim loop drains whatever workers cannot take.
            Err(_) => break,
        }
    }
    st.queue.push_back(job);
    let wakeups = target.min(st.workers).max(1);
    drop(st);
    // Wake only as many sleepers as the region can employ: notify_all
    // would stampede every idle worker over the pool mutex per region once
    // the pool has grown wide. A worker that is busy (not waiting) anyway
    // re-checks the queue before it ever sleeps, so no submit is lost.
    for _ in 0..wakeups {
        pool.work_ready.notify_one();
    }
}

/// Drops a completed job from the queue if a worker has not already popped
/// it, so finished regions never pile up behind live ones.
fn retire(job: &Arc<Job>) {
    if let Some(pool) = POOL.get() {
        let mut st = pool.state.lock().unwrap();
        st.queue.retain(|j| !Arc::ptr_eq(j, job));
    }
}

/// A persistent worker: claim a lot, run it, drain the rest of that job,
/// sleep until the next submit.
fn worker_loop() {
    let _worker = crate::worker_scope();
    let pool = pool();
    while let Some((job, lot)) = next_assignment(pool) {
        run_lot(&job, lot);
        loop {
            // kdlint: allow(relaxed): RMW-unique lot claim — see run_region;
            // the job Arc itself arrived through the pool mutex.
            let lot = job.next.fetch_add(1, Ordering::Relaxed);
            if lot >= job.n_lots {
                break;
            }
            run_lot(&job, lot);
        }
    }
}

/// Blocks until a job with an unclaimed lot is at the queue front (FIFO:
/// older regions drain first) or the pool is shutting down (`None`).
fn next_assignment(pool: &Pool) -> Option<(Arc<Job>, usize)> {
    let mut st = pool.state.lock().unwrap();
    loop {
        if st.shutdown {
            return None;
        }
        // Front-check and pop happen under one lock hold, so an exhausted
        // job is popped by exactly the worker that observed it exhausted.
        while let Some(front) = st.queue.front() {
            // kdlint: allow(relaxed): RMW-unique lot claim under the pool
            // lock — the queue mutex publishes the job; the counter only
            // partitions indices.
            let lot = front.next.fetch_add(1, Ordering::Relaxed);
            if lot < front.n_lots {
                return Some((Arc::clone(front), lot));
            }
            st.queue.pop_front();
        }
        st = pool.work_ready.wait(st).unwrap();
    }
}

/// Runs one claimed lot, capturing a panic instead of unwinding through the
/// executor, and opens the completion latch when the lot is the last.
fn run_lot(job: &Job, lot: usize) {
    // SAFETY: `lot < n_lots` was claimed exactly once, so `remaining > 0`
    // holds until this call returns and the submitter is still blocked in
    // `run_region` — the body borrow is live (module-header invariant).
    let body = unsafe { &*job.body.0 };
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| body(lot)));
    let mut st = job.state.lock().unwrap();
    if let Err(payload) = outcome {
        // First panic wins, mirroring `thread::scope`; later payloads from
        // the same region are dropped.
        st.panic.get_or_insert(payload);
    }
    st.remaining -= 1;
    if st.remaining == 0 {
        job.done.notify_all();
    }
}

/// Number of live persistent workers (0 before the first pooled region,
/// and again after [`shutdown_pool`]).
pub fn pool_workers() -> usize {
    POOL.get().map_or(0, |p| p.state.lock().unwrap().workers)
}

/// Joins and discards every pool worker, returning the pool to its
/// pristine lazy state — the next parallel region respawns workers on
/// demand. Intended for tests and benchmarks that need a cold pool;
/// regions submitted while a shutdown is in flight still complete, because
/// the submitting caller always drains its own lots.
pub fn shutdown_pool() {
    let Some(pool) = POOL.get() else { return };
    // Serialize whole shutdowns: a second caller interleaving with the
    // join phase could otherwise clear the shutdown flag before the first
    // caller's workers observe it, putting those workers back to sleep
    // and deadlocking the first caller's `join`.
    static SHUTDOWN_GUARD: Mutex<()> = Mutex::new(());
    let _one_at_a_time = SHUTDOWN_GUARD.lock().unwrap();
    let handles = {
        let mut st = pool.state.lock().unwrap();
        st.shutdown = true;
        std::mem::take(&mut st.handles)
    };
    pool.work_ready.notify_all();
    for handle in handles {
        let _ = handle.join();
    }
    let mut st = pool.state.lock().unwrap();
    st.shutdown = false;
    st.workers = 0;
}
