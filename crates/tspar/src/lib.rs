//! Deterministic parallelism for the KDSelector workspace, executed on a
//! persistent worker pool.
//!
//! crates.io (and therefore rayon) is unavailable in this build
//! environment, so the workspace carries its own small runtime. Three
//! design rules keep results **bit-identical at any thread count** — the
//! property `tests/pool_determinism.rs` and the end-to-end determinism
//! tests pin down:
//!
//! 1. **Fixed partitions.** Work is split into chunks whose boundaries
//!    depend only on the problem size and the region's thread-count
//!    snapshot (never on which executor runs what); executors merely
//!    execute chunks.
//! 2. **Disjoint writes.** Every chunk owns its slice of the output, so no
//!    accumulation order depends on scheduling.
//! 3. **Ordered reductions.** When chunk results must be combined, callers
//!    receive them in chunk order ([`par_map`] preserves index order).
//!
//! # Execution backends
//!
//! Partitioning is separate from execution. The partitions of a region are
//! handed to one of two [`Backend`]s:
//!
//! * [`Backend::Pool`] (default) — a lazily-initialized, process-wide pool
//!   of long-lived workers ([`mod@pool`]): the caller runs partition 0
//!   inline and claims leftovers, workers claim the rest from a shared
//!   queue. Per-region cost is a queue push plus condvar wakeups instead of
//!   `threads() − 1` OS thread spawns and joins.
//! * [`Backend::Spawn`] — the original per-region scoped spawn/join,
//!   kept as the reference implementation: benchmarks measure dispatch
//!   overhead against it and the determinism harness pins pool ≡ spawn
//!   bitwise.
//!
//! Because partitions and per-chunk work are identical under both backends
//! and all writes are disjoint, the backend (and the number of live pool
//! workers) can never affect results.
//!
//! # Thread-count snapshot semantics
//!
//! The worker count comes from [`Parallelism`]: the `KD_THREADS`
//! environment variable if set, otherwise all available cores, with a
//! process-wide programmatic override ([`set_parallelism`]) taking
//! precedence. Every parallel region resolves [`threads`] **exactly once
//! at entry** and derives both its partitioning and its dispatch width
//! from that single snapshot — a `KD_THREADS` change mid-run takes effect
//! at the next region boundary and can never desync the partitioner from
//! the pool dispatch within a region (`crates/tspar/tests/env_snapshot.rs`
//! is the regression test).

#![deny(unsafe_op_in_unsafe_fn)]

mod pool;

pub use pool::{pool_workers, shutdown_pool};

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Thread-count policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// `KD_THREADS` if set and valid, else all available cores.
    Auto,
    /// Exactly `n` worker threads (`1` disables parallelism).
    Fixed(usize),
}

impl Parallelism {
    /// Resolves the policy to a concrete thread count (≥ 1).
    ///
    /// `Auto` re-reads `KD_THREADS` on every call: regions resolve their
    /// width once at entry (see the module docs), so the env read is paid
    /// once per region — not once per task — and a mid-run change takes
    /// effect at the next region boundary. The core-count fallback is
    /// cached for the process (it never changes and costs a syscall).
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => env_threads().unwrap_or_else(available_cores),
        }
    }
}

fn env_threads() -> Option<usize> {
    std::env::var("KD_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

fn available_cores() -> usize {
    static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    })
}

/// Process-wide override; 0 = follow [`Parallelism::Auto`].
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide thread-count policy. `Auto` clears any override.
pub fn set_parallelism(p: Parallelism) {
    let v = match p {
        Parallelism::Auto => 0,
        Parallelism::Fixed(n) => n.max(1),
    };
    OVERRIDE.store(v, Ordering::SeqCst);
}

/// The effective worker count for a new parallel region.
///
/// **Snapshot semantics:** each region calls this exactly once at entry
/// and uses the answer for both its fixed partitioning and its pool
/// dispatch, so the two can never disagree; policy changes (env or
/// [`set_parallelism`]) apply from the next region on.
///
/// Inside a pool executor this is always 1: nested regions (e.g. a
/// detector's GEMM inside the per-series label pass) run inline on the
/// executor instead of re-entering the pool and oversubscribing the
/// machine `threads() × threads()`-fold. Results are unchanged either way.
pub fn threads() -> usize {
    if IN_WORKER.with(|f| f.get()) {
        return 1;
    }
    match OVERRIDE.load(Ordering::SeqCst) {
        0 => Parallelism::Auto.resolve(),
        n => n,
    }
}

/// How a region's fixed partitions are executed. Never affects results —
/// see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Persistent worker pool (default): caller runs partition 0 inline,
    /// long-lived workers claim the rest from a shared queue.
    Pool,
    /// Per-region scoped spawn/join — the seed's implementation, kept as
    /// the bitwise reference for the determinism harness and the dispatch
    /// overhead benchmark.
    Spawn,
}

/// 0 = Pool, 1 = Spawn.
static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Selects the execution backend for subsequent parallel regions
/// (process-wide; used by tests and benchmarks).
pub fn set_backend(b: Backend) {
    BACKEND.store(
        match b {
            Backend::Pool => 0,
            Backend::Spawn => 1,
        },
        Ordering::SeqCst,
    );
}

/// The backend new parallel regions execute on.
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::SeqCst) {
        0 => Backend::Pool,
        _ => Backend::Spawn,
    }
}

thread_local! {
    /// True while this thread is executing region partitions — on pool
    /// workers, on spawn-backend scoped threads, and on a submitting caller
    /// while it runs its own lots — so nested regions stay inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII worker flag: marks the current thread as a region executor until
/// dropped (restoring the previous state), so [`threads`] reports 1 and
/// nested regions run inline.
pub(crate) struct WorkerScope {
    prev: bool,
}

pub(crate) fn worker_scope() -> WorkerScope {
    WorkerScope {
        prev: IN_WORKER.with(|f| f.replace(true)),
    }
}

impl Drop for WorkerScope {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_WORKER.with(|f| f.set(prev));
    }
}

/// Interior-mutable cell for one partition's task list: each lot index is
/// executed exactly once (spawn backend: one scoped thread per lot; pool
/// backend: claimed once from the job's atomic counter), so the executor
/// holds the only live access to the lot's contents.
struct LotCell<T>(UnsafeCell<T>);

// SAFETY: see `LotCell` — exclusive per-lot access is guaranteed by the
// execution protocol, so sharing the container across executors only ever
// sends each `T` to a single thread.
unsafe impl<T: Send> Sync for LotCell<T> {}

/// One [`par_map`] partition: `(task index, output slot)` pairs.
type MapLot<'a, T> = LotCell<Vec<(usize, &'a mut Option<T>)>>;

/// One [`par_chunks_mut`] partition: `(chunk index, chunk)` pairs.
type ChunkLot<'a, T> = LotCell<Vec<(usize, &'a mut [T])>>;

/// Executes `body(lot)` exactly once for every `lot in 0..n_lots` on the
/// configured [`Backend`]. `n_lots >= 2`; panics from lot bodies propagate
/// to the caller after all lots finish (both backends).
fn execute(n_lots: usize, body: &(dyn Fn(usize) + Sync)) {
    match backend() {
        Backend::Pool => pool::run_region(n_lots, body),
        Backend::Spawn => {
            std::thread::scope(|s| {
                for lot in 0..n_lots {
                    s.spawn(move || {
                        let _worker = worker_scope();
                        body(lot);
                    });
                }
            });
        }
    }
}

/// Maps `f` over `0..n`, preserving index order in the output. Tasks are
/// dealt to partitions round-robin (task `i` → partition `i % workers`),
/// which balances heterogeneous task costs the same way the seed's
/// hand-rolled detector pool did.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // Region-entry snapshot: partition count and dispatch width both come
    // from this single read.
    let workers = threads().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let mut build: Vec<Vec<(usize, &mut Option<T>)>> = (0..workers)
            .map(|_| Vec::with_capacity(n / workers + 1))
            .collect();
        for (i, slot) in out.iter_mut().enumerate() {
            build[i % workers].push((i, slot));
        }
        let lots: Vec<MapLot<'_, T>> = build
            .into_iter()
            .map(|lot| LotCell(UnsafeCell::new(lot)))
            .collect();
        let f = &f;
        execute(lots.len(), &|lot| {
            // SAFETY: `lot` is executed exactly once (LotCell contract).
            let items = unsafe { &mut *lots[lot].0.get() };
            for (i, slot) in items.iter_mut() {
                **slot = Some(f(*i));
            }
        });
    }
    out.into_iter()
        .map(|v| v.expect("executor filled every slot"))
        .collect()
}

/// Minimum useful work (inner-loop multiply-adds, roughly) for a parallel
/// region: even pool dispatch costs a queue push plus condvar wakeups, so
/// below this the dispatch cost outweighs the compute and callers should
/// stay serial.
///
/// Calibrated against the persistent pool by the `micro_kernels` bench's
/// `par_gate` sweep (`BENCH_micro.json`): pool dispatch costs ≈ 4–5 µs per
/// region where the pre-pool scoped spawn/join (which the original
/// `1 << 21` gate was tuned for) cost ≈ 100 µs. A width-`w` region breaks
/// even once its serial time exceeds `overhead · w / (w − 1)` — ≈ 6.5 µs
/// at width 4, reached at the `1 << 17` rung of the sweep (~1 multiply-add
/// per work unit), which is where this constant now sits — 16× lower than
/// the spawn-era gate. Below-gate regions run the
/// identical serial chunking (same boundaries, same results) — the
/// `pool_props` proptest pins gated ≡ sequential on both sides of the
/// gate, so retuning the constant can never change values.
///
/// This is the **pool-backend** gate; [`min_par_work`] returns the gate
/// for the currently selected backend (the spawn reference keeps the
/// spawn-era [`MIN_PAR_WORK_SPAWN`], since its ~100 µs/region dispatch is
/// what the old value was calibrated against).
pub const MIN_PAR_WORK: usize = 1 << 17;

/// The gate for [`Backend::Spawn`]: per-region scoped spawn/join costs
/// ~20× pool dispatch, so regions between the two gates that profit on
/// the pool would regress under spawn. Kept at the original calibration.
pub const MIN_PAR_WORK_SPAWN: usize = 1 << 21;

/// The work gate for the currently selected [`Backend`] — what
/// [`par_chunks_mut_gated`] (and the layer-level gates) compare their
/// work estimate against. Backend choice never affects results, only
/// whether a region's fixed chunking runs inline or dispatched.
pub fn min_par_work() -> usize {
    match backend() {
        Backend::Pool => MIN_PAR_WORK,
        Backend::Spawn => MIN_PAR_WORK_SPAWN,
    }
}

/// [`par_chunks_mut`] gated by a work estimate: runs serially (same chunk
/// boundaries, same results) when `work` is below the current backend's
/// gate ([`min_par_work`]). Hot per-minibatch layers use this so small
/// shapes never pay dispatch overhead.
pub fn par_chunks_mut_gated<T, F>(data: &mut [T], chunk_len: usize, work: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if work < min_par_work() {
        for (i, chunk) in data.chunks_mut(chunk_len.max(1)).enumerate() {
            f(i, chunk);
        }
    } else {
        par_chunks_mut(data, chunk_len, f);
    }
}

/// Splits `data` into fixed-length chunks (the last may be short) and runs
/// `f(chunk_index, chunk)` on the region's executors. Chunk boundaries
/// depend only on `chunk_len`, so output is scheduling-independent for any
/// `f` that writes only through its chunk.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len.max(1));
    // Region-entry snapshot (see `threads`).
    let workers = threads().min(n_chunks.max(1));
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let mut build: Vec<Vec<(usize, &mut [T])>> = (0..workers)
        .map(|_| Vec::with_capacity(n_chunks / workers + 1))
        .collect();
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        build[i % workers].push((i, chunk));
    }
    let lots: Vec<ChunkLot<'_, T>> = build
        .into_iter()
        .map(|lot| LotCell(UnsafeCell::new(lot)))
        .collect();
    let f = &f;
    execute(lots.len(), &|lot| {
        // SAFETY: `lot` is executed exactly once (LotCell contract).
        let items = unsafe { &mut *lots[lot].0.get() };
        for (i, chunk) in items.iter_mut() {
            f(*i, chunk);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_prefers_fixed() {
        assert_eq!(Parallelism::Fixed(3).resolve(), 3);
        assert_eq!(Parallelism::Fixed(0).resolve(), 1);
        assert!(Parallelism::Auto.resolve() >= 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(100, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        assert!(par_map(0, |i| i).is_empty());
        assert_eq!(par_map(1, |i| i + 5), vec![5]);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_slices() {
        let mut data = vec![0usize; 103];
        par_chunks_mut(&mut data, 10, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = ci * 10 + j;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    /// One test (not several) so the process-global override and backend
    /// are never mutated concurrently by the multi-threaded test harness.
    /// (Pool lifecycle, panic safety, and env snapshot behaviour live in
    /// their own integration binaries — each is a separate process.)
    #[test]
    fn global_override_behaviours() {
        // Nested regions: executors must see threads() == 1.
        set_parallelism(Parallelism::Fixed(4));
        let inner = par_map(4, |_| threads());
        assert!(
            inner.iter().all(|&t| t == 1),
            "executors must see threads() == 1 to keep nested regions inline: {inner:?}"
        );

        // Identical results at 1 vs 8 workers, pool and spawn backends.
        let run = || {
            let mut v = vec![0.0f64; 777];
            par_chunks_mut(&mut v, 13, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = ((ci * 13 + j) as f64).sqrt();
                }
            });
            v
        };
        set_parallelism(Parallelism::Fixed(1));
        let serial = run();
        set_parallelism(Parallelism::Fixed(8));
        let pooled = run();
        assert_eq!(serial, pooled, "pool backend at 8 workers");
        set_backend(Backend::Spawn);
        let spawned = run();
        set_backend(Backend::Pool);
        assert_eq!(serial, spawned, "spawn backend at 8 workers");

        // Nested region inside a region body: inline, correct, no deadlock.
        let nested = par_map(6, |i| {
            par_map(5, move |j| (i * 5 + j) as u64).iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..6)
            .map(|i| (0..5).map(|j| (i * 5 + j) as u64).sum())
            .collect();
        assert_eq!(nested, expect);

        set_parallelism(Parallelism::Auto);
    }
}
