//! Deterministic fork-join parallelism for the KDSelector workspace.
//!
//! crates.io (and therefore rayon) is unavailable in this build
//! environment, so the workspace carries its own small runtime built on
//! [`std::thread::scope`]. Three design rules keep results **bit-identical
//! at any thread count** — the property the end-to-end determinism tests
//! pin down:
//!
//! 1. **Fixed partitions.** Work is split into chunks whose boundaries
//!    depend only on the problem size (never on the worker count); workers
//!    merely execute chunks.
//! 2. **Disjoint writes.** Every chunk owns its slice of the output, so no
//!    accumulation order depends on scheduling.
//! 3. **Ordered reductions.** When chunk results must be combined, callers
//!    receive them in chunk order ([`par_map`] preserves index order).
//!
//! The worker count comes from [`Parallelism`]: the `KD_THREADS`
//! environment variable if set, otherwise all available cores, with a
//! process-wide programmatic override ([`set_parallelism`]) used by tests
//! and benchmarks.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread-count policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// `KD_THREADS` if set and valid, else all available cores.
    Auto,
    /// Exactly `n` worker threads (`1` disables parallelism).
    Fixed(usize),
}

impl Parallelism {
    /// Resolves the policy to a concrete thread count (≥ 1). The `Auto`
    /// answer (`KD_THREADS` / core count) is computed once per process —
    /// parallel regions open in the training hot loop, so re-reading the
    /// environment and `available_parallelism` every entry would pay env
    /// lock plus syscall per minibatch for a value that never changes.
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => {
                static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
                *CACHE.get_or_init(|| {
                    env_threads().unwrap_or_else(|| {
                        std::thread::available_parallelism()
                            .map(|v| v.get())
                            .unwrap_or(1)
                    })
                })
            }
        }
    }
}

fn env_threads() -> Option<usize> {
    std::env::var("KD_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

/// Process-wide override; 0 = follow [`Parallelism::Auto`].
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide thread-count policy. `Auto` clears any override.
pub fn set_parallelism(p: Parallelism) {
    let v = match p {
        Parallelism::Auto => 0,
        Parallelism::Fixed(n) => n.max(1),
    };
    OVERRIDE.store(v, Ordering::SeqCst);
}

/// The effective worker count for new parallel regions. Inside a pool
/// worker this is always 1: nested regions (e.g. a detector's GEMM inside
/// the per-series label pass) run serially instead of oversubscribing the
/// machine `threads() × threads()`-fold. Results are unchanged either way.
pub fn threads() -> usize {
    if IN_WORKER.with(|f| f.get()) {
        return 1;
    }
    match OVERRIDE.load(Ordering::SeqCst) {
        0 => Parallelism::Auto.resolve(),
        n => n,
    }
}

thread_local! {
    /// True on threads spawned by this pool (fresh OS threads default to
    /// false, so only nested regions see it set).
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Maps `f` over `0..n`, preserving index order in the output. Tasks are
/// dealt to workers round-robin (task `i` → worker `i % workers`), which
/// balances heterogeneous task costs the same way the seed's hand-rolled
/// detector pool did.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let mut lots: Vec<Vec<(usize, &mut Option<T>)>> = (0..workers)
            .map(|_| Vec::with_capacity(n / workers + 1))
            .collect();
        for (i, slot) in out.iter_mut().enumerate() {
            lots[i % workers].push((i, slot));
        }
        let f = &f;
        std::thread::scope(|s| {
            for lot in lots {
                s.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    for (i, slot) in lot {
                        *slot = Some(f(i));
                    }
                });
            }
        });
    }
    out.into_iter()
        .map(|v| v.expect("worker filled every slot"))
        .collect()
}

/// Minimum useful work (inner-loop multiply-adds, roughly) for a parallel
/// region: workers are scoped OS threads spawned per region, so below this
/// the spawn cost outweighs the compute and callers should stay serial.
pub const MIN_PAR_WORK: usize = 1 << 21;

/// [`par_chunks_mut`] gated by a work estimate: runs serially (same chunk
/// boundaries, same results) when `work < MIN_PAR_WORK`. Hot per-minibatch
/// layers use this so small shapes never pay thread-spawn overhead.
pub fn par_chunks_mut_gated<T, F>(data: &mut [T], chunk_len: usize, work: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if work < MIN_PAR_WORK {
        for (i, chunk) in data.chunks_mut(chunk_len.max(1)).enumerate() {
            f(i, chunk);
        }
    } else {
        par_chunks_mut(data, chunk_len, f);
    }
}

/// Splits `data` into fixed-length chunks (the last may be short) and runs
/// `f(chunk_index, chunk)` on workers. Chunk boundaries depend only on
/// `chunk_len`, so output is scheduling-independent for any `f` that writes
/// only through its chunk.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len.max(1));
    let workers = threads().min(n_chunks.max(1));
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let mut lots: Vec<Vec<(usize, &mut [T])>> = (0..workers)
        .map(|_| Vec::with_capacity(n_chunks / workers + 1))
        .collect();
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        lots[i % workers].push((i, chunk));
    }
    let f = &f;
    std::thread::scope(|s| {
        for lot in lots {
            s.spawn(move || {
                IN_WORKER.with(|flag| flag.set(true));
                for (i, chunk) in lot {
                    f(i, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_prefers_fixed() {
        assert_eq!(Parallelism::Fixed(3).resolve(), 3);
        assert_eq!(Parallelism::Fixed(0).resolve(), 1);
        assert!(Parallelism::Auto.resolve() >= 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(100, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        assert!(par_map(0, |i| i).is_empty());
        assert_eq!(par_map(1, |i| i + 5), vec![5]);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_slices() {
        let mut data = vec![0usize; 103];
        par_chunks_mut(&mut data, 10, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = ci * 10 + j;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    /// One test (not several) so the process-global override is never
    /// mutated concurrently by the multi-threaded test harness.
    #[test]
    fn global_override_behaviours() {
        // Nested regions: pool workers must see threads() == 1.
        set_parallelism(Parallelism::Fixed(4));
        let inner = par_map(4, |_| threads());
        assert!(
            inner.iter().all(|&t| t == 1),
            "workers must see threads() == 1 to keep nested regions serial: {inner:?}"
        );

        // Identical results at 1 vs 8 workers.
        let run = || {
            let mut v = vec![0.0f64; 777];
            par_chunks_mut(&mut v, 13, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = ((ci * 13 + j) as f64).sqrt();
                }
            });
            v
        };
        set_parallelism(Parallelism::Fixed(1));
        let serial = run();
        set_parallelism(Parallelism::Fixed(8));
        let parallel = run();
        set_parallelism(Parallelism::Auto);
        assert_eq!(serial, parallel);
    }
}
