//! Threshold-free metrics: AUC-PR (average precision), AUC-ROC, best F1.

/// One point of the precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Score threshold that produced this point.
    pub threshold: f64,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
}

/// Sorts indices by descending score, ties broken by index for determinism.
fn ranked_indices(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

/// Area under the precision-recall curve, computed as **average precision**:
/// `AP = Σ_k (R_k − R_{k−1}) · P_k` sweeping the threshold over the sorted
/// scores. Tied scores are processed as a block so the result does not depend
/// on sort stability.
///
/// Returns 0.0 if there are no positive labels, 0.0 for empty input.
///
/// # Panics
/// Panics if `scores` and `labels` have different lengths.
pub fn auc_pr(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let total_pos = labels.iter().filter(|&&b| b).count();
    if total_pos == 0 || scores.is_empty() {
        return 0.0;
    }
    let order = ranked_indices(scores);
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    let mut i = 0;
    while i < order.len() {
        // Process the whole tie block at once.
        let mut j = i;
        let s = scores[order[i]];
        while j < order.len() && scores[order[j]] == s {
            if labels[order[j]] {
                tp += 1;
            } else {
                fp += 1;
            }
            j += 1;
        }
        let recall = tp as f64 / total_pos as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        ap += (recall - prev_recall) * precision;
        prev_recall = recall;
        i = j;
    }
    ap
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formulation,
/// with the standard tie correction (ties contribute half).
///
/// Returns 0.5 when either class is empty (no information).
pub fn auc_roc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos = labels.iter().filter(|&&b| b).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // Assign mid-ranks to tied scores.
    let order = ranked_indices(scores);
    let n = order.len();
    let mut rank = vec![0.0f64; n]; // rank 1 = highest score
    let mut i = 0;
    while i < n {
        let mut j = i;
        let s = scores[order[i]];
        while j < n && scores[order[j]] == s {
            j += 1;
        }
        let mid = (i + 1 + j) as f64 / 2.0; // average of ranks i+1 ..= j
        for &k in &order[i..j] {
            rank[k] = mid;
        }
        i = j;
    }
    // Positives should have *small* ranks (high scores). Convert to AUC.
    let pos_rank_sum: f64 = rank
        .iter()
        .zip(labels)
        .filter(|(_, &y)| y)
        .map(|(&r, _)| r)
        .sum();
    // Sum of ranks if positives were ranked best: 1 + 2 + ... + pos.
    let best = (pos * (pos + 1)) as f64 / 2.0;
    let u = pos_rank_sum - best; // number of (pos, neg) inversions
    1.0 - u / (pos as f64 * neg as f64)
}

/// Best F1 over all score thresholds, with the threshold that achieves it.
///
/// Returns `(0.0, +inf)` when there are no positives.
pub fn best_f1(scores: &[f64], labels: &[bool]) -> (f64, f64) {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let total_pos = labels.iter().filter(|&&b| b).count();
    if total_pos == 0 || scores.is_empty() {
        return (0.0, f64::INFINITY);
    }
    let order = ranked_indices(scores);
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut best = (0.0f64, f64::INFINITY);
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        let s = scores[order[i]];
        while j < order.len() && scores[order[j]] == s {
            if labels[order[j]] {
                tp += 1;
            } else {
                fp += 1;
            }
            j += 1;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / total_pos as f64;
        let f1 = if precision + recall < 1e-12 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        if f1 > best.0 {
            best = (f1, s);
        }
        i = j;
    }
    best
}

/// Precision and recall for `score >= threshold` predictions.
pub fn precision_recall_at(scores: &[f64], labels: &[bool], threshold: f64) -> PrPoint {
    let c = crate::Counts::at_threshold(scores, labels, threshold);
    PrPoint {
        threshold,
        precision: c.precision(),
        recall: c.recall(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_gives_auc_pr_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((auc_pr(&scores, &labels) - 1.0).abs() < 1e-12);
        assert!((auc_roc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_gives_auc_roc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(auc_roc(&scores, &labels) < 1e-12);
    }

    #[test]
    fn random_scores_auc_pr_near_prevalence() {
        // With constant scores everything ties: AP equals prevalence.
        let scores = vec![0.5; 1000];
        let labels: Vec<bool> = (0..1000).map(|i| i % 10 == 0).collect();
        let ap = auc_pr(&scores, &labels);
        assert!((ap - 0.1).abs() < 1e-9, "ap={ap}");
        let roc = auc_roc(&scores, &labels);
        assert!((roc - 0.5).abs() < 1e-9, "roc={roc}");
    }

    #[test]
    fn auc_pr_no_positives_is_zero() {
        assert_eq!(auc_pr(&[0.1, 0.2], &[false, false]), 0.0);
    }

    #[test]
    fn auc_is_invariant_to_monotone_transforms() {
        let scores = [0.1, 0.4, 0.35, 0.8, 0.05];
        let labels = [false, true, false, true, false];
        let transformed: Vec<f64> = scores.iter().map(|s| s * 100.0 + 3.0).collect();
        assert!((auc_pr(&scores, &labels) - auc_pr(&transformed, &labels)).abs() < 1e-12);
        assert!((auc_roc(&scores, &labels) - auc_roc(&transformed, &labels)).abs() < 1e-12);
    }

    #[test]
    fn best_f1_perfect_separator() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let (f1, thr) = best_f1(&scores, &labels);
        assert!((f1 - 1.0).abs() < 1e-12);
        assert!(thr >= 0.8);
    }

    #[test]
    fn auc_pr_handles_single_positive() {
        // Positive ranked 2nd of 4: AP = 1/2 (precision at its recall step).
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [false, true, false, false];
        assert!((auc_pr(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_roc_tie_correction() {
        // One positive tied with one negative at the top.
        let scores = [0.9, 0.9, 0.1];
        let labels = [true, false, false];
        // Tie contributes half: AUC = (1*0.5 + 1*1.0)/2 = 0.75.
        assert!((auc_roc(&scores, &labels) - 0.75).abs() < 1e-12);
    }
}
