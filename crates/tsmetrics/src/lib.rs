//! Evaluation metrics for time-series anomaly detection.
//!
//! The paper scores every TSAD model with point-wise **AUC-PR** (the area
//! under the precision-recall curve, computed as average precision) on the
//! anomaly scores it emits; that score is both the selection target
//! (`P(M_j(T_i))` in Def. 2.1) and the headline evaluation metric of every
//! table and figure. This crate implements AUC-PR plus the companions used in
//! the demonstration system (AUC-ROC, best F1, precision/recall at a
//! threshold).

mod curves;

pub use curves::{auc_pr, auc_roc, best_f1, precision_recall_at, PrPoint};

/// Binary classification counts at a fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Counts {
    /// Computes counts for `score >= threshold` predictions.
    ///
    /// # Panics
    /// Panics if `scores` and `labels` have different lengths.
    pub fn at_threshold(scores: &[f64], labels: &[bool], threshold: f64) -> Self {
        assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
        let mut c = Counts {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        for (&s, &y) in scores.iter().zip(labels) {
            match (s >= threshold, y) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision (1.0 when nothing is predicted positive).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall (0.0 when there are no positives).
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score (0.0 when precision+recall is 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r < 1e-12 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Accuracy of hard predictions against hard labels.
///
/// Returns 0 for empty input.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / predictions.len() as f64
}

/// Top-k accuracy: fraction of samples whose true label appears among the
/// `k` highest-probability classes. Used by the demo system's
/// "Top-K Validation Accuracy" panel.
///
/// # Panics
/// Panics if any probability row is empty or lengths mismatch.
pub fn top_k_accuracy(probabilities: &[Vec<f64>], labels: &[usize], k: usize) -> f64 {
    assert_eq!(probabilities.len(), labels.len(), "length mismatch");
    if probabilities.is_empty() {
        return 0.0;
    }
    let mut hits = 0;
    for (probs, &label) in probabilities.iter().zip(labels) {
        assert!(!probs.is_empty(), "empty probability row");
        let mut idx: Vec<usize> = (0..probs.len()).collect();
        idx.sort_by(|&a, &b| {
            probs[b]
                .partial_cmp(&probs[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        if idx.iter().take(k).any(|&i| i == label) {
            hits += 1;
        }
    }
    hits as f64 / probabilities.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_f1_basics() {
        let scores = [0.9, 0.8, 0.3, 0.1];
        let labels = [true, false, true, false];
        let c = Counts::at_threshold(&scores, &labels, 0.5);
        assert_eq!(
            c,
            Counts {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_prediction_has_precision_one() {
        let c = Counts::at_threshold(&[0.1, 0.2], &[true, false], 0.9);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 0.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert!((accuracy(&[1, 2, 3], &[1, 2, 0]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_accuracy_widens_with_k() {
        let probs = vec![vec![0.5, 0.3, 0.2], vec![0.1, 0.2, 0.7]];
        let labels = vec![1, 0];
        let top1 = top_k_accuracy(&probs, &labels, 1);
        let top2 = top_k_accuracy(&probs, &labels, 2);
        let top3 = top_k_accuracy(&probs, &labels, 3);
        assert_eq!(top1, 0.0);
        assert_eq!(top2, 0.5);
        assert_eq!(top3, 1.0);
    }
}
