//! The rule engine: seven contract rules plus the annotation grammar.
//!
//! Every rule is keyed to an invariant the workspace's tests pin
//! dynamically — bitwise-identical results at any `KD_THREADS`, every
//! route returning exactly once — and exists to catch *drift* toward
//! breaking those invariants before a test ever runs:
//!
//! | rule | contract |
//! |------|----------|
//! | `no-wallclock` | values never depend on wall time |
//! | `no-ambient-rng` | all randomness flows from seeded streams |
//! | `hash-iteration` | no iteration over randomized hash order |
//! | `unsafe-needs-safety` | every `unsafe` carries its proof obligation |
//! | `relaxed-ordering-audit` | `Relaxed` only on audited stat counters |
//! | `unbounded-wait` | `core::serve` waits are deadline-bounded |
//! | `no-hot-alloc` | profiled hot paths stay allocation-free |
//!
//! Rules report candidate findings; the engine suppresses those whose line
//! carries a `// kdlint: allow(<key>): <reason>` annotation and flags
//! annotations that are malformed (no reason) or unused (suppressing
//! nothing) so the allow-list can never silently rot.

use crate::lexer::{lex, Tok, Token};
use std::collections::{BTreeMap, BTreeSet};

/// A reported violation. `line` is 1-based.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed `kdlint: allow(<key>): <reason>` annotation.
#[derive(Debug, Clone)]
struct Allow {
    key: String,
    reason: String,
    /// Line the annotation comment sits on.
    at: u32,
    /// Code line the annotation suppresses findings on.
    target: u32,
}

/// Everything rules need about one file.
pub struct FileCtx {
    pub path: String,
    /// Non-comment tokens, in order.
    pub code: Vec<Token>,
    /// Comment text per line (merged when several share a line).
    comments: BTreeMap<u32, String>,
    /// Non-doc comment text per line — the only place annotations may
    /// live, so documentation *about* the grammar is never parsed as an
    /// annotation.
    plain_comments: BTreeMap<u32, String>,
    /// Lines containing at least one non-comment token.
    code_lines: BTreeSet<u32>,
    /// Raw source lines (for attribute-line detection).
    raw_lines: Vec<String>,
    allows: Vec<Allow>,
}

/// The canonical allow-keys, in rule order.
const ALLOW_KEYS: [&str; 6] = [
    "wallclock",
    "ambient-rng",
    "hash-iteration",
    "relaxed",
    "unbounded-wait",
    "hot-alloc",
];

impl FileCtx {
    pub fn new(path: &str, source: &str) -> Self {
        let tokens = lex(source);
        let mut code = Vec::new();
        let mut comments: BTreeMap<u32, String> = BTreeMap::new();
        let mut plain_comments: BTreeMap<u32, String> = BTreeMap::new();
        let mut code_lines = BTreeSet::new();
        for t in &tokens {
            match &t.kind {
                Tok::LineComment(text) | Tok::BlockComment(text) => {
                    // Doc comments keep the third delimiter char as the
                    // first byte of their text (`///x` → "/x", `//!x` →
                    // "!x", `/** */` → "* ", `/*! */` → "! "); plain
                    // comments start with whitespace or content.
                    let is_doc =
                        matches!(text.bytes().next(), Some(b'/') | Some(b'!') | Some(b'*'));
                    // A multi-line block comment marks every covered line,
                    // so SAFETY lookups and annotation targeting treat the
                    // whole block as comment lines.
                    for line in t.line..=t.end_line {
                        let slot = comments.entry(line).or_default();
                        if !slot.is_empty() {
                            slot.push(' ');
                        }
                        slot.push_str(text);
                        if !is_doc {
                            let slot = plain_comments.entry(line).or_default();
                            if !slot.is_empty() {
                                slot.push(' ');
                            }
                            slot.push_str(text);
                        }
                    }
                }
                _ => {
                    for line in t.line..=t.end_line {
                        code_lines.insert(line);
                    }
                    code.push(t.clone());
                }
            }
        }
        let raw_lines: Vec<String> = source.lines().map(str::to_string).collect();
        let mut ctx = Self {
            path: path.to_string(),
            code,
            comments,
            plain_comments,
            code_lines,
            raw_lines,
            allows: Vec::new(),
        };
        ctx.allows = ctx.parse_allows();
        ctx
    }

    /// Parses annotations out of the comment map. An annotation trailing
    /// code applies to its own line; an annotation alone on a line applies
    /// to the next code line (skipping further comment/attribute/blank
    /// lines, so annotations stack).
    fn parse_allows(&self) -> Vec<Allow> {
        let mut allows = Vec::new();
        for (&line, text) in &self.plain_comments {
            let mut rest = text.as_str();
            while let Some(pos) = rest.find("kdlint:") {
                let after = &rest[pos + "kdlint:".len()..];
                let spec = after.trim_start();
                let (key, reason) = parse_allow_spec(spec);
                let target = if self.code_lines.contains(&line) {
                    line
                } else {
                    self.next_code_line(line)
                };
                allows.push(Allow {
                    key,
                    reason,
                    at: line,
                    target,
                });
                rest = after;
            }
        }
        allows
    }

    /// The first code line after `line`, skipping comment-only, blank, and
    /// attribute lines. Returns 0 (no line) when nothing follows.
    fn next_code_line(&self, line: u32) -> u32 {
        let mut l = line + 1;
        loop {
            if self.code_lines.contains(&l) {
                return l;
            }
            let raw = match self.raw_lines.get(l as usize - 1) {
                Some(r) => r.trim(),
                None => return 0,
            };
            let skippable = raw.is_empty() || self.comments.contains_key(&l);
            if !skippable {
                return 0;
            }
            l += 1;
        }
    }

    /// Whether the contiguous comment/attribute block ending directly above
    /// `line` (or `line` itself) contains `SAFETY:`.
    fn has_safety_comment(&self, line: u32) -> bool {
        if self
            .comments
            .get(&line)
            .is_some_and(|c| c.contains("SAFETY:"))
        {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if let Some(text) = self.comments.get(&l) {
                if text.contains("SAFETY:") {
                    return true;
                }
                // A line that is comment-only continues the block; a line
                // with code ends it (its trailing comment was checked).
                if self.code_lines.contains(&l) {
                    return false;
                }
                continue;
            }
            let raw = self.raw_lines.get(l as usize - 1).map_or("", |r| r.trim());
            // Attribute lines (`#[...]`, `#![...]`) sit between a SAFETY
            // comment and the unsafe item without breaking contiguity.
            if raw.starts_with('#') && !self.code_lines.contains(&l) {
                continue;
            }
            return false;
        }
        false
    }
}

/// Splits `allow(<key>): <reason>` into its parts. Unknown shapes come
/// back with an empty key so the annotation check can flag them.
fn parse_allow_spec(spec: &str) -> (String, String) {
    let Some(body) = spec.strip_prefix("allow(") else {
        return (String::new(), String::new());
    };
    let Some(close) = body.find(')') else {
        return (String::new(), String::new());
    };
    let key = body[..close].trim().to_string();
    let after = body[close + 1..].trim_start();
    let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
    (key, reason)
}

/// One lint rule: a name, an allow-key, a path scope, and a token-level
/// check producing candidate findings (the engine applies allows).
pub trait Rule {
    /// Diagnostic name, e.g. `no-wallclock`.
    fn name(&self) -> &'static str;
    /// The key accepted in `kdlint: allow(<key>)`, empty if the rule has
    /// its own grammar (`unsafe-needs-safety` wants a SAFETY comment, not
    /// an allow).
    fn allow_key(&self) -> &'static str;
    /// Whether the rule runs on this workspace-relative path.
    fn applies(&self, path: &str) -> bool;
    /// Emits every candidate finding (allows are applied by the engine).
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>);
}

fn diag(ctx: &FileCtx, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        path: ctx.path.clone(),
        line,
        rule,
        message,
    }
}

fn in_bench(path: &str) -> bool {
    path.starts_with("crates/bench/")
}

// ---------------------------------------------------------------------
// no-wallclock
// ---------------------------------------------------------------------

/// `Instant` / `SystemTime` make values (or observable control flow)
/// depend on wall time, which breaks replay ≡ live. Allowed only at
/// annotated sites — deadline bounding and reported timings, never data.
pub struct NoWallclock;

impl Rule for NoWallclock {
    fn name(&self) -> &'static str {
        "no-wallclock"
    }
    fn allow_key(&self) -> &'static str {
        "wallclock"
    }
    fn applies(&self, path: &str) -> bool {
        // The bench crate exists to measure wall time.
        !in_bench(path)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        for t in &ctx.code {
            if let Some(name @ ("Instant" | "SystemTime")) = t.kind.ident() {
                out.push(diag(
                    ctx,
                    t.line,
                    self.name(),
                    format!(
                        "`{name}` reads the wall clock; results must not depend on real \
                         time — bound the site with a deadline argument or annotate why \
                         it can only affect latency"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// no-ambient-rng
// ---------------------------------------------------------------------

/// Ambient randomness (`thread_rng`, `rand::random`, `RandomState`) is
/// unseedable and unreplayable; all randomness must come from explicit
/// seeded streams.
pub struct NoAmbientRng;

impl Rule for NoAmbientRng {
    fn name(&self) -> &'static str {
        "no-ambient-rng"
    }
    fn allow_key(&self) -> &'static str {
        "ambient-rng"
    }
    fn applies(&self, _path: &str) -> bool {
        true
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for (i, t) in code.iter().enumerate() {
            match t.kind.ident() {
                Some(name @ ("thread_rng" | "RandomState")) => {
                    out.push(diag(
                        ctx,
                        t.line,
                        self.name(),
                        format!(
                            "`{name}` is ambient (unseeded) randomness; derive every \
                             random stream from an explicit seed"
                        ),
                    ));
                }
                // `rand::random` (possibly `rand::random::<T>()`).
                Some("rand")
                    if code.get(i + 1).is_some_and(|t| t.kind == Tok::PathSep)
                        && code.get(i + 2).and_then(|t| t.kind.ident()) == Some("random") =>
                {
                    out.push(diag(
                        ctx,
                        t.line,
                        self.name(),
                        "`rand::random` is ambient (unseeded) randomness; derive every \
                         random stream from an explicit seed"
                            .to_string(),
                    ));
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------
// hash-iteration
// ---------------------------------------------------------------------

/// Methods whose results surface iteration order.
const ITER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extend",
];

/// Iterating a `HashMap`/`HashSet` observes randomized (per-process)
/// order. The rule tracks bindings declared with a hash-container type or
/// constructor in the same file and flags iteration over them — switch to
/// `BTreeMap`/`BTreeSet`, or collect-and-sort before iterating.
pub struct HashIteration;

impl HashIteration {
    /// Binding names declared as hash containers: `name: HashMap<..>`
    /// (fields, lets, params — wrappers like `Mutex<HashMap<..>>`
    /// included) and `name = HashMap::new()/with_capacity(..)/from(..)`.
    fn tracked_bindings(ctx: &FileCtx) -> BTreeSet<String> {
        let code = &ctx.code;
        let mut tracked = BTreeSet::new();
        for (i, t) in code.iter().enumerate() {
            if !matches!(t.kind.ident(), Some("HashMap" | "HashSet")) {
                continue;
            }
            // Walk back over the type/path context to the nearest `:` or
            // `=` within the declaration, then take the ident before it.
            let window_start = i.saturating_sub(24);
            for j in (window_start..i).rev() {
                match &code[j].kind {
                    Tok::Punct(':') | Tok::Punct('=') => {
                        if let Some(Tok::Ident(name)) = code.get(j.wrapping_sub(1)).map(|t| &t.kind)
                        {
                            tracked.insert(name.clone());
                        }
                        break;
                    }
                    // `;`, `{`, `}` end the declaration: no binding found
                    // (e.g. a bare `use` import — importing is fine,
                    // iterating is what the rule is for).
                    Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
                    _ => {}
                }
            }
        }
        tracked
    }
}

impl Rule for HashIteration {
    fn name(&self) -> &'static str {
        "hash-iteration"
    }
    fn allow_key(&self) -> &'static str {
        "hash-iteration"
    }
    fn applies(&self, path: &str) -> bool {
        // Every crate whose output reaches results or stats. The bench
        // crate only times; everything else is in scope.
        !in_bench(path)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let tracked = Self::tracked_bindings(ctx);
        if tracked.is_empty() {
            return;
        }
        let code = &ctx.code;
        let mut flag = |line: u32, name: &str, how: &str| {
            out.push(diag(
                ctx,
                line,
                "hash-iteration",
                format!(
                    "{how} `{name}`, a HashMap/HashSet, observes randomized iteration \
                     order; use BTreeMap/BTreeSet or sort before iterating"
                ),
            ));
        };
        for (i, t) in code.iter().enumerate() {
            let Some(name) = t.kind.ident() else { continue };
            if !tracked.contains(name) {
                continue;
            }
            // `tracked.iter()` / `tracked.keys()` / ... method calls.
            if code.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('.')) {
                if let Some(m) = code.get(i + 2).and_then(|t| t.kind.ident()) {
                    if ITER_METHODS.contains(&m)
                        && code.get(i + 3).map(|t| &t.kind) == Some(&Tok::Punct('('))
                    {
                        flag(t.line, name, &format!("calling `.{m}()` on"));
                        continue;
                    }
                }
            }
            // `for x in tracked` — scan back for a `for`..`in` context on
            // the same statement.
            let window_start = i.saturating_sub(16);
            let mut saw_in = false;
            for j in (window_start..i).rev() {
                match code[j].kind.ident() {
                    Some("in") => saw_in = true,
                    Some("for") if saw_in => {
                        flag(t.line, name, "`for` loop over");
                        break;
                    }
                    _ => {
                        if matches!(code[j].kind, Tok::Punct(';') | Tok::Punct('{')) {
                            break;
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// unsafe-needs-safety
// ---------------------------------------------------------------------

/// Every `unsafe` block/impl/fn must state its proof obligation in a
/// `// SAFETY:` comment on the same line or the contiguous comment block
/// directly above.
pub struct UnsafeNeedsSafety;

impl Rule for UnsafeNeedsSafety {
    fn name(&self) -> &'static str {
        "unsafe-needs-safety"
    }
    fn allow_key(&self) -> &'static str {
        "" // the SAFETY comment *is* the annotation
    }
    fn applies(&self, _path: &str) -> bool {
        true
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        for t in &ctx.code {
            if t.kind.ident() == Some("unsafe") && !ctx.has_safety_comment(t.line) {
                out.push(diag(
                    ctx,
                    t.line,
                    self.name(),
                    "`unsafe` without a `// SAFETY:` comment — state the invariant that \
                     makes this sound, directly above the site"
                        .to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// relaxed-ordering-audit
// ---------------------------------------------------------------------

/// `Ordering::Relaxed` provides no happens-before edges; it is only safe
/// on audited stat counters (and RMW-unique ID/claim counters whose
/// payloads are published elsewhere), never on cross-thread control flow
/// like liveness flags. Every site must be annotated or upgraded.
pub struct RelaxedOrderingAudit;

impl Rule for RelaxedOrderingAudit {
    fn name(&self) -> &'static str {
        "relaxed-ordering-audit"
    }
    fn allow_key(&self) -> &'static str {
        "relaxed"
    }
    fn applies(&self, _path: &str) -> bool {
        true
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for (i, t) in code.iter().enumerate() {
            if t.kind.ident() == Some("Ordering")
                && code.get(i + 1).map(|t| &t.kind) == Some(&Tok::PathSep)
                && code.get(i + 2).and_then(|t| t.kind.ident()) == Some("Relaxed")
            {
                out.push(diag(
                    ctx,
                    t.line,
                    self.name(),
                    "`Ordering::Relaxed` is unaudited — annotate why no happens-before \
                     edge is needed (stat counter, RMW-unique claim), or upgrade the \
                     ordering if any thread branches on this value"
                        .to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// unbounded-wait
// ---------------------------------------------------------------------

/// Wait methods with no deadline parameter.
const UNBOUNDED_WAITS: [&str; 4] = ["wait", "wait_while", "recv", "join"];

/// The serving tier's totality contract: every route returns exactly
/// once, never hangs — so every wait in `core::serve` must carry a
/// timeout (`wait_timeout*`, `recv_timeout`, `wait_for`) or an annotation
/// explaining what bounds it.
pub struct UnboundedWait;

impl Rule for UnboundedWait {
    fn name(&self) -> &'static str {
        "unbounded-wait"
    }
    fn allow_key(&self) -> &'static str {
        "unbounded-wait"
    }
    fn applies(&self, path: &str) -> bool {
        path.starts_with("crates/core/src/serve/")
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for (i, t) in code.iter().enumerate() {
            if t.kind != Tok::Punct('.') {
                continue;
            }
            let Some(m) = code.get(i + 1).and_then(|t| t.kind.ident()) else {
                continue;
            };
            if !UNBOUNDED_WAITS.contains(&m)
                || code.get(i + 2).map(|t| &t.kind) != Some(&Tok::Punct('('))
            {
                continue;
            }
            // `join` is also `Path::join`/`slice::join`, which take an
            // argument — only the nullary call is a thread join.
            let nullary = code.get(i + 3).map(|t| &t.kind) == Some(&Tok::Punct(')'));
            if m != "join" || nullary {
                out.push(diag(
                    ctx,
                    code[i + 1].line,
                    self.name(),
                    format!(
                        "`.{m}()` can block forever; the serve totality contract requires \
                         a deadline-bounded wait (`wait_timeout*` / `wait_for` / \
                         `recv_timeout`) or an annotation stating what bounds it"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// no-hot-alloc
// ---------------------------------------------------------------------

/// The serving hot path's steady-state contract: after warmup, a request
/// is served without touching the allocator (the kdprof profile record
/// pins `ArenaGrowth == 0` dynamically; this rule drift-proofs it
/// statically). Functions marked `// kdprof: hot` — the ones the profile
/// showed on the per-request path — must not call `Vec::new`,
/// `.to_vec()`, or `.clone()`; scratch comes from the per-worker arena,
/// and cold branches (error completion, shutdown) carry an annotation
/// saying why they never run in steady state.
pub struct NoHotAlloc;

impl NoHotAlloc {
    /// Token-index ranges `[body_open, body_close)` of every function
    /// marked by a `// kdprof: hot` comment (trailing the signature line
    /// or on its own line directly above, attributes in between fine —
    /// the same targeting as allow-annotations).
    fn hot_ranges(ctx: &FileCtx) -> Vec<(usize, usize)> {
        let code = &ctx.code;
        let mut ranges = Vec::new();
        for (&line, text) in &ctx.plain_comments {
            if !text.contains("kdprof: hot") {
                continue;
            }
            let target = if ctx.code_lines.contains(&line) {
                line
            } else {
                ctx.next_code_line(line)
            };
            if target == 0 {
                continue;
            }
            // First `fn` at or after the marked line, then its body: the
            // brace block after the signature.
            let Some(fn_idx) = code
                .iter()
                .position(|t| t.line >= target && t.kind.ident() == Some("fn"))
            else {
                continue;
            };
            let Some(open) = code[fn_idx..]
                .iter()
                .position(|t| t.kind == Tok::Punct('{'))
                .map(|p| fn_idx + p)
            else {
                continue;
            };
            let mut depth = 0usize;
            let mut close = code.len();
            for (i, t) in code.iter().enumerate().skip(open) {
                match t.kind {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            close = i;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            ranges.push((open, close));
        }
        ranges
    }
}

impl Rule for NoHotAlloc {
    fn name(&self) -> &'static str {
        "no-hot-alloc"
    }
    fn allow_key(&self) -> &'static str {
        "hot-alloc"
    }
    fn applies(&self, path: &str) -> bool {
        // The profiled per-request path: the serving tier and the GEMM
        // kernel it bottoms out in. Train-time code may allocate.
        path.starts_with("crates/core/src/serve/") || path == "crates/tsnn/src/gemm.rs"
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
        let code = &ctx.code;
        for (start, close) in Self::hot_ranges(ctx) {
            for i in start..close {
                let t = &code[i];
                let Some(name) = t.kind.ident() else { continue };
                // `Vec::new(..)` / `Vec::with_capacity(..)`.
                if name == "Vec"
                    && code.get(i + 1).map(|t| &t.kind) == Some(&Tok::PathSep)
                    && matches!(
                        code.get(i + 2).and_then(|t| t.kind.ident()),
                        Some("new" | "with_capacity")
                    )
                {
                    let ctor = code[i + 2].kind.ident().unwrap_or("new");
                    out.push(diag(
                        ctx,
                        t.line,
                        self.name(),
                        format!(
                            "`Vec::{ctor}` allocates inside a `kdprof: hot` function; \
                             steady-state serving must be allocation-free — take scratch \
                             from the worker arena, or annotate why this branch is cold"
                        ),
                    ));
                    continue;
                }
                // `.to_vec()` / `.clone()` method calls.
                if matches!(name, "to_vec" | "clone")
                    && i > start
                    && code[i - 1].kind == Tok::Punct('.')
                    && code.get(i + 1).map(|t| &t.kind) == Some(&Tok::Punct('('))
                {
                    out.push(diag(
                        ctx,
                        t.line,
                        self.name(),
                        format!(
                            "`.{name}()` allocates inside a `kdprof: hot` function; \
                             steady-state serving must be allocation-free — borrow or \
                             reuse arena scratch, or annotate why this branch is cold"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// The seven contract rules, in reporting order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoWallclock),
        Box::new(NoAmbientRng),
        Box::new(HashIteration),
        Box::new(UnsafeNeedsSafety),
        Box::new(RelaxedOrderingAudit),
        Box::new(UnboundedWait),
        Box::new(NoHotAlloc),
    ]
}

/// Looks a rule up by its diagnostic name (`no-wallclock`, ...).
pub fn rule_by_name(name: &str) -> Option<Box<dyn Rule>> {
    default_rules().into_iter().find(|r| r.name() == name)
}

/// Lints one file with `rules`. `enforce_scope = false` runs every rule
/// regardless of its path scope (fixture mode). When `audit_allows` is
/// set, malformed and unused allow-annotations are violations too — on by
/// default for full-rule runs so the allow-list cannot rot.
pub fn lint_source(
    path: &str,
    source: &str,
    rules: &[Box<dyn Rule>],
    enforce_scope: bool,
    audit_allows: bool,
) -> Vec<Diagnostic> {
    let ctx = FileCtx::new(path, source);
    let mut out = Vec::new();
    let mut used: BTreeSet<(String, u32)> = BTreeSet::new();
    for rule in rules {
        if enforce_scope && !rule.applies(path) {
            continue;
        }
        let mut found = Vec::new();
        rule.check(&ctx, &mut found);
        for d in found {
            let allowed = !rule.allow_key().is_empty()
                && ctx
                    .allows
                    .iter()
                    .any(|a| a.key == rule.allow_key() && a.target == d.line && a.target != 0);
            if allowed {
                used.insert((rule.allow_key().to_string(), d.line));
            } else {
                out.push(d);
            }
        }
    }
    if audit_allows {
        for a in &ctx.allows {
            if a.key.is_empty() {
                out.push(diag(
                    &ctx,
                    a.at,
                    "annotation",
                    "malformed kdlint annotation — expected \
                     `kdlint: allow(<rule>): <reason>`"
                        .to_string(),
                ));
            } else if !ALLOW_KEYS.contains(&a.key.as_str()) {
                out.push(diag(
                    &ctx,
                    a.at,
                    "annotation",
                    format!(
                        "unknown allow key `{}` — one of: {}",
                        a.key,
                        ALLOW_KEYS.join(", ")
                    ),
                ));
            } else if a.reason.is_empty() {
                out.push(diag(
                    &ctx,
                    a.at,
                    "annotation",
                    format!(
                        "allow({}) carries no reason — every exemption must say *why* \
                         the contract still holds",
                        a.key
                    ),
                ));
            } else if !used.contains(&(a.key.clone(), a.target)) {
                out.push(diag(
                    &ctx,
                    a.at,
                    "annotation",
                    format!(
                        "unused allow({}) — the rule reports nothing on line {}; \
                         delete the annotation",
                        a.key, a.target
                    ),
                ));
            }
        }
    }
    out.sort();
    out
}
