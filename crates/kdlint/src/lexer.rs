//! A token-level Rust lexer.
//!
//! kdlint's rules match on identifier and punctuation tokens, so the one
//! thing the lexer must get right is *not* hallucinating tokens out of
//! places Rust hides arbitrary text: string literals (including raw
//! strings with any number of `#` guards and byte/C-string prefixes),
//! nested block comments, char literals, and lifetimes. Everything the
//! rules never inspect (literal values, exact number grammar) is collapsed
//! into a single [`Tok::Lit`] kind.
//!
//! The lexer is lossless about *comments* — they carry their text — because
//! two of the engine's mechanisms live in comments: `// SAFETY:`
//! justifications and `// kdlint: allow(rule): reason` annotations.

/// One lexed token. Lines are 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    /// Line the token starts on.
    pub line: u32,
    /// Line the token ends on (differs from `line` only for block comments
    /// and multi-line string literals).
    pub end_line: u32,
}

/// Token kinds, collapsed to what the rule engine matches on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers are stripped of `r#`).
    Ident(String),
    /// The `::` path separator (merged so a lone `:` is unambiguous).
    PathSep,
    /// Any other single punctuation character.
    Punct(char),
    /// A literal: string, raw string, byte string, char, byte, or number.
    Lit,
    /// A lifetime such as `'a` (kept distinct so char-literal
    /// disambiguation is testable).
    Lifetime,
    /// `// ...` comment text (without the slashes), including doc comments.
    LineComment(String),
    /// `/* ... */` comment text, nesting handled.
    BlockComment(String),
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The comment text, if this is a comment of either flavour.
    pub fn comment(&self) -> Option<&str> {
        match self {
            Tok::LineComment(s) | Tok::BlockComment(s) => Some(s),
            _ => None,
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<char> {
        // The lexer only dispatches on ASCII structure; multi-byte UTF-8
        // continuation bytes fall through to the Punct catch-all, which no
        // rule matches on. That keeps the hot loop byte-wise without
        // mis-lexing any construct kdlint cares about.
        self.src.get(self.pos + ahead).map(|&b| b as char)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consumes chars while `f` holds, returning the consumed text.
    fn eat_while(&mut self, f: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek(0) {
            if !f(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
        out
    }
}

/// Lexes `src` into tokens. Never fails: malformed input (e.g. an
/// unterminated string at EOF) just ends the token stream early — kdlint
/// lints code that rustc already accepts, so recovery niceties would be
/// dead weight.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                cur.bump();
                cur.bump();
                let text = cur.eat_while(|c| c != '\n');
                tokens.push(Token {
                    kind: Tok::LineComment(text),
                    line,
                    end_line: line,
                });
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut text = String::new();
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            text.push_str("/*");
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            if depth > 0 {
                                text.push_str("*/");
                            }
                            cur.bump();
                            cur.bump();
                        }
                        (Some(c), _) => {
                            text.push(c);
                            cur.bump();
                        }
                        (None, _) => break, // unterminated at EOF
                    }
                }
                tokens.push(Token {
                    kind: Tok::BlockComment(text),
                    line,
                    end_line: cur.line,
                });
            }
            '"' => {
                cur.bump();
                lex_string_body(&mut cur);
                tokens.push(Token {
                    kind: Tok::Lit,
                    line,
                    end_line: cur.line,
                });
            }
            '\'' => {
                lex_quote(&mut cur, &mut tokens, line);
            }
            ':' if cur.peek(1) == Some(':') => {
                cur.bump();
                cur.bump();
                tokens.push(Token {
                    kind: Tok::PathSep,
                    line,
                    end_line: line,
                });
            }
            c if c.is_ascii_digit() => {
                lex_number(&mut cur);
                tokens.push(Token {
                    kind: Tok::Lit,
                    line,
                    end_line: cur.line,
                });
            }
            c if is_ident_start(c) => {
                if let Some(tok) = lex_ident_or_prefixed_literal(&mut cur) {
                    tokens.push(Token {
                        kind: tok,
                        line,
                        end_line: cur.line,
                    });
                }
            }
            c => {
                cur.bump();
                tokens.push(Token {
                    kind: Tok::Punct(c),
                    line,
                    end_line: line,
                });
            }
        }
    }
    tokens
}

/// Consumes the body of a non-raw string literal (opening quote already
/// consumed), honouring escapes.
fn lex_string_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump(); // whatever is escaped, including `"` and `\`
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Consumes a raw string starting at `r`/`br`/`cr` — the cursor sits on
/// the first `#` or `"`. Returns false if this is not actually a raw
/// string opener (caller falls back to ident lexing).
fn lex_raw_string_body(cur: &mut Cursor) -> bool {
    let mut hashes = 0usize;
    while cur.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(hashes) != Some('"') {
        return false;
    }
    for _ in 0..=hashes {
        cur.bump(); // the hashes and the opening quote
    }
    // Scan for `"` followed by `hashes` hashes.
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            for i in 0..hashes {
                if cur.peek(i) != Some('#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            return true;
        }
    }
    true // unterminated at EOF
}

/// A `'` token: lifetime (`'a`), loop label (`'outer:`), or char literal
/// (`'x'`, `'\n'`, `'\u{1F600}'`).
fn lex_quote(cur: &mut Cursor, tokens: &mut Vec<Token>, line: u32) {
    cur.bump(); // the quote
    match (cur.peek(0), cur.peek(1)) {
        // `'a` where the following char is not a closing quote: lifetime
        // or loop label. (`'a'` is a char literal.)
        (Some(c), next) if is_ident_start(c) && next != Some('\'') => {
            cur.eat_while(is_ident_continue);
            tokens.push(Token {
                kind: Tok::Lifetime,
                line,
                end_line: line,
            });
        }
        // Char literal. Escapes (`'\''`, `'\u{..}'`) consume until the
        // closing quote; a plain char is `X'`.
        (Some('\\'), _) => {
            cur.bump();
            cur.bump(); // the escaped char (or `u` of `\u{..}`)
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
            }
            tokens.push(Token {
                kind: Tok::Lit,
                line,
                end_line: line,
            });
        }
        (Some(_), _) => {
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            tokens.push(Token {
                kind: Tok::Lit,
                line,
                end_line: line,
            });
        }
        (None, _) => {}
    }
}

/// A number literal: decimal, hex/oct/bin, float with optional exponent,
/// type suffix. The only subtlety is `1..n` — the dot is part of the float
/// only when followed by a digit.
fn lex_number(cur: &mut Cursor) {
    cur.eat_while(|c| c.is_alphanumeric() || c == '_');
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        let frac = cur.eat_while(|c| c.is_alphanumeric() || c == '_');
        // Exponent sign: `1.0e-5` stops the alphanumeric scan at `-`.
        if frac.ends_with(['e', 'E'])
            && matches!(cur.peek(0), Some('+') | Some('-'))
            && cur.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            cur.bump();
            cur.eat_while(|c| c.is_alphanumeric() || c == '_');
        }
    }
}

/// An identifier — or a literal with an identifier-looking prefix: raw
/// strings (`r"`, `r#"`), byte strings (`b"`, `br#"`), C strings (`c"`),
/// byte chars (`b'x'`), and raw identifiers (`r#ident`).
fn lex_ident_or_prefixed_literal(cur: &mut Cursor) -> Option<Tok> {
    let c = cur.peek(0)?;
    // Raw string / raw identifier dispatch on what follows the prefix.
    let prefix_len = match (c, cur.peek(1)) {
        ('r', Some('"')) | ('r', Some('#')) => 1,
        ('b', Some('"')) => 1,
        ('c', Some('"')) => 1,
        ('b', Some('r')) if matches!(cur.peek(2), Some('"') | Some('#')) => 2,
        ('b', Some('\'')) => {
            cur.bump(); // b
            let mut toks = Vec::new();
            lex_quote(cur, &mut toks, cur.line);
            return Some(Tok::Lit);
        }
        _ => 0,
    };
    if prefix_len > 0 {
        // `r#ident` (raw identifier) also matches the `r` + `#` arm; probe
        // whether a raw-string opener actually follows.
        let mut probe = prefix_len;
        while cur.peek(probe) == Some('#') {
            probe += 1;
        }
        if cur.peek(probe) == Some('"') {
            for _ in 0..prefix_len {
                cur.bump();
            }
            lex_raw_string_body(cur);
            return Some(Tok::Lit);
        }
        if c == 'r' && cur.peek(1) == Some('#') {
            cur.bump();
            cur.bump();
            let name = cur.eat_while(is_ident_continue);
            return Some(Tok::Ident(name));
        }
    }
    let name = cur.eat_while(is_ident_continue);
    Some(Tok::Ident(name))
}
