//! The `kdlint` CLI. Exit status 0 = clean, 1 = violations (or fixture
//! failures), 2 = usage/IO error — so CI can gate on it directly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
kdlint — determinism/totality lints for the KDSelector workspace

USAGE:
    kdlint --workspace [--root DIR]     lint the whole tree (scoped rules)
    kdlint --fixtures  [--root DIR]     self-test the fixture corpus
    kdlint --rule NAME FILE...          run one rule on files (scope bypassed)
    kdlint FILE...                      run all rules on files (scoped paths)
    kdlint --list-rules

Diagnostics print as `path:line: [rule] message`. Suppress a finding with
`// kdlint: allow(<rule>): <reason>` on (or directly above) the line; the
reason is mandatory and unused annotations are themselves violations.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("kdlint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut mode: Option<&str> = None;
    let mut rule_name: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" | "--fixtures" | "--list-rules" => {
                if mode.is_some() {
                    return Err(format!("{arg} conflicts with an earlier mode flag"));
                }
                mode = Some(match arg.as_str() {
                    "--workspace" => "workspace",
                    "--fixtures" => "fixtures",
                    _ => "list",
                });
            }
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--rule" => {
                rule_name = Some(it.next().ok_or("--rule needs a rule name")?.clone());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n\n{USAGE}"));
            }
            file => files.push(file.to_string()),
        }
    }

    match mode {
        Some("list") => {
            for rule in kdlint::default_rules() {
                println!("{}", rule.name());
            }
            Ok(true)
        }
        Some("workspace") => {
            let diags = kdlint::lint_workspace(&root).map_err(|e| e.to_string())?;
            report(&diags);
            Ok(diags.is_empty())
        }
        Some("fixtures") => {
            let dir = root.join("crates/kdlint/fixtures");
            let failures = kdlint::run_fixtures(&dir).map_err(|e| e.to_string())?;
            for f in &failures {
                eprintln!("fixture failure: {f}");
            }
            if failures.is_empty() {
                println!("kdlint: fixture corpus green");
            }
            Ok(failures.is_empty())
        }
        None if !files.is_empty() => {
            let (rules, enforce_scope, audit) = match &rule_name {
                Some(name) => {
                    let rule = kdlint::rule_by_name(name)
                        .ok_or_else(|| format!("no rule named {name} (see --list-rules)"))?;
                    // Single-rule runs bypass path scope (fixture/debug
                    // mode) and skip the allow-audit: an allow for a rule
                    // not being run would always look unused.
                    (vec![rule], false, false)
                }
                None => (kdlint::default_rules(), true, true),
            };
            let mut diags = Vec::new();
            for file in &files {
                let source = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?;
                let rel = normalize(file);
                diags.extend(kdlint::lint_source(
                    &rel,
                    &source,
                    &rules,
                    enforce_scope,
                    audit,
                ));
            }
            report(&diags);
            Ok(diags.is_empty())
        }
        _ => Err(format!("nothing to do\n\n{USAGE}")),
    }
}

/// Renders a user-supplied path with `/` separators so rule scopes (which
/// match on `/`-joined prefixes) apply regardless of platform.
fn normalize(path: &str) -> String {
    let mut out = String::new();
    for c in Path::new(path).components() {
        match c {
            std::path::Component::RootDir => out.push('/'),
            c => {
                if !out.is_empty() && !out.ends_with('/') {
                    out.push('/');
                }
                out.push_str(&c.as_os_str().to_string_lossy());
            }
        }
    }
    out
}

fn report(diags: &[kdlint::Diagnostic]) {
    for d in diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("kdlint: clean");
    } else {
        println!("kdlint: {} violation(s)", diags.len());
    }
}
