//! `kdlint` — the workspace's determinism/totality lint engine.
//!
//! Every layer of this repository rests on two statically-unenforced
//! invariants: **bitwise-identical results at any `KD_THREADS`** and
//! **every route returns exactly once**. The test suites pin those
//! dynamically; kdlint drift-proofs them mechanically by banning the
//! constructs that erode them — wall-clock reads, ambient RNG, hash-order
//! iteration, unjustified `unsafe`, unaudited `Ordering::Relaxed`,
//! unbounded waits in the serving tier, and allocation in `kdprof: hot`
//! functions. See [`rules`] for the rule catalogue and the
//! `// kdlint: allow(<rule>): <reason>` grammar.
//!
//! The crate is dependency-free by design (no syn, no proc-macro): it
//! carries its own token-level lexer ([`lexer`]) so it builds before — and
//! independently of — everything else in the tree.
//!
//! Run it:
//!
//! ```text
//! cargo run -p kdlint -- --workspace      # lint the tree (CI gate)
//! cargo run -p kdlint -- --fixtures      # self-test the rule corpus
//! cargo run -p kdlint -- --rule no-wallclock path/to/file.rs
//! ```

pub mod lexer;
pub mod rules;

pub use rules::{default_rules, lint_source, rule_by_name, Diagnostic, Rule};

use std::path::{Path, PathBuf};

/// Directories never linted: build output, VCS, the vendored dependency
/// shims (stand-ins for third-party crates, not product code), and
/// kdlint's own fixture corpus (which contains violations on purpose).
const EXCLUDED_PREFIXES: [&str; 4] = ["target", ".git", "shims", "crates/kdlint/fixtures"];

/// Collects every workspace `.rs` file under `root`, workspace-relative
/// with `/` separators, sorted for deterministic reporting order.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_path(root, &path);
            if EXCLUDED_PREFIXES
                .iter()
                .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
            {
                continue;
            }
            if entry.file_type()?.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Renders `path` relative to `root` with `/` separators (rule scopes
/// match on these prefixes, so they must not vary by platform). A path
/// outside `root` is rendered as given.
fn rel_path(root: &Path, path: &Path) -> String {
    let mut out = String::new();
    for c in path.strip_prefix(root).unwrap_or(path).components() {
        match c {
            std::path::Component::RootDir => out.push('/'),
            c => {
                if !out.is_empty() && !out.ends_with('/') {
                    out.push('/');
                }
                out.push_str(&c.as_os_str().to_string_lossy());
            }
        }
    }
    out
}

/// Lints the whole workspace under `root` with the default rules,
/// path scopes enforced and the allow-audit on.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let rules = default_rules();
    let mut out = Vec::new();
    for file in workspace_files(root)? {
        let source = std::fs::read_to_string(&file)?;
        let rel = rel_path(root, &file);
        out.extend(lint_source(&rel, &source, &rules, true, true));
    }
    Ok(out)
}

/// Runs the fixture corpus under `crates/kdlint/fixtures/<rule>/`: each
/// rule directory must hold an `ok.rs` the rule passes and a
/// `violation.rs` the rule flags (scope bypassed — fixtures stand in for
/// in-scope files). The special `annotation` directory exercises the
/// allow-grammar audit with the full engine. Returns failure messages
/// (empty = corpus green).
pub fn run_fixtures(fixtures_dir: &Path) -> std::io::Result<Vec<String>> {
    let mut failures = Vec::new();
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(fixtures_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    if dirs.is_empty() {
        failures.push(format!("no fixture directories under {fixtures_dir:?}"));
    }
    let mut seen_rules = Vec::new();
    for dir in dirs {
        let dir_name = dir.file_name().unwrap_or_default().to_string_lossy();
        let rule_name = dir_name.replace('_', "-");
        for case in ["ok.rs", "violation.rs"] {
            let path = dir.join(case);
            let source = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(err) => {
                    failures.push(format!("{}: missing fixture {case}: {err}", dir_name));
                    continue;
                }
            };
            let diags = if rule_name == "annotation" {
                // Annotation fixtures run the full engine: the grammar
                // audit is engine-level, not one rule's.
                lint_source(case, &source, &default_rules(), false, true)
            } else {
                let Some(rule) = rule_by_name(&rule_name) else {
                    failures.push(format!("{dir_name}: no rule named {rule_name}"));
                    break;
                };
                lint_source(case, &source, &[rule], false, true)
            };
            let expect_clean = case == "ok.rs";
            if expect_clean && !diags.is_empty() {
                failures.push(format!(
                    "{rule_name}/ok.rs must lint clean, got: {}",
                    diags
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                ));
            }
            if !expect_clean && diags.is_empty() {
                failures.push(format!(
                    "{rule_name}/violation.rs must be flagged, but linted clean"
                ));
            }
        }
        seen_rules.push(rule_name);
    }
    // The corpus must cover every shipped rule — a rule without fixtures
    // is a rule that can silently rot.
    for rule in default_rules() {
        if !seen_rules.iter().any(|r| r == rule.name()) {
            failures.push(format!("rule {} has no fixture directory", rule.name()));
        }
    }
    Ok(failures)
}
