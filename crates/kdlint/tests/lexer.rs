//! Lexer edge cases: the rules only stay false-positive-free if the lexer
//! never hallucinates identifier tokens out of literals or comments, and
//! never swallows real code into a mis-parsed literal.

use kdlint::lexer::{lex, Tok};

/// Identifier tokens in lexing order.
fn idents(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter_map(|t| t.kind.ident().map(str::to_string))
        .collect()
}

#[test]
fn hazard_words_inside_string_literals_are_not_idents() {
    let src = r#"let msg = "Instant::now() thread_rng unsafe join()";"#;
    assert_eq!(idents(src), ["let", "msg"]);
}

#[test]
fn raw_strings_with_hash_guards_hide_their_contents() {
    // The r#".."# body contains a quote and hazard words; one Lit, no
    // idents from the body, and the trailing code still lexes.
    let src = r##"let s = r#"say "Instant" and wait()"#; s.recv()"##;
    assert_eq!(idents(src), ["let", "s", "s", "recv"]);
    let lits = lex(src).iter().filter(|t| t.kind == Tok::Lit).count();
    assert_eq!(lits, 1);
}

#[test]
fn byte_and_c_string_prefixes_are_literals() {
    let src = "let a = b\"SystemTime\"; let b2 = br#\"thread_rng\"#; let c = c\"join\";";
    assert_eq!(idents(src), ["let", "a", "let", "b2", "let", "c"]);
}

#[test]
fn nested_block_comments_are_one_token() {
    let src = "/* outer /* inner unsafe */ still comment */ fn f() {}";
    let toks = lex(src);
    assert_eq!(
        toks[0].kind.comment(),
        Some(" outer /* inner unsafe */ still comment "),
        "nesting must not end the comment early"
    );
    assert_eq!(idents(src), ["fn", "f"]);
}

#[test]
fn multi_line_block_comment_tracks_end_line() {
    let src = "/* a\nb\nc */\nfn f() {}";
    let toks = lex(src);
    assert_eq!((toks[0].line, toks[0].end_line), (1, 3));
    let f = toks.iter().find(|t| t.kind.ident() == Some("fn")).unwrap();
    assert_eq!(f.line, 4);
}

#[test]
fn char_literal_versus_lifetime() {
    let src = "fn f<'a>(x: &'a u8) { let c = 'a'; let n = '\\n'; let q = '\\''; }";
    let toks = lex(src);
    let lifetimes = toks.iter().filter(|t| t.kind == Tok::Lifetime).count();
    let lits = toks.iter().filter(|t| t.kind == Tok::Lit).count();
    assert_eq!(lifetimes, 2, "two uses of 'a as a lifetime");
    assert_eq!(lits, 3, "'a', '\\n', '\\'' are char literals");
}

#[test]
fn path_separator_is_merged_and_lone_colon_survives() {
    let src = "let x: std::time::Instant = y;";
    let toks = lex(src);
    let pathseps = toks.iter().filter(|t| t.kind == Tok::PathSep).count();
    let colons = toks.iter().filter(|t| t.kind == Tok::Punct(':')).count();
    assert_eq!(pathseps, 2);
    assert_eq!(colons, 1, "the binding colon must stay a lone ':'");
}

#[test]
fn numbers_with_dots_and_exponents_do_not_eat_code() {
    // `1.0e-3` is one literal; `0..n` is two tokens around a range; `x.0`
    // must leave the following `.get` reachable.
    assert_eq!(idents("let a = 1.0e-3;"), ["let", "a"]);
    assert_eq!(idents("for i in 0..n {}"), ["for", "i", "in", "n"]);
    assert_eq!(idents("x.0.get()"), ["x", "get"]);
}

#[test]
fn raw_identifiers_are_stripped() {
    assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
}

#[test]
fn line_comments_keep_text_and_doc_marker() {
    let src = "// plain note\n/// doc note\n//! inner doc\nfn f() {}";
    let comments: Vec<String> = lex(src)
        .into_iter()
        .filter_map(|t| t.kind.comment().map(str::to_string))
        .collect();
    assert_eq!(comments, [" plain note", "/ doc note", "! inner doc"]);
}

#[test]
fn byte_char_literal_is_a_literal() {
    assert_eq!(idents("let b = b'x';"), ["let", "b"]);
}
