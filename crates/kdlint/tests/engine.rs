//! Rule-engine behaviour: per-rule detection, the allow-annotation
//! grammar, path scoping, the fixture corpus, and the meta-test that the
//! live workspace lints clean.

use kdlint::rules::{default_rules, lint_source, rule_by_name, Diagnostic};
use std::path::Path;

/// Lints `source` with one named rule, scope bypassed, audit on — the
/// same configuration the fixture runner uses.
fn one_rule(rule: &str, source: &str) -> Vec<Diagnostic> {
    let rule = rule_by_name(rule).expect("known rule");
    lint_source("test.rs", source, &[rule], false, true)
}

/// Lints `source` under a chosen workspace-relative path with the full
/// default rule set and scopes enforced.
fn scoped(path: &str, source: &str) -> Vec<Diagnostic> {
    lint_source(path, source, &default_rules(), true, true)
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------- rules

#[test]
fn wallclock_flags_instant_and_systemtime() {
    let diags = one_rule(
        "no-wallclock",
        "fn f() { let t = std::time::Instant::now(); }",
    );
    assert_eq!(rules_of(&diags), ["no-wallclock"]);
    let diags = one_rule("no-wallclock", "use std::time::SystemTime;");
    assert_eq!(diags.len(), 1);
}

#[test]
fn wallclock_in_a_string_is_invisible() {
    assert!(one_rule("no-wallclock", r#"fn f() { let m = "Instant"; }"#).is_empty());
}

#[test]
fn ambient_rng_flags_thread_rng_randomstate_and_rand_random() {
    let src = "fn f() { let mut r = thread_rng(); }";
    assert_eq!(one_rule("no-ambient-rng", src).len(), 1);
    let src = "use std::collections::hash_map::RandomState;";
    assert_eq!(one_rule("no-ambient-rng", src).len(), 1);
    let src = "fn f() -> f64 { rand::random() }";
    assert_eq!(one_rule("no-ambient-rng", src).len(), 1);
    // Seeded streams are the sanctioned path.
    let src = "fn f() { let r = StdRng::seed_from_u64(7); }";
    assert!(one_rule("no-ambient-rng", src).is_empty());
}

#[test]
fn hash_iteration_tracks_bindings_not_types() {
    // Iterating a HashMap-typed binding is flagged...
    let src = "fn f(m: &HashMap<u32, u32>) { for k in m.keys() {} }";
    assert_eq!(one_rule("hash-iteration", src).len(), 1);
    // ...point-wise probes of the same binding are fine...
    let src = "fn f(m: &HashMap<u32, u32>) -> bool { m.contains_key(&1) }";
    assert!(one_rule("hash-iteration", src).is_empty());
    // ...and BTreeMap iteration is the sanctioned replacement.
    let src = "fn f(m: &BTreeMap<u32, u32>) { for k in m.keys() {} }";
    assert!(one_rule("hash-iteration", src).is_empty());
}

#[test]
fn hash_iteration_catches_for_loops_over_sets() {
    let src = "fn f(seen: HashSet<u64>) { for v in seen { drop(v); } }";
    assert_eq!(one_rule("hash-iteration", src).len(), 1);
}

#[test]
fn unsafe_needs_safety_accepts_contiguous_comment_blocks() {
    let ok = "// SAFETY: exclusive access by construction.\nunsafe { go() }";
    assert!(one_rule("unsafe-needs-safety", ok).is_empty());
    let ok_two_lines =
        "// SAFETY: the caller holds the lock, so this\n// cannot race.\nunsafe { go() }";
    assert!(one_rule("unsafe-needs-safety", ok_two_lines).is_empty());
    let ok_same_line = "unsafe { go() } // SAFETY: single-threaded test.";
    assert!(one_rule("unsafe-needs-safety", ok_same_line).is_empty());
}

#[test]
fn unsafe_needs_safety_rejects_gaps_and_lowercase() {
    // A blank line breaks contiguity: the comment no longer justifies
    // the unsafe site it drifted away from.
    let gap = "// SAFETY: stale justification.\n\nunsafe { go() }";
    assert_eq!(one_rule("unsafe-needs-safety", gap).len(), 1);
    let lowercase = "// Safety: wrong convention.\nunsafe { go() }";
    assert_eq!(one_rule("unsafe-needs-safety", lowercase).len(), 1);
    let bare = "unsafe { go() }";
    assert_eq!(one_rule("unsafe-needs-safety", bare).len(), 1);
}

#[test]
fn relaxed_ordering_requires_an_audit_annotation() {
    let bare = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
    assert_eq!(one_rule("relaxed-ordering-audit", bare).len(), 1);
    let audited = "fn f(c: &AtomicU64) {\n    \
         // kdlint: allow(relaxed): stat counter, snapshot-only reads.\n    \
         c.fetch_add(1, Ordering::Relaxed);\n}";
    assert!(one_rule("relaxed-ordering-audit", audited).is_empty());
    // Stronger orderings need no annotation.
    let acq = "fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Acquire) }";
    assert!(one_rule("relaxed-ordering-audit", acq).is_empty());
}

#[test]
fn unbounded_wait_distinguishes_thread_join_from_path_join() {
    let thread_join = "fn f(h: JoinHandle<()>) { let _ = h.join(); }";
    assert_eq!(one_rule("unbounded-wait", thread_join).len(), 1);
    let path_join = "fn f(d: &Path) -> PathBuf { d.join(\"x.bin\") }";
    assert!(one_rule("unbounded-wait", path_join).is_empty());
    let recv = "fn f(rx: &Receiver<u8>) { let _ = rx.recv(); }";
    assert_eq!(one_rule("unbounded-wait", recv).len(), 1);
    let bounded = "fn f(rx: &Receiver<u8>, t: Duration) { let _ = rx.recv_timeout(t); }";
    assert!(one_rule("unbounded-wait", bounded).is_empty());
}

// ------------------------------------------------------------- scoping

#[test]
fn bench_crate_may_read_the_clock() {
    let src = "fn f() { let t = std::time::Instant::now(); }";
    assert!(scoped("crates/bench/src/lib.rs", src).is_empty());
    assert!(!scoped("crates/core/src/lib.rs", src).is_empty());
}

#[test]
fn unbounded_wait_only_applies_to_the_serving_tier() {
    let src = "fn f(h: JoinHandle<()>) { let _ = h.join(); }";
    assert!(scoped("crates/core/src/train/mod.rs", src).is_empty());
    assert_eq!(
        rules_of(&scoped("crates/core/src/serve/queue.rs", src)),
        ["unbounded-wait"]
    );
}

// -------------------------------------------------- annotation grammar

#[test]
fn trailing_allow_suppresses_its_own_line() {
    let src = "use std::time::Instant; \
               // kdlint: allow(wallclock): latency probe only.";
    assert!(one_rule("no-wallclock", src).is_empty());
}

#[test]
fn own_line_allow_targets_the_next_code_line_past_comments() {
    let src = "// kdlint: allow(wallclock): deadline budgeting only.\n\
               // (a plain comment between annotation and target is fine)\n\
               use std::time::Instant;";
    assert!(one_rule("no-wallclock", src).is_empty());
}

#[test]
fn an_allow_does_not_leak_to_later_lines() {
    let src = "// kdlint: allow(wallclock): covers the next line only.\n\
               use std::time::Instant;\n\
               fn f() { let t = Instant::now(); }";
    let diags = one_rule("no-wallclock", src);
    assert_eq!(diags.len(), 1, "the second site must still be flagged");
    assert_eq!(diags[0].line, 3);
}

#[test]
fn reasonless_unknown_and_unused_allows_are_violations() {
    let no_reason = "// kdlint: allow(wallclock):\nuse std::time::Instant;";
    let diags = one_rule("no-wallclock", no_reason);
    assert_eq!(rules_of(&diags), ["annotation"], "reason is mandatory");

    let unknown = "// kdlint: allow(clocks): not a rule.\nlet x = 1;";
    let diags = lint_source("t.rs", unknown, &default_rules(), false, true);
    assert_eq!(rules_of(&diags), ["annotation"]);

    let unused = "// kdlint: allow(wallclock): suppresses nothing.\nlet x = 1;";
    let diags = one_rule("no-wallclock", unused);
    assert_eq!(
        rules_of(&diags),
        ["annotation"],
        "unused allows must rot loudly"
    );
}

// -------------------------------------------------------- meta / corpus

#[test]
fn fixture_corpus_is_green() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let failures = kdlint::run_fixtures(&fixtures).expect("fixtures readable");
    assert!(
        failures.is_empty(),
        "fixture corpus failures: {failures:#?}"
    );
}

#[test]
fn the_live_workspace_lints_clean() {
    // The CI gate as a test: any regression that introduces a wall-clock
    // read, ambient RNG, hash iteration, bare unsafe, unaudited Relaxed,
    // or unbounded serve wait fails here too.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let diags = kdlint::lint_workspace(root).expect("workspace readable");
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(rendered.is_empty(), "workspace violations: {rendered:#?}");
}
