//! annotation grammar: fails three ways — a reason-less allow, an unknown
//! rule key, and an unused allow suppressing nothing.

pub fn idle() {
    // kdlint: allow(wallclock):
    let t = std::time::Instant::now();
    let _ = t;

    // kdlint: allow(clocks): not a rule name anyone knows
    let t2 = std::time::Instant::now();
    let _ = t2;

    // kdlint: allow(ambient-rng): nothing random happens on the next line
    let x = 42;
    let _ = x;
}
