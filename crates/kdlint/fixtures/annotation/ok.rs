//! annotation grammar: passes — well-formed, reasoned, *used* allows in
//! both placements: stacked above the target line and trailing on it.

// kdlint: allow(wallclock): fixture for annotation placement — the import
// only feeds the annotated probe below.
use std::time::Instant;

pub fn probe_nanos() -> u64 {
    let probe = Instant::now(); // kdlint: allow(wallclock): operator-log latency probe; never reaches a scored value
    probe.elapsed().as_nanos() as u64
}
