//! no-ambient-rng: passes — randomness is derived from explicit seeds.

use rand::{Rng, SeedableRng, StdRng};

pub fn seeded_draw(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    // The ident `random_range` is fine; only ambient sources are banned.
    rng.random_range(0.0..1.0)
}

pub fn described() -> &'static str {
    "thread_rng inside a string literal is not a call"
}
