//! no-ambient-rng: fails — three ambient randomness sources.

use rand::thread_rng;
use std::collections::hash_map::RandomState;

pub fn unseeded() -> f64 {
    let mut rng = thread_rng();
    let _state = RandomState::new();
    let _coin: bool = rand::random();
    rng.gen()
}
