//! unbounded-wait: fails — a join and a receive that can block forever.

use std::sync::mpsc::Receiver;
use std::thread::JoinHandle;

pub fn collect(worker: JoinHandle<u64>, inbox: Receiver<u64>) -> u64 {
    let first = inbox.recv().unwrap_or(0);
    first + worker.join().unwrap_or(0)
}
