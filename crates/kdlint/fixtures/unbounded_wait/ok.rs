//! unbounded-wait: passes — deadline-bounded waits, plus one annotated
//! idle sleep whose bound is the shutdown protocol.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

pub fn bounded(ready: &Condvar, flag: &Mutex<bool>, budget: Duration) -> bool {
    let guard = flag.lock().unwrap();
    let (guard, timeout) = ready
        .wait_timeout_while(guard, budget, |done| !*done)
        .unwrap();
    drop(guard);
    !timeout.timed_out()
}

pub fn idle(ready: &Condvar, flag: &Mutex<bool>) {
    let guard = flag.lock().unwrap();
    // kdlint: allow(unbounded-wait): idle worker parking — shutdown sets
    // the flag under the same mutex and notifies, so this wait is bounded
    // by the shutdown protocol, not by a timer.
    drop(ready.wait_while(guard, |done| !*done).unwrap());
}
