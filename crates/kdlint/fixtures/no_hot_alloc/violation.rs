//! no-hot-alloc: fails — a hot function that allocates per request.

// kdprof: hot
pub fn serve(batch: &[f32]) -> Vec<f32> {
    let mut out = Vec::new();
    for v in batch {
        out.push(v * 2.0);
    }
    let echo = batch.to_vec();
    drop(echo);
    out.clone()
}
