//! no-hot-alloc: passes — the hot function works in borrowed/arena
//! scratch, one annotated cold-branch clone, and an unmarked helper that
//! may allocate freely.

/// Scores one batch into caller-provided scratch. No allocation on the
/// steady-state path; the error completion clones only when the batch is
/// malformed, which the admission contract rules out after warmup.
// kdprof: hot
pub fn serve_into(batch: &[f32], scratch: &mut [f32], err: &String) -> Result<(), String> {
    if batch.len() != scratch.len() {
        // kdlint: allow(hot-alloc): malformed-batch error path — admission
        // checks lengths, so steady state never reaches this branch.
        return Err(err.clone());
    }
    for (out, v) in scratch.iter_mut().zip(batch) {
        *out = v * 2.0;
    }
    Ok(())
}

/// Not marked hot: setup-time code may allocate.
pub fn warmup(n: usize) -> Vec<f32> {
    let mut scratch = Vec::with_capacity(n);
    scratch.resize(n, 0.0);
    scratch
}
