//! relaxed-ordering-audit: passes — a stat counter with a written reason,
//! and an upgraded liveness flag needing no exemption.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Stats {
    served: AtomicU64,
    alive: AtomicBool,
}

impl Stats {
    pub fn record(&self) {
        // kdlint: allow(relaxed): stat counter — monotonic tally read only
        // for reporting; no thread branches on it and no data is published
        // through it.
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    pub fn mark_dead(&self) {
        self.alive.store(false, Ordering::Release);
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }
}
