//! relaxed-ordering-audit: fails — a Relaxed liveness flag other threads
//! branch on, with no audit annotation.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Worker {
    alive: AtomicBool,
}

impl Worker {
    pub fn should_respawn(&self) -> bool {
        !self.alive.load(Ordering::Relaxed)
    }
}
