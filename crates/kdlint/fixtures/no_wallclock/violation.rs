//! no-wallclock: fails — a raw wall-clock read with no annotation.

use std::time::Instant;

pub fn jitter_seed() -> u64 {
    // Seeding anything from the clock makes replay impossible.
    Instant::now().elapsed().as_nanos() as u64
}
