//! no-wallclock: passes — deadline arithmetic is annotated with a reason,
//! and clock-y words inside strings/comments are not code.

use std::time::Duration;

/// Mentions Instant and SystemTime in a doc comment — comments are not code.
pub fn budget(after: Duration) -> Duration {
    let banner = "Instant::now() in a string literal is data, not a clock read";
    let _ = banner;
    after / 2
}

// kdlint: allow(wallclock): deadline bound only — the value it produces
// bounds a wait's latency and never reaches any scored result.
pub fn deadline_from(now: std::time::Instant, budget: Duration) -> std::time::Instant {
    now + budget
}
