//! hash-iteration: fails — iterating hash containers leaks randomized
//! per-process order into results.

use std::collections::{HashMap, HashSet};

pub fn first_key(totals: &HashMap<String, f64>) -> Option<&String> {
    // `.keys()` order differs between runs.
    totals.keys().next()
}

pub fn drain_all(mut seen: HashSet<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for v in seen.drain() {
        out.push(v);
    }
    out
}
