//! hash-iteration: passes — BTreeMap iterates in key order, and the
//! HashMap here is only probed point-wise (get/insert/entry), never
//! iterated.

use std::collections::{BTreeMap, HashMap};

pub fn ordered_sum(scores: &BTreeMap<String, f64>) -> f64 {
    scores.values().sum()
}

pub fn memo(cache: &mut HashMap<u64, f64>, key: u64) -> f64 {
    *cache.entry(key).or_insert_with(|| (key as f64).sqrt())
}
