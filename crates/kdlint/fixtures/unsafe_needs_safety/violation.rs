//! unsafe-needs-safety: fails — no SAFETY comment anywhere near the block.

pub fn read_first(values: &[u32]) -> u32 {
    // A comment that is not a SAFETY justification does not count.
    unsafe { *values.as_ptr() }
}
