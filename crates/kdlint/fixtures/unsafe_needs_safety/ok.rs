//! unsafe-needs-safety: passes — every `unsafe` states its obligation.

use std::cell::UnsafeCell;

pub struct OneShot<T>(UnsafeCell<Option<T>>);

// SAFETY: the execution protocol hands each cell to exactly one thread
// (claimed once from an atomic counter), so aliased mutation is impossible.
unsafe impl<T: Send> Sync for OneShot<T> {}

pub fn take<T>(slot: &OneShot<T>) -> Option<T> {
    // SAFETY: the caller holds the unique claim on this slot (see the
    // Sync justification above), so no other reference is live.
    unsafe { (*slot.0.get()).take() }
}
