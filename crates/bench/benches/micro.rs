//! Criterion microbenchmarks of the substrates.
//!
//! Not a paper table — these quantify the building blocks so regressions in
//! the hot paths (conv backward, detector scoring, LSH, pruning plans) are
//! visible. Sample counts are kept small; the macro tables dominate runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use kdselector_core::prune::{PruneState, PruningStrategy};
use rand::SeedableRng;
use std::hint::black_box;
use tsad_models::{Detector, ModelId};
use tsfeatures::MiniRocket;
use tslsh::SimHash;
use tsnn::layers::{Conv1d, Layer, MultiHeadSelfAttention};
use tsnn::loss::info_nce;
use tsnn::Tensor;

fn bench_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            (2.0 * std::f64::consts::PI * t as f64 / 25.0).sin()
                + 0.1 * ((t * 2654435761) % 1000) as f64 / 1000.0
        })
        .collect()
}

/// Matmul shapes drawn from the selector architectures: MKI projection MLP
/// layers (`arch.feature_dim() ≈ 64` → 256 hidden → 64) forward and
/// backward, plus a square stress shape for cache-blocking headroom. The
/// wider shape sweep (InfoNCE similarity, classifier head) lives in the
/// `micro_kernels` bin, which also records `BENCH_micro.json`.
fn matmul_kernel_benches(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut mk = |shape: &[usize]| {
        use rand::Rng as _;
        let numel: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..numel).map(|_| rng.random_range(-0.5f32..0.5)).collect(),
        )
    };
    let mut group = c.benchmark_group("gemm");
    group.sample_size(12);

    let cases: Vec<(&str, Tensor, Tensor)> = vec![
        ("mlp_fc1_64x256x64", mk(&[64, 64]), mk(&[64, 256])),
        ("mlp_fc2_64x64x256", mk(&[64, 256]), mk(&[256, 64])),
        ("square_256", mk(&[256, 256]), mk(&[256, 256])),
    ];
    for (name, a, b) in &cases {
        group.bench_function(&format!("matmul_{name}"), |bch| {
            bch.iter(|| black_box(a.matmul(black_box(b))))
        });
        group.bench_function(&format!("matmul_naive_{name}"), |bch| {
            bch.iter(|| black_box(a.matmul_naive(black_box(b))))
        });
    }
    // Backward-pass shapes: dW = xᵀ·g and dx = g·Wᵀ for the fc1 layer.
    let x = mk(&[64, 64]);
    let g = mk(&[64, 256]);
    let w = mk(&[64, 256]);
    group.bench_function("t_matmul_dw_64x256x64", |bch| {
        bch.iter(|| black_box(x.t_matmul(black_box(&g))))
    });
    group.bench_function("matmul_t_dx_64x64x256", |bch| {
        bch.iter(|| black_box(g.matmul_t(black_box(&w))))
    });
    group.finish();
}

fn conv1d_benches(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut conv = Conv1d::new(8, 16, 5, &mut rng);
    let x = Tensor::from_vec(&[16, 8, 64], vec![0.1; 16 * 8 * 64]);
    c.bench_function("conv1d_forward_16x8x64", |b| {
        b.iter(|| black_box(conv.forward(black_box(&x), false)))
    });
    c.bench_function("conv1d_forward_backward_16x8x64", |b| {
        b.iter(|| {
            let y = conv.forward(black_box(&x), true);
            black_box(conv.backward(&y))
        })
    });
}

fn attention_bench(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut attn = MultiHeadSelfAttention::new(32, 4, &mut rng);
    let x = Tensor::from_vec(&[8, 16, 32], vec![0.05; 8 * 16 * 32]);
    c.bench_function("attention_forward_8x16x32", |b| {
        b.iter(|| black_box(attn.forward(black_box(&x), false)))
    });
}

fn detector_benches(c: &mut Criterion) {
    let series = bench_series(1200);
    let mut group = c.benchmark_group("detectors_1200pts");
    group.sample_size(10);
    for (name, det) in [
        (
            "HBOS",
            Box::new(tsad_models::hbos::Hbos::default_config()) as Box<dyn Detector>,
        ),
        (
            "IForest",
            Box::new(tsad_models::iforest::IForest::windows(1)),
        ),
        (
            "MP",
            Box::new(tsad_models::mp::MatrixProfile::default_config()),
        ),
        ("POLY", Box::new(tsad_models::poly::Poly::default_config())),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(det.score(black_box(&series))))
        });
        assert!(det.id().index() < ModelId::ALL.len());
    }
    group.finish();
}

fn lsh_bench(c: &mut Criterion) {
    let hasher = SimHash::new(320, 14, 3);
    let v: Vec<f64> = (0..320).map(|i| (i as f64 * 0.37).sin()).collect();
    c.bench_function("simhash_14bit_320d", |b| {
        b.iter(|| black_box(hasher.hash(black_box(&v))))
    });
}

fn minirocket_bench(c: &mut Criterion) {
    let windows: Vec<Vec<f64>> = (0..8)
        .map(|s| (0..64).map(|t| ((t + s * 3) as f64 * 0.2).sin()).collect())
        .collect();
    let rocket = MiniRocket::fit(&windows, 2, 0);
    c.bench_function("minirocket_transform_64pt", |b| {
        b.iter(|| black_box(rocket.transform(black_box(&windows[0]))))
    });
}

fn infonce_bench(c: &mut Criterion) {
    let zt = Tensor::from_vec(
        &[64, 64],
        (0..4096)
            .map(|i| ((i * 7 % 97) as f32 - 48.0) * 0.01)
            .collect(),
    );
    let zk = Tensor::from_vec(
        &[64, 64],
        (0..4096)
            .map(|i| ((i * 13 % 89) as f32 - 44.0) * 0.01)
            .collect(),
    );
    c.bench_function("infonce_64x64", |b| {
        b.iter(|| black_box(info_nce(black_box(&zt), black_box(&zk), 0.1, None)))
    });
}

fn prune_plan_bench(c: &mut Criterion) {
    let n = 4000;
    let inputs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..64)
                .map(|j| ((i * 31 + j * 7) % 113) as f64 * 0.01)
                .collect()
        })
        .collect();
    c.bench_function("pa_plan_4000_samples", |b| {
        b.iter(|| {
            let mut st = PruneState::new(
                PruningStrategy::Pa {
                    ratio: 0.8,
                    lsh_bits: 14,
                    bins: 8,
                    anneal: 0.125,
                },
                Some(&inputs),
                n,
                7,
            );
            let idx: Vec<usize> = (0..n).collect();
            let losses: Vec<f64> = (0..n).map(|i| (i % 100) as f64 * 0.01).collect();
            st.record_losses(&idx, &losses);
            black_box(st.plan_epoch(1, 10))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = matmul_kernel_benches, conv1d_benches, attention_bench, detector_benches, lsh_bench, minirocket_bench, infonce_bench, prune_plan_bench
}
criterion_main!(benches);
