//! Fig. 4 / Table 9 — AUC-PR of ten model-selection solutions.
//!
//! Five non-NN baselines (KNN, SVC, AdaBoost, RandomForest on TSFresh-style
//! features; Rocket = MiniRocket + ridge), four standard NN selectors
//! (ConvNet, ResNet, InceptionTime, Transformer), and **Ours** — ResNet
//! trained with KDSelector's PISL & MKI (PA excluded, the paper's accuracy
//! protocol). One column per method, one row per test dataset family.
//!
//! ```sh
//! cargo bench -p kdselector-bench --bench fig4_baselines
//! ```

use kdselector_bench::{print_table, record_result, report_json, Scale};
use kdselector_core::eval::reference_points;
use kdselector_core::nonnn::FeatureModel;
use kdselector_core::train::TrainConfig;
use kdselector_core::Architecture;

fn main() {
    let pipeline = Scale::from_env().prepare();
    let base = pipeline.config.train;

    let mut methods: Vec<String> = Vec::new();
    let mut reports = Vec::new();
    let mut times = Vec::new();

    // Non-NN baselines.
    for kind in [
        FeatureModel::Knn,
        FeatureModel::Svc,
        FeatureModel::AdaBoost,
        FeatureModel::RandomForest,
    ] {
        eprintln!("[fig4] {} ...", kind.name());
        let (report, seconds) = pipeline.run_feature_baseline(kind);
        methods.push(kind.name().to_string());
        reports.push(report);
        times.push(seconds);
    }
    eprintln!("[fig4] Rocket ...");
    let (rocket_report, rocket_seconds) = pipeline.run_rocket_baseline();
    methods.push("Rocket".to_string());
    reports.push(rocket_report);
    times.push(rocket_seconds);

    // Standard NN selectors.
    for arch in Architecture::ALL {
        eprintln!("[fig4] {} ...", arch.name());
        let cfg = TrainConfig { arch, ..base };
        let outcome = pipeline.train_nn_with(&cfg, arch.name());
        methods.push(arch.name().to_string());
        times.push(outcome.stats.train_seconds);
        reports.push(outcome.report);
    }

    // Ours: ResNet + PISL & MKI.
    eprintln!("[fig4] Ours (ResNet + KDSelector) ...");
    let ours_cfg = TrainConfig {
        epochs: base.epochs,
        width: base.width,
        ..TrainConfig::knowledge_enhanced(Architecture::ResNet)
    };
    let ours = pipeline.train_nn_with(&ours_cfg, "Ours");
    methods.push("Ours".to_string());
    times.push(ours.stats.train_seconds);
    reports.push(ours.report);

    let refs: Vec<&_> = reports.iter().collect();
    print_table(
        "Fig. 4: AUC-PR of different model-selection solutions",
        &methods,
        &refs,
        Some(&times),
    );

    // Context rows: oracle and best fixed model.
    let refs_points = reference_points(&pipeline.test_perf);
    println!(
        "\nOracle (per-series best model): {:.4}; best single model: {} at {:.4}",
        refs_points.oracle, refs_points.best_single.0, refs_points.best_single.1
    );
    let ours_avg = reports.last().unwrap().average_auc_pr();
    let best_baseline = reports[..reports.len() - 1]
        .iter()
        .map(|r| r.average_auc_pr())
        .fold(f64::MIN, f64::max);
    println!(
        "Shape check vs paper: Ours ({ours_avg:.4}) vs best baseline ({best_baseline:.4}) — \
         paper has Ours best on average (0.46 vs ≤0.44)"
    );

    let json = serde_json::json!({
        "figure": "4",
        "methods": methods,
        "results": reports
            .iter()
            .zip(&times)
            .map(|(r, &t)| report_json(r, t))
            .collect::<Vec<_>>(),
        "oracle": refs_points.oracle,
        "best_single_model": refs_points.best_single.0.name(),
        "best_single_model_auc": refs_points.best_single.1,
    });
    record_result("fig4_baselines", &json);
}
