//! Table 2 / Table 7 — pruning-based acceleration.
//!
//! Full data vs +InfoBatch vs +PA, all with PISL and MKI enabled (the
//! paper's protocol for evaluating PA). Reports per-dataset AUC-PR, training
//! time, the time saved relative to full data, and the fraction of sample
//! visits each strategy actually performed.
//!
//! ```sh
//! cargo bench -p kdselector-bench --bench table2_pa
//! ```

use kdselector_bench::{print_table, record_result, report_json, Scale};
use kdselector_core::prune::PruningStrategy;
use kdselector_core::train::TrainConfig;

fn main() {
    let pipeline = Scale::from_env().prepare();
    let base = TrainConfig::knowledge_enhanced(pipeline.config.train.arch);
    let base = TrainConfig {
        epochs: pipeline.config.train.epochs,
        width: pipeline.config.train.width,
        ..base
    };

    let variants: Vec<(&str, PruningStrategy)> = vec![
        ("Full data", PruningStrategy::None),
        ("+InfoBatch", PruningStrategy::info_batch_default()),
        ("+PA (Ours)", PruningStrategy::pa_default()),
    ];

    let mut methods = Vec::new();
    let mut reports = Vec::new();
    let mut times = Vec::new();
    let mut visited = Vec::new();
    for (name, pruning) in variants {
        eprintln!("[table2] training {name} ...");
        let cfg = TrainConfig { pruning, ..base };
        let outcome = pipeline.train_nn_with(&cfg, name);
        methods.push(name.to_string());
        times.push(outcome.stats.train_seconds);
        visited.push(outcome.stats.examined_fraction());
        reports.push(outcome.report);
    }

    let refs: Vec<&_> = reports.iter().collect();
    print_table(
        "Table 2: Results of PA (PISL & MKI kept on, ResNet)",
        &methods,
        &refs,
        Some(&times),
    );
    print!("{:<14}", "Visited (%)");
    for v in &visited {
        print!("{:>15.1}", v * 100.0);
    }
    println!();
    print!("{:<14}", "Time saved");
    for t in &times {
        print!("{:>14.1}%", (1.0 - t / times[0]) * 100.0);
    }
    println!();

    println!("\nShape check vs paper:");
    println!("  paper: InfoBatch −39.1% time (−0.006 AUC), PA −58.3% time (−0.009 AUC)");
    println!(
        "  ours:  InfoBatch −{:.1}% time ({:+.3} AUC), PA −{:.1}% time ({:+.3} AUC)",
        (1.0 - times[1] / times[0]) * 100.0,
        reports[1].average_auc_pr() - reports[0].average_auc_pr(),
        (1.0 - times[2] / times[0]) * 100.0,
        reports[2].average_auc_pr() - reports[0].average_auc_pr(),
    );

    let json = serde_json::json!({
        "table": "2",
        "methods": methods,
        "visited_fraction": visited,
        "results": reports
            .iter()
            .zip(&times)
            .map(|(r, &t)| report_json(r, t))
            .collect::<Vec<_>>(),
    });
    record_result("table2_pa", &json);
}
