//! Table 1 / Table 6 — PISL & MKI ablation.
//!
//! Standard vs +PISL vs +MKI vs +PISL&MKI on the ResNet selector, with PA
//! disabled (the paper's accuracy-comparison protocol). Reports per-dataset
//! AUC-PR, the average, and total training time.
//!
//! ```sh
//! cargo bench -p kdselector-bench --bench table1_pisl_mki
//! KDSEL_SCALE=quick cargo bench -p kdselector-bench --bench table1_pisl_mki
//! ```

use kdselector_bench::{print_table, record_result, report_json, Scale};
use kdselector_core::train::{MkiConfig, PislConfig, TrainConfig};

fn main() {
    let pipeline = Scale::from_env().prepare();
    let base = pipeline.config.train;

    let variants: Vec<(&str, TrainConfig)> = vec![
        ("Standard", base),
        (
            "+PISL",
            TrainConfig {
                pisl: Some(PislConfig::default()),
                ..base
            },
        ),
        (
            "+MKI",
            TrainConfig {
                mki: Some(MkiConfig::default()),
                ..base
            },
        ),
        (
            "+PISL&MKI",
            TrainConfig {
                pisl: Some(PislConfig::default()),
                mki: Some(MkiConfig::default()),
                ..base
            },
        ),
    ];

    let mut methods = Vec::new();
    let mut reports = Vec::new();
    let mut times = Vec::new();
    for (name, cfg) in variants {
        eprintln!("[table1] training {name} ...");
        let outcome = pipeline.train_nn_with(&cfg, name);
        methods.push(name.to_string());
        times.push(outcome.stats.train_seconds);
        reports.push(outcome.report);
    }

    let refs: Vec<&_> = reports.iter().collect();
    print_table(
        "Table 1: Results of PISL and MKI (AUC-PR per dataset, ResNet)",
        &methods,
        &refs,
        Some(&times),
    );

    // Paper-shape summary (reported, not asserted — synthetic substrate).
    let standard = reports[0].average_auc_pr();
    let both = reports[3].average_auc_pr();
    println!("\nShape check vs paper:");
    println!(
        "  paper: Standard 0.421 → +PISL&MKI 0.461 (Δ +0.040); ours: {:.3} → {:.3} (Δ {:+.3})",
        standard,
        both,
        both - standard
    );
    println!(
        "  knowledge overhead: paper ≈0% time; ours {:+.1}%",
        (times[3] / times[0] - 1.0) * 100.0
    );

    let json = serde_json::json!({
        "table": "1",
        "methods": methods,
        "results": reports
            .iter()
            .zip(&times)
            .map(|(r, &t)| report_json(r, t))
            .collect::<Vec<_>>(),
        "oracle": pipeline.test_perf.oracle_mean(),
    });
    record_result("table1_pisl_mki", &json);
}
