//! Table 3 / Table 8 — KDSelector across architectures.
//!
//! For ResNet, InceptionTime and Transformer: the default selector vs the
//! KDSelector-enhanced one. Per the paper's protocol, the *accuracy* column
//! of "+KDSelector" uses PISL&MKI without pruning, while the *time saved*
//! column compares the fully enhanced (PISL&MKI&PA) run against the default.
//!
//! ```sh
//! cargo bench -p kdselector-bench --bench table3_architectures
//! ```

use kdselector_bench::{record_result, report_json, Scale};
use kdselector_core::train::TrainConfig;
use kdselector_core::Architecture;

fn main() {
    let pipeline = Scale::from_env().prepare();
    let base = pipeline.config.train;
    let archs = [
        Architecture::ResNet,
        Architecture::InceptionTime,
        Architecture::Transformer,
    ];

    println!("\n=== Table 3: KDSelector on different architectures ===");
    println!(
        "{:<15} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Architecture", "Default", "+KDSelector", "ΔAUC-PR", "Default(s)", "Saved time"
    );

    let mut rows = Vec::new();
    for arch in archs {
        eprintln!("[table3] {} default ...", arch.name());
        let default_cfg = TrainConfig { arch, ..base };
        let default_run = pipeline.train_nn_with(&default_cfg, arch.name());

        eprintln!("[table3] {} +PISL&MKI (accuracy) ...", arch.name());
        let acc_cfg = TrainConfig {
            epochs: base.epochs,
            width: base.width,
            ..TrainConfig::knowledge_enhanced(arch)
        };
        let acc_run = pipeline.train_nn_with(&acc_cfg, &format!("{}+KD", arch.name()));

        eprintln!("[table3] {} +PISL&MKI&PA (time) ...", arch.name());
        let fast_cfg = TrainConfig {
            epochs: base.epochs,
            width: base.width,
            ..TrainConfig::kdselector(arch)
        };
        let fast_run = pipeline.train_nn_with(&fast_cfg, &format!("{}+KD+PA", arch.name()));

        let d_auc = default_run.report.average_auc_pr();
        let k_auc = acc_run.report.average_auc_pr();
        let saved = (1.0 - fast_run.stats.train_seconds / default_run.stats.train_seconds) * 100.0;
        println!(
            "{:<15} {:>12.4} {:>12.4} {:>+12.4} {:>12.1} {:>11.1}%",
            arch.name(),
            d_auc,
            k_auc,
            k_auc - d_auc,
            default_run.stats.train_seconds,
            saved
        );
        rows.push(serde_json::json!({
            "architecture": arch.name(),
            "default": report_json(&default_run.report, default_run.stats.train_seconds),
            "kdselector_accuracy": report_json(&acc_run.report, acc_run.stats.train_seconds),
            "kdselector_pa": report_json(&fast_run.report, fast_run.stats.train_seconds),
            "improved_auc_pr": k_auc - d_auc,
            "saved_time_percent": saved,
        }));
    }

    println!("\nShape check vs paper:");
    println!("  paper: ΔAUC-PR +0.040 / +0.046 / +0.015; saved 58.3% / 71.0% / 74.2%");
    println!("  (improvement positive on every architecture, large time savings)");

    record_result(
        "table3_architectures",
        &serde_json::json!({ "table": "3", "rows": rows }),
    );
}
