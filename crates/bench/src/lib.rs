//! Shared harness for the table/figure reproductions.
//!
//! Every bench target (`cargo bench -p kdselector-bench`) regenerates one
//! table or figure of the paper. They share:
//!
//! * a scale switch (`KDSEL_SCALE` = `quick` | `default` | `paper`) that
//!   sizes the synthetic benchmark and the training budget,
//! * one disk-cached label matrix per scale (the 12 detectors run once), and
//! * table-printing and result-recording helpers (results land in
//!   `target/kdsel-results/*.json` for EXPERIMENTS.md).

use kdselector_core::eval::EvalReport;
use kdselector_core::pipeline::{Pipeline, PipelineConfig};
use kdselector_core::train::TrainConfig;
use std::io::Write as _;
use std::path::PathBuf;
use tsdata::{BenchmarkConfig, WindowConfig};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke run.
    Quick,
    /// Minutes-scale default (used for the committed EXPERIMENTS.md).
    Default,
    /// Larger run closer to the paper's data volume.
    Paper,
}

impl Scale {
    /// Reads `KDSEL_SCALE` (defaults to `default`).
    pub fn from_env() -> Self {
        match std::env::var("KDSEL_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("paper") => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// The pipeline configuration for this scale.
    pub fn pipeline_config(&self) -> PipelineConfig {
        let mut cfg = PipelineConfig {
            window: WindowConfig {
                length: 64,
                stride: 64,
                znormalize: true,
            },
            ..PipelineConfig::default()
        };
        match self {
            Scale::Quick => {
                cfg.benchmark = BenchmarkConfig {
                    train_series_per_family: 3,
                    test_series_per_family: 2,
                    series_length: 800,
                    seed: 7,
                };
                cfg.train = TrainConfig {
                    epochs: 6,
                    width: 6,
                    ..TrainConfig::default()
                };
            }
            Scale::Default => {
                cfg.benchmark = BenchmarkConfig {
                    train_series_per_family: 10,
                    test_series_per_family: 5,
                    series_length: 1200,
                    seed: 7,
                };
                cfg.train = TrainConfig {
                    epochs: 10,
                    width: 8,
                    ..TrainConfig::default()
                };
            }
            Scale::Paper => {
                cfg.benchmark = BenchmarkConfig {
                    train_series_per_family: 16,
                    test_series_per_family: 8,
                    series_length: 1600,
                    seed: 7,
                };
                cfg.train = TrainConfig {
                    epochs: 12,
                    width: 10,
                    ..TrainConfig::default()
                };
            }
        }
        cfg
    }

    /// Prepares the pipeline (labels come from the shared cache).
    pub fn prepare(&self) -> Pipeline {
        let cfg = self.pipeline_config();
        eprintln!(
            "[kdsel] scale={self:?} families=16 train-series={} test-series={} (label cache: {})",
            cfg.benchmark.train_series_per_family * 16,
            cfg.benchmark.test_series_per_family * 14,
            cfg.cache_dir.display()
        );
        let t0 = std::time::Instant::now();
        let pipeline = Pipeline::prepare(cfg).expect("pipeline preparation");
        eprintln!("[kdsel] labels ready in {:.1}s", t0.elapsed().as_secs_f64());
        pipeline
    }
}

/// Pretty-prints a per-dataset AUC-PR table: one row per dataset, one column
/// per method, plus average and (optional) training-time rows.
pub fn print_table(
    title: &str,
    methods: &[String],
    reports: &[&EvalReport],
    times_seconds: Option<&[f64]>,
) {
    println!("\n=== {title} ===");
    let datasets: Vec<&str> = reports[0]
        .per_dataset
        .iter()
        .map(|(d, _)| d.as_str())
        .collect();
    print!("{:<14}", "Dataset");
    for m in methods {
        print!("{m:>15}");
    }
    println!();
    for (di, ds) in datasets.iter().enumerate() {
        print!("{ds:<14}");
        for r in reports {
            print!("{:>15.4}", r.per_dataset[di].1);
        }
        println!();
    }
    print!("{:<14}", "Average");
    for r in reports {
        print!("{:>15.4}", r.average_auc_pr());
    }
    println!();
    if let Some(times) = times_seconds {
        print!("{:<14}", "Time (s)");
        for t in times {
            print!("{t:>15.2}");
        }
        println!();
    }
}

/// Where bench results are recorded for EXPERIMENTS.md.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/kdsel-results");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Records a result table as JSON (best-effort; failures only warn).
pub fn record_result(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(value).unwrap_or_default()
            );
            eprintln!("[kdsel] recorded {}", path.display());
        }
        Err(e) => eprintln!("[kdsel] could not record {name}: {e}"),
    }
}

/// Serialises a report into the JSON result format.
pub fn report_json(report: &EvalReport, seconds: f64) -> serde_json::Value {
    serde_json::json!({
        "selector": report.selector,
        "per_dataset": report.per_dataset,
        "average_auc_pr": report.average_auc_pr(),
        "train_seconds": seconds,
    })
}
