//! Kernel-level speedup record — blocked/parallel GEMM vs the naive seed
//! kernel at matrix shapes drawn from the selector architectures — plus a
//! serving-throughput record (selections/sec through the batched
//! `SelectorEngine` at a fixed 64-series batch) and a training-throughput
//! record (windows/sec through the data-parallel session stack at 1 and N
//! worker threads, with the bitwise cross-thread-count guard asserted) and
//! a streaming-loop record (windows/sec through incremental ingestion with
//! cache publishing, plus the daemon's drift → retrain → deploy latency).
//!
//! Appends one compact JSON line per run to `BENCH_micro.json` (repo root,
//! override with `KD_BENCH_OUT`) so the perf trajectory is tracked PR over
//! PR. Run via `scripts/bench.sh` or:
//!
//! ```text
//! cargo run --release -p kdselector-bench --bin micro_kernels
//! ```

use kdselector_core::dataset::SelectorDataset;
use kdselector_core::labels::PerfMatrix;
use kdselector_core::selector::{NnSelector, Selector};
use kdselector_core::serve::{
    QueueConfig, RouterConfig, SelectRequest, SelectorEngine, ServeQueue, ShardedRouter,
};
use kdselector_core::train::{MkiConfig, PislConfig, TrainConfig, TrainSession, TrainedSelector};
use kdselector_core::{Architecture, PruningStrategy};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;
use tsdata::{Benchmark, BenchmarkConfig, TimeSeries, WindowConfig};
use tsnn::Tensor;
use tstext::FrozenTextEncoder;

/// (label, op, n, m, k) — shapes taken from the workspace's hot paths:
/// Linear forward/backward in the MKI projection MLPs (256-wide hidden),
/// the InfoNCE similarity matrix, classifier layers over minibatches, and
/// a square stress shape for the cache-blocking headroom.
const CASES: &[(&str, &str, usize, usize, usize)] = &[
    ("mki_mlp_fc1", "matmul", 64, 256, 64),
    ("mki_mlp_fc1_dw", "t_matmul", 64, 256, 64),
    ("mki_mlp_fc1_dx", "matmul_t", 64, 64, 256),
    ("mki_mlp_fc2", "matmul", 64, 64, 256),
    ("infonce_sim", "matmul_t", 64, 64, 64),
    ("classifier", "matmul", 256, 12, 128),
    ("classifier_dw", "t_matmul", 256, 12, 128),
    ("square_256", "matmul", 256, 256, 256),
    ("square_256_t", "matmul_t", 256, 256, 256),
];

fn filled(shape: &[usize], seed: u32) -> Tensor {
    // Cheap deterministic fill; values in [-0.5, 0.5).
    let numel: usize = shape.iter().product();
    let data = (0..numel)
        .map(|i| {
            (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 8) & 0xFFFF) as f32
                / 65536.0
                - 0.5
        })
        .collect();
    Tensor::from_vec(shape, data)
}

/// Median-of-samples nanoseconds per call.
fn time_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    // Calibrate batch size to ~10ms.
    let t0 = Instant::now();
    let _keep = f();
    let once = t0.elapsed().as_secs_f64().max(1e-7);
    let batch = ((0.01 / once).ceil() as usize).clamp(1, 20_000);
    let mut samples = Vec::with_capacity(7);
    for _ in 0..7 {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(t.elapsed().as_secs_f64() / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2] * 1e9
}

/// Lane-kernel speedup over the previous-generation blocked kernel
/// (`gemm_blocked_ref`, the 4-row compiler-vectorised tile this PR
/// replaced), at the same shapes as the naive comparison. The two kernels
/// must agree **bitwise** (`max_abs_diff == 0.0` asserted, not just
/// printed): per output element both run the identical ascending-`p`
/// scalar sum, so any nonzero diff is a determinism-contract break, not
/// rounding.
fn simd_benchmark(threads: usize) -> serde_json::Value {
    use tsnn::gemm::{self, Layout};

    println!(
        "\n{:<16} {:>10} {:>5}x{:<4}x{:<4} {:>12} {:>12} {:>8} {:>8}",
        "case", "op", "n", "m", "k", "ref ns", "lane ns", "speedup", "max|Δ|"
    );
    let mut rows = Vec::new();
    let mut log_speedup_sum = 0.0f64;
    for &(label, op, n, m, k) in CASES {
        // Same operand layouts the Tensor entry points use for each op.
        let (a_shape, b_shape, la, lb) = match op {
            "matmul" => ([n, k], [k, m], Layout::Normal, Layout::Normal),
            "t_matmul" => ([k, n], [k, m], Layout::Transposed, Layout::Normal),
            "matmul_t" => ([n, k], [m, k], Layout::Normal, Layout::Transposed),
            _ => unreachable!(),
        };
        let a = filled(&a_shape, 1).data().to_vec();
        let b = filled(&b_shape, 2).data().to_vec();

        let mut lane = vec![0.0f32; n * m];
        gemm::gemm(n, m, k, &a, la, &b, lb, &mut lane);
        let mut reference = vec![0.0f32; n * m];
        gemm::gemm_blocked_ref(n, m, k, &a, la, &b, lb, &mut reference);
        let diff = lane
            .iter()
            .zip(&reference)
            .map(|(&x, &y)| (x - y).abs() as f64)
            .fold(0.0, f64::max);
        assert!(
            diff == 0.0,
            "{label}: lane kernel must be bitwise identical to the blocked reference ({diff})"
        );

        let ref_ns = time_ns(|| {
            gemm::gemm_blocked_ref(n, m, k, &a, la, &b, lb, &mut reference);
            reference[0]
        });
        let lane_ns = time_ns(|| {
            gemm::gemm(n, m, k, &a, la, &b, lb, &mut lane);
            lane[0]
        });
        let speedup = ref_ns / lane_ns;
        log_speedup_sum += speedup.ln();
        println!(
            "{:<16} {:>10} {:>5}x{:<4}x{:<4} {:>12.0} {:>12.0} {:>7.2}x {:>8.1}",
            label, op, n, m, k, ref_ns, lane_ns, speedup, diff
        );
        rows.push(serde_json::json!({
            "case": label,
            "op": op,
            "n": n,
            "m": m,
            "k": k,
            "ref_ns": ref_ns,
            "lane_ns": lane_ns,
            "speedup": speedup,
            "max_abs_diff": diff,
        }));
    }
    let geomean = (log_speedup_sum / CASES.len() as f64).exp();
    println!("\nsimd geomean speedup over blocked reference: {geomean:.2}x at {threads} thread(s)");
    serde_json::json!({
        "threads": threads,
        "geomean_speedup": geomean,
        "cases": rows,
    })
}

/// Large-inner-dimension cases for the k-blocked, dual-panel GEMM path.
///
/// Both sides run through [`tsnn::gemm::gemm_prepacked_with_kc`] on the
/// same pre-packed `B`, so packing cost cancels and the comparison
/// isolates the kernel: `kc = usize::MAX` forces the pre-blocking
/// single-panel full-`k` sweep (the kernel every earlier record
/// measured), the [`tsnn::gemm::KC`] side is what [`tsnn::gemm::gemm`]
/// now does for `k > KC`. The two must agree **bitwise**
/// (`max_abs_diff == 0.0` asserted): blocking only introduces exact
/// `f32` round trips through `C`, and panel fusion never reorders any
/// output element's chain. Timing is interleaved A/B/A/B per round —
/// this host's clock wanders enough that back-to-back medians would
/// charge one side for a frequency dip the other side never saw.
fn large_k_benchmark() -> serde_json::Value {
    use tsnn::gemm::{gemm_prepacked_with_kc, Layout, PackedB, KC};

    println!(
        "\n{:<16} {:>5}x{:<4}x{:<4} {:>14} {:>12} {:>8} {:>8}",
        "large-k case", "n", "m", "k", "unblocked ns", "blocked ns", "speedup", "max|Δ|"
    );
    let mut rows = Vec::new();
    let mut log_speedup_sum = 0.0f64;
    let shapes: &[(&str, usize, usize, usize)] = &[
        ("large_k_1024", 64, 128, 1024),
        ("large_k_2048", 64, 128, 2048),
        ("large_k_wide", 64, 512, 2048),
    ];
    for &(label, n, m, k) in shapes {
        let a = filled(&[n, k], 1).data().to_vec();
        let b = filled(&[k, m], 2).data().to_vec();
        let packed = PackedB::pack(m, k, &b, Layout::Normal);
        let mut blocked = vec![0.0f32; n * m];
        gemm_prepacked_with_kc(n, &a, Layout::Normal, &packed, KC, &mut blocked);
        let mut unblocked = vec![0.0f32; n * m];
        gemm_prepacked_with_kc(n, &a, Layout::Normal, &packed, usize::MAX, &mut unblocked);
        let diff = blocked
            .iter()
            .zip(&unblocked)
            .map(|(&x, &y)| (x - y).abs() as f64)
            .fold(0.0, f64::max);
        assert!(
            diff == 0.0,
            "{label}: k-blocked kernel must be bitwise identical to the unblocked sweep ({diff})"
        );

        // Interleaved medians: one timed batch of each variant per round.
        let t0 = Instant::now();
        gemm_prepacked_with_kc(n, &a, Layout::Normal, &packed, usize::MAX, &mut unblocked);
        let once = t0.elapsed().as_secs_f64().max(1e-7);
        let batch = ((0.01 / once).ceil() as usize).clamp(1, 1000);
        let mut un_samples = Vec::with_capacity(7);
        let mut bl_samples = Vec::with_capacity(7);
        for _ in 0..7 {
            let t = Instant::now();
            for _ in 0..batch {
                gemm_prepacked_with_kc(n, &a, Layout::Normal, &packed, usize::MAX, &mut unblocked);
                std::hint::black_box(unblocked[0]);
            }
            un_samples.push(t.elapsed().as_secs_f64() / batch as f64);
            let t = Instant::now();
            for _ in 0..batch {
                gemm_prepacked_with_kc(n, &a, Layout::Normal, &packed, KC, &mut blocked);
                std::hint::black_box(blocked[0]);
            }
            bl_samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        un_samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
        bl_samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let un_ns = un_samples[un_samples.len() / 2] * 1e9;
        let bl_ns = bl_samples[bl_samples.len() / 2] * 1e9;
        let speedup = un_ns / bl_ns;
        log_speedup_sum += speedup.ln();
        println!(
            "{:<16} {:>5}x{:<4}x{:<4} {:>14.0} {:>12.0} {:>7.2}x {:>8.1}",
            label, n, m, k, un_ns, bl_ns, speedup, diff
        );
        rows.push(serde_json::json!({
            "case": label,
            "n": n,
            "m": m,
            "k": k,
            "kc": KC,
            "unblocked_ns": un_ns,
            "blocked_ns": bl_ns,
            "speedup": speedup,
            "max_abs_diff": diff,
        }));
    }
    let geomean = (log_speedup_sum / shapes.len() as f64).exp();
    println!("large-k geomean speedup, k-blocked over unblocked sweep: {geomean:.2}x");
    serde_json::json!({
        "kc": KC,
        "geomean_speedup": geomean,
        "cases": rows,
    })
}

/// Serving throughput numbers for the JSON record.
struct ServeBench {
    batch: usize,
    series_len: usize,
    window: usize,
    width: usize,
    windows_per_series: usize,
    batch_seconds: f64,
}

impl ServeBench {
    fn selections_per_sec(&self) -> f64 {
        self.batch as f64 / self.batch_seconds
    }

    fn windows_per_sec(&self) -> f64 {
        (self.batch * self.windows_per_series) as f64 / self.batch_seconds
    }
}

/// Times the two serving paths over one fixed 64-series load:
///
/// * **direct** — a single batched `select_batch` call on an uncached
///   engine (the raw batch path, comparable with earlier PRs' records);
/// * **queued** — the same series as mixed-size requests (1/2/4/8 series)
///   submitted through a `ServeQueue`, coalesced back into engine batches
///   by the coalescer thread, with the content-keyed window cache warm
///   after the first run.
///
/// The two paths are sampled **interleaved** (direct, queued, direct,
/// queued, ...) so machine drift on a noisy/timeshared box lands on both
/// equally, and each reports its median. Both engines hold the same
/// weights (same build seed), so the work differs only by the layer under
/// test.
///
/// Read the comparison for what it is: "the queued front-end *as
/// deployed* (coalescer + tickets + warm cache) keeps up with the raw
/// batch path" — the cache's extraction savings and the queue's dispatch
/// overhead are bundled, roughly cancelling at these series lengths. It
/// is a regression tripwire for the deployed configuration, not an
/// isolated measurement of coalescer cost (the `window_cache` hit/miss
/// counters in the record expose the cache half).
fn serving_benchmarks() -> (ServeBench, serde_json::Value) {
    const BATCH: usize = 64;
    const SERIES_LEN: usize = 1024;
    const WINDOW: usize = 64;
    const WIDTH: usize = 8;
    const MAX_BATCH: usize = 64;
    const ROUNDS: usize = 7;

    let window_cfg = WindowConfig {
        length: WINDOW,
        stride: WINDOW / 2,
        znormalize: true,
    };
    // Direct path: deliberately uncached.
    let direct_engine = Arc::new(SelectorEngine::new());
    direct_engine.register(
        "convnet",
        Arc::new(NnSelector::new(
            "convnet",
            TrainedSelector::build(Architecture::ConvNet, WINDOW, WIDTH, 7),
            window_cfg,
        )),
    );
    // Queued path: same weights plus the LRU window cache the queued
    // front-end is designed to exploit on repeat traffic.
    let queue_engine = Arc::new(SelectorEngine::with_window_cache(2 * BATCH));
    let cache = Arc::clone(queue_engine.window_cache().expect("configured"));
    queue_engine.register(
        "convnet",
        Arc::new(
            NnSelector::new(
                "convnet",
                TrainedSelector::build(Architecture::ConvNet, WINDOW, WIDTH, 7),
                window_cfg,
            )
            .with_cache(Arc::clone(&cache)),
        ),
    );
    let queue = ServeQueue::new(
        Arc::clone(&queue_engine),
        QueueConfig {
            max_depth: 1024,
            max_batch: MAX_BATCH,
        },
    );

    let batch: Vec<TimeSeries> = (0..BATCH)
        .map(|i| {
            TimeSeries::new(
                format!("bench-{i}"),
                "D",
                (0..SERIES_LEN)
                    .map(|t| {
                        let x = t as f64 * 0.05 + i as f64 * 0.7;
                        x.sin() + 0.3 * (x * 2.3).cos()
                    })
                    .collect(),
                vec![],
            )
        })
        .collect();
    let windows_per_series = (SERIES_LEN - WINDOW) / (WINDOW / 2) + 1;

    // Mixed request sizes cycling 1, 2, 4, 8 over the 64 series.
    let mut requests: Vec<SelectRequest> = Vec::new();
    let mut taken = 0usize;
    let mut size_cycle = [1usize, 2, 4, 8].iter().cycle();
    while taken < batch.len() {
        let size = (*size_cycle.next().unwrap()).min(batch.len() - taken);
        requests.push(SelectRequest::new(
            "convnet",
            batch[taken..taken + size].to_vec(),
        ));
        taken += size;
    }

    let run_direct = || {
        let selections = direct_engine
            .select_batch("convnet", &batch)
            .expect("registered");
        assert_eq!(selections.len(), BATCH);
        selections
    };
    // Queued ≡ direct guard, asserted before anything is timed: the
    // coalesced, cached, arena-pooled queue front-end must hand back the
    // exact selections the raw uncached batch path computes.
    {
        let direct_ref = run_direct();
        let mut queued_all = Vec::new();
        for r in requests.clone() {
            queued_all.extend(queue.serve(r).expect("served"));
        }
        assert_eq!(
            direct_ref, queued_all,
            "queued serving drifted from the direct batch path"
        );
    }
    // Payloads are materialised outside the timed section for both paths
    // (the direct batch above is prebuilt too): one owned request set per
    // round, handed to submit by value.
    let mut request_sets: Vec<Vec<SelectRequest>> =
        (0..=ROUNDS).map(|_| requests.clone()).collect();
    let mut run_queued = || {
        let set = request_sets.pop().expect("one set per round");
        let tickets: Vec<_> = set
            .into_iter()
            .map(|r| queue.submit(r).expect("admitted"))
            .collect();
        for ticket in tickets {
            assert!(!ticket.wait().expect("served").is_empty());
        }
    };

    // Warm up both paths (pool workers, window cache), then sample
    // interleaved and take each path's median.
    run_direct();
    run_queued();
    let mut direct_samples = Vec::with_capacity(ROUNDS);
    let mut queued_samples = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let t = Instant::now();
        std::hint::black_box(run_direct());
        direct_samples.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        run_queued();
        queued_samples.push(t.elapsed().as_secs_f64());
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    };
    let direct_seconds = median(&mut direct_samples);
    let queued_seconds = median(&mut queued_samples);

    let serve = ServeBench {
        batch: BATCH,
        series_len: SERIES_LEN,
        window: WINDOW,
        width: WIDTH,
        windows_per_series,
        batch_seconds: direct_seconds,
    };
    let queued_per_sec = BATCH as f64 / queued_seconds;
    let stats = cache.stats();
    println!(
        "queued serving:     {queued_per_sec:.0} selections/sec \
         ({} mixed-size requests, max_batch {MAX_BATCH}, cache {} hits / {} misses)",
        requests.len(),
        stats.hits,
        stats.misses,
    );
    let cache_record = serde_json::json!({
        "hits": stats.hits,
        "misses": stats.misses,
        "entries": stats.entries,
    });
    let queue_record = serde_json::json!({
        "batch": BATCH,
        "requests": requests.len(),
        "max_batch": MAX_BATCH,
        "series_len": SERIES_LEN,
        "window": WINDOW,
        "width": WIDTH,
        "batch_seconds": queued_seconds,
        "selections_per_sec": queued_per_sec,
        "window_cache": cache_record,
    });
    (serve, queue_record)
}

/// Routed serving throughput: the same mixed-size 64-series load pushed
/// through a 4-shard `ShardedRouter` by 4 producer threads, against the
/// identical requests served by direct `select_batch` calls on the same
/// producer threads. Eight selector names (same ConvNet weights) spread
/// the traffic over the placement ring so every shard works.
///
/// Both paths run uncached and hold identical weights, so the ratio
/// isolates what the routing tier adds per request: ring lookup, breaker
/// admission, queue submit/ticket hand-off, and the coalescer hop. The
/// routed replies are asserted bitwise-equal to the direct selections
/// before anything is timed — the record tracks overhead, not drift.
fn route_benchmark() -> serde_json::Value {
    const BATCH: usize = 64;
    const SERIES_LEN: usize = 1024;
    const WINDOW: usize = 64;
    const WIDTH: usize = 8;
    const SHARDS: usize = 4;
    const PRODUCERS: usize = 4;
    const NAMES: usize = 8;
    const ROUNDS: usize = 7;

    let window_cfg = WindowConfig {
        length: WINDOW,
        stride: WINDOW / 2,
        znormalize: true,
    };
    let direct_engine = Arc::new(SelectorEngine::new());
    // cache_capacity 0 keeps the shards uncached like the direct engine,
    // so repeat rounds don't hand the router a cache win the direct path
    // lacks.
    let router = ShardedRouter::new(RouterConfig {
        shards: SHARDS,
        cache_capacity: 0,
        ..RouterConfig::default()
    });
    for n in 0..NAMES {
        let name = format!("convnet-{n}");
        let selector: Arc<dyn Selector> = Arc::new(NnSelector::new(
            name.clone(),
            TrainedSelector::build(Architecture::ConvNet, WINDOW, WIDTH, 7),
            window_cfg,
        ));
        direct_engine.register(&name, Arc::clone(&selector));
        router
            .register(&name, selector)
            .expect("inline registration needs no store");
    }

    let batch: Vec<TimeSeries> = (0..BATCH)
        .map(|i| {
            TimeSeries::new(
                format!("route-bench-{i}"),
                "D",
                (0..SERIES_LEN)
                    .map(|t| {
                        let x = t as f64 * 0.05 + i as f64 * 0.7;
                        x.sin() + 0.3 * (x * 2.3).cos()
                    })
                    .collect(),
                vec![],
            )
        })
        .collect();

    // Mixed request sizes cycling 1, 2, 4, 8; selector names cycling so
    // the ring spreads requests over all shards.
    let mut requests: Vec<SelectRequest> = Vec::new();
    let mut taken = 0usize;
    let mut size_cycle = [1usize, 2, 4, 8].iter().cycle();
    while taken < batch.len() {
        let size = (*size_cycle.next().unwrap()).min(batch.len() - taken);
        requests.push(SelectRequest::new(
            format!("convnet-{}", requests.len() % NAMES),
            batch[taken..taken + size].to_vec(),
        ));
        taken += size;
    }
    let per_producer = requests.len().div_ceil(PRODUCERS);

    let run_direct = || {
        std::thread::scope(|s| {
            for chunk in requests.chunks(per_producer) {
                let engine = &direct_engine;
                s.spawn(move || {
                    for r in chunk {
                        let selections = engine
                            .select_batch(&r.selector, &r.batch)
                            .expect("registered");
                        std::hint::black_box(selections);
                    }
                });
            }
        });
    };
    let run_routed = || {
        std::thread::scope(|s| {
            for chunk in requests.chunks(per_producer) {
                let router = &router;
                s.spawn(move || {
                    for r in chunk {
                        let reply = router.route(r).expect("healthy tier");
                        assert!(!reply.degraded, "no faults injected");
                        std::hint::black_box(reply.selections);
                    }
                });
            }
        });
    };

    // Correctness guard before timing: the routed tier must serve the
    // exact bits the direct engine produces.
    for r in &requests {
        let direct = direct_engine
            .select_batch(&r.selector, &r.batch)
            .expect("registered");
        let routed = router.route(r).expect("healthy tier").selections;
        assert_eq!(direct, routed, "router drifted from the direct engine");
    }

    // Warm up, then sample interleaved and take each path's median.
    run_direct();
    run_routed();
    let mut direct_samples = Vec::with_capacity(ROUNDS);
    let mut routed_samples = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let t = Instant::now();
        run_direct();
        direct_samples.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        run_routed();
        routed_samples.push(t.elapsed().as_secs_f64());
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    };
    let direct_seconds = median(&mut direct_samples);
    let routed_seconds = median(&mut routed_samples);
    let stats = router.stats();
    router.shutdown();

    let direct_per_sec = BATCH as f64 / direct_seconds;
    let routed_per_sec = BATCH as f64 / routed_seconds;
    let relative = routed_per_sec / direct_per_sec;
    println!(
        "routed serving:     {routed_per_sec:.0} selections/sec through {SHARDS} shards \
         ({PRODUCERS} producers, {} requests, {:.0}% of direct {direct_per_sec:.0}/sec)",
        requests.len(),
        relative * 100.0,
    );
    serde_json::json!({
        "shards": SHARDS,
        "producers": PRODUCERS,
        "selector_names": NAMES,
        "batch": BATCH,
        "requests": requests.len(),
        "series_len": SERIES_LEN,
        "window": WINDOW,
        "width": WIDTH,
        "batch_seconds": routed_seconds,
        "selections_per_sec": routed_per_sec,
        "direct_batch_seconds": direct_seconds,
        "direct_selections_per_sec": direct_per_sec,
        "relative_throughput": relative,
        "routed": stats.routed,
        "retries": stats.retries,
    })
}

/// Calibrates the `MIN_PAR_WORK` gate against the persistent pool: the
/// same fixed chunking executed inline vs dispatched (`Backend::Pool`,
/// width 4) across a ladder of work sizes (1 multiply-add per element,
/// matching how the layer gates estimate work).
///
/// Two crossover estimates are recorded:
///
/// * `direct_crossover` — smallest work size where the pooled region beat
///   the inline loop outright. Only meaningful on a multi-core machine
///   (`null` when the box cannot show a parallel win, e.g. 1-CPU CI).
/// * `modeled_crossover` — break-even from the dispatch-overhead model,
///   which works on any machine: the fixed cost a region pays to dispatch
///   is estimated as the median `pool_ns − serial_ns` over the
///   **dispatch-dominated rungs only** (`serial_ns ≤ pool_ns / 2`). The
///   big rungs must be excluded from the estimate on *both* machine
///   classes: on a multi-core box the pool wins them, clamping the
///   difference to zero (which would collapse the median), and on a
///   single-core box they bundle timeslicing cost that grows with work
///   (which would inflate it) — only the small rungs isolate the fixed
///   dispatch cost. A `width`-way region then wins once
///   `serial_ns > overhead · width / (width − 1)`
///   (from `serial/width + overhead < serial`). The `MIN_PAR_WORK`
///   constant is pinned roughly one power of two above this break-even
///   for safety margin — the sweep exists so the record shows when the
///   constant drifts from the measured overhead.
fn par_gate_sweep() -> serde_json::Value {
    const WIDTH: usize = 4;
    tspar::set_parallelism(tspar::Parallelism::Fixed(WIDTH));
    tspar::set_backend(tspar::Backend::Pool);

    println!(
        "\n{:<10} {:>12} {:>12} {:>12} {:>8}",
        "work", "serial ns", "pool ns", "overhead ns", "speedup"
    );
    let mut rows = Vec::new();
    let mut serials: Vec<(usize, f64)> = Vec::new();
    let mut dispatch_dominated: Vec<f64> = Vec::new();
    let mut direct_crossover: Option<usize> = None;
    for shift in 12..=21u32 {
        let work = 1usize << shift;
        let chunk = work.div_ceil(WIDTH);
        let mut buf = vec![1.0f32; work];
        let body = |_ci: usize, c: &mut [f32]| {
            for x in c.iter_mut() {
                *x = x.mul_add(1.0000119, 1e-7);
            }
        };
        let serial_ns = time_ns(|| {
            for (ci, c) in buf.chunks_mut(chunk).enumerate() {
                body(ci, c);
            }
        });
        tspar::par_chunks_mut(&mut buf, chunk, body); // warm the pool
        let pool_ns = time_ns(|| tspar::par_chunks_mut(&mut buf, chunk, body));
        let speedup = serial_ns / pool_ns;
        let overhead_ns = (pool_ns - serial_ns).max(0.0);
        if speedup >= 1.0 && direct_crossover.is_none() {
            direct_crossover = Some(work);
        }
        serials.push((work, serial_ns));
        if serial_ns <= pool_ns / 2.0 {
            dispatch_dominated.push(overhead_ns);
        }
        println!(
            "1<<{shift:<6} {serial_ns:>12.0} {pool_ns:>12.0} {overhead_ns:>12.0} {speedup:>7.2}x"
        );
        rows.push(serde_json::json!({
            "work": work,
            "serial_ns": serial_ns,
            "pool_ns": pool_ns,
            "overhead_ns": overhead_ns,
            "speedup": speedup,
        }));
    }
    tspar::set_parallelism(tspar::Parallelism::Auto);

    // If no rung was dispatch-dominated (pathological timing), fall back
    // to a null model rather than invent a crossover from compute noise.
    dispatch_dominated.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overhead_ns = dispatch_dominated
        .get(dispatch_dominated.len() / 2)
        .copied();
    let break_even_ns = overhead_ns.map(|o| o * WIDTH as f64 / (WIDTH as f64 - 1.0));
    let modeled_crossover = break_even_ns.and_then(|be| {
        serials
            .iter()
            .find(|&&(_, serial_ns)| serial_ns >= be)
            .map(|&(work, _)| work)
    });
    println!(
        "par gate: dispatch overhead ≈ {} ns/region, modeled crossover {}, \
         direct crossover {}, MIN_PAR_WORK = {}",
        overhead_ns.map_or("unmeasured".into(), |o| format!("{o:.0}")),
        modeled_crossover.map_or("beyond sweep".into(), |w| format!("{w}")),
        direct_crossover.map_or("not reached (single-core box?)".into(), |w| format!("{w}")),
        tspar::MIN_PAR_WORK,
    );
    serde_json::json!({
        "threads": WIDTH,
        "sweep": rows,
        "overhead_ns": overhead_ns,
        "break_even_serial_ns": break_even_ns,
        "modeled_crossover": modeled_crossover,
        "direct_crossover": direct_crossover,
        "gate": tspar::MIN_PAR_WORK,
    })
}

/// Per-region dispatch overhead: the same fixed partitions executed on the
/// persistent pool vs the pre-pool scoped spawn/join reference, at work
/// sizes small enough that dispatch (not compute) dominates. Results are
/// bit-identical by construction (`tests/pool_determinism.rs` enforces
/// it); this measures only the fixed cost a region pays to go parallel.
fn dispatch_overhead() -> Vec<serde_json::Value> {
    const WIDTH: usize = 4;
    tspar::set_parallelism(tspar::Parallelism::Fixed(WIDTH));

    let mut records = Vec::new();
    println!(
        "\n{:<18} {:>8} {:>12} {:>12} {:>8}",
        "region", "elems", "spawn ns", "pool ns", "speedup"
    );
    for &elems in &[4 * 1024usize, 64 * 1024] {
        let chunk = elems.div_ceil(WIDTH);
        let mut buf = vec![0.0f32; elems];
        let mut region = |backend| {
            tspar::set_backend(backend);
            // Warm up (spawns the pool workers on the first pooled region).
            tspar::par_chunks_mut(&mut buf, chunk, |ci, c| {
                for (j, x) in c.iter_mut().enumerate() {
                    *x = (ci * chunk + j) as f32 * 1.0009;
                }
            });
            time_ns(|| {
                tspar::par_chunks_mut(&mut buf, chunk, |ci, c| {
                    for (j, x) in c.iter_mut().enumerate() {
                        *x = (ci * chunk + j) as f32 * 1.0009;
                    }
                });
            })
        };
        let spawn_ns = region(tspar::Backend::Spawn);
        let pool_ns = region(tspar::Backend::Pool);
        let speedup = spawn_ns / pool_ns;
        println!(
            "{:<18} {:>8} {:>12.0} {:>12.0} {:>7.2}x",
            "par_chunks_mut", elems, spawn_ns, pool_ns, speedup
        );
        records.push(serde_json::json!({
            "region": "par_chunks_mut",
            "elems": elems,
            "threads": WIDTH,
            "spawn_ns": spawn_ns,
            "pool_ns": pool_ns,
            "speedup": speedup,
        }));
    }
    tspar::set_backend(tspar::Backend::Pool);
    tspar::set_parallelism(tspar::Parallelism::Auto);
    records
}

/// Training throughput through the session stack: windows/sec over a
/// synthetic-label dataset (no detector runs), with PISL + MKI active and
/// `REPLICAS` data-parallel replicas, at 1 worker thread and at
/// `THREADS_HI`. The same fixed micro-partitioning runs in both cases —
/// only the execution width differs — so the two runs are measuring the
/// identical computation and the bench asserts their final weights are
/// bitwise equal (the `train::dp` determinism contract) before reporting.
///
/// On a single-core box the "speedup" hovers at/below 1 (the record is the
/// point, not a pass/fail); on a multi-core box it shows the replica
/// fan-out paying off.
fn train_benchmark() -> serde_json::Value {
    const REPLICAS: usize = 4;
    const THREADS_HI: usize = 4;
    const ROUNDS: usize = 5;

    // Synthetic perf rows: selector-learning signal without detector cost.
    let mut bcfg = BenchmarkConfig::tiny();
    bcfg.series_length = 1024;
    let b = Benchmark::generate(bcfg);
    let series: Vec<TimeSeries> = b.train.into_iter().take(12).collect();
    let rows: Vec<Vec<f64>> = (0..series.len())
        .map(|i| {
            (0..12)
                .map(|m| if m == i % 4 { 0.85 } else { 0.1 })
                .collect()
        })
        .collect();
    let perf = PerfMatrix {
        series_ids: series.iter().map(|s| s.id.clone()).collect(),
        rows,
    };
    let encoder = FrozenTextEncoder::new(48, 0);
    let window_cfg = WindowConfig {
        length: 64,
        stride: 32,
        znormalize: true,
    };
    let dataset = SelectorDataset::build(&series, &perf, window_cfg, &encoder);

    let cfg = TrainConfig {
        arch: Architecture::ConvNet,
        width: 6,
        epochs: 3,
        batch_size: 64,
        replicas: REPLICAS,
        pisl: Some(PislConfig::default()),
        mki: Some(MkiConfig {
            hidden: 64,
            proj_dim: 32,
            ..MkiConfig::default()
        }),
        // Full data keeps the visited-window count fixed, so windows/sec
        // at the two thread counts divide out to a clean speedup.
        pruning: PruningStrategy::None,
        seed: 7,
        ..TrainConfig::default()
    };

    let run = |threads: usize| {
        tspar::set_parallelism(tspar::Parallelism::Fixed(threads));
        // Warm-up (spawns pool workers, faults in the dataset).
        let mut warm = TrainSession::new(&dataset, &cfg);
        warm.run_epoch(&dataset);
        let mut samples = Vec::with_capacity(ROUNDS);
        let mut weights = None;
        for _ in 0..ROUNDS {
            let mut session = TrainSession::new(&dataset, &cfg);
            let t = Instant::now();
            session.run_to_completion(&dataset);
            samples.push(t.elapsed().as_secs_f64());
            let visited: usize = session.stats().epoch_examined.iter().sum();
            let (model, _) = session.finish();
            let snapshot = tsnn::serialize::save_params(&model.params());
            match &weights {
                None => weights = Some((snapshot, visited)),
                Some((reference, _)) => assert_eq!(
                    reference, &snapshot,
                    "training must be deterministic run over run"
                ),
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let seconds = samples[samples.len() / 2];
        let (weights, visited) = weights.expect("at least one round");
        (visited as f64 / seconds, seconds, weights)
    };

    let (wps_1, secs_1, weights_1) = run(1);
    let (wps_n, secs_n, weights_n) = run(THREADS_HI);
    tspar::set_parallelism(tspar::Parallelism::Auto);
    assert_eq!(
        weights_1, weights_n,
        "data-parallel training diverged across thread counts"
    );

    let speedup = wps_n / wps_1;
    println!(
        "train throughput:   {wps_1:.0} windows/sec at 1 thread, {wps_n:.0} at {THREADS_HI} \
         ({speedup:.2}x, {REPLICAS} replicas, {} windows x {} epochs, bitwise-equal weights)",
        dataset.len(),
        cfg.epochs,
    );
    serde_json::json!({
        "windows": dataset.len(),
        "epochs": cfg.epochs,
        "batch_size": cfg.batch_size,
        "replicas": REPLICAS,
        "arch": "ConvNet",
        "width": cfg.width,
        "threads_hi": THREADS_HI,
        "seconds_t1": secs_1,
        "seconds_tn": secs_n,
        "windows_per_sec_t1": wps_1,
        "windows_per_sec_tn": wps_n,
        "speedup": speedup,
    })
}

/// Streaming-loop record: ingestion throughput (windows/sec through
/// chunked `StreamIngestor` appends, cache publishing included — the
/// steady-state serving path), plus the `RetrainDaemon`'s drift → retrain
/// → deploy latency on a synthetic-label corpus (the time from the ingest
/// that raises the drift signal to the retrained model being live in the
/// serving engine).
fn stream_benchmark() -> serde_json::Value {
    use kdselector_core::manage::SelectorStore;
    use kdselector_core::serve::WindowCache;
    use kdselector_core::stream::{
        DaemonConfig, DaemonEvent, DriftConfig, LabelOracle, RetrainDaemon, StreamIngestor,
    };

    let window = WindowConfig {
        length: 64,
        stride: 32,
        znormalize: true,
    };

    // --- Ingestion throughput: one long stream, fixed-size appends, each
    // followed by a cache publish (every append changes the prefix key, so
    // every publish is an insert — the worst case).
    const CHUNK: usize = 512;
    const CHUNKS: usize = 128;
    let chunks: Vec<Vec<f64>> = (0..CHUNKS)
        .map(|c| {
            (0..CHUNK)
                .map(|i| ((c * CHUNK + i) as f64 * 0.19).sin())
                .collect()
        })
        .collect();
    let cache = Arc::new(WindowCache::with_byte_budget(8, 1 << 22));
    let mut ingestor = StreamIngestor::new(window).with_cache(Arc::clone(&cache));
    let t = Instant::now();
    let mut produced = 0usize;
    for chunk in &chunks {
        produced += ingestor.append("bench", chunk).len();
        let _ = ingestor.publish("bench");
    }
    let ingest_secs = t.elapsed().as_secs_f64();
    let ingest_wps = produced as f64 / ingest_secs;

    // --- Drift → retrain → deploy latency. Synthetic oracle: labels flip
    // with the series mean, no detector runs.
    struct MeanOracle;
    impl LabelOracle for MeanOracle {
        fn perf_row(&self, ts: &TimeSeries) -> Vec<f64> {
            let mean = ts.values.iter().sum::<f64>() / ts.len().max(1) as f64;
            let best = usize::from(mean >= 1.0);
            (0..12).map(|m| if m == best { 0.9 } else { 0.1 }).collect()
        }
    }
    let dir = std::env::temp_dir().join(format!("kdsel-bench-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SelectorStore::open(&dir).expect("bench store");
    let engine = Arc::new(SelectorEngine::with_shared_cache(Arc::new(
        WindowCache::with_byte_budget(8, 1 << 22),
    )));
    let cfg = DaemonConfig {
        selector: "bench-stream".to_string(),
        window,
        train: TrainConfig {
            arch: Architecture::ConvNet,
            width: 6,
            epochs: 2,
            batch_size: 64,
            pruning: PruningStrategy::None,
            ..TrainConfig::default()
        },
        drift: DriftConfig {
            window: 256,
            threshold: 6.0,
        },
        quota: usize::MAX,
        min_samples: 1024,
        text_dim: 32,
    };
    let epochs = cfg.train.epochs;
    let mut daemon = RetrainDaemon::new(Arc::clone(&engine), store, Box::new(MeanOracle), cfg);
    // Stable reference traffic (anchors the drift window, builds corpus).
    for chunk in chunks.iter().take(8) {
        let events = daemon.ingest("bench", chunk).expect("ingest");
        assert!(events.is_empty(), "stable traffic must not trigger");
    }
    // The level shift: drift fires inside this ingest, and the clock runs
    // until the retrained model is deployed and serving.
    let shifted: Vec<f64> = chunks[8].iter().map(|v| v + 30.0).collect();
    let t = Instant::now();
    let mut events = daemon.ingest("bench", &shifted).expect("ingest");
    events.extend(daemon.run_pending().expect("retrain"));
    let retrain_secs = t.elapsed().as_secs_f64();
    let retrain_windows = events
        .iter()
        .find_map(|e| match e {
            DaemonEvent::RetrainStarted { windows, .. } => Some(*windows),
            _ => None,
        })
        .expect("the shift must trigger a retrain");
    assert!(
        matches!(events.last(), Some(DaemonEvent::Deployed { .. })),
        "the retrain must end in a deploy"
    );
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "stream loop:        {ingest_wps:.0} windows/sec ingested ({produced} windows, publish \
         included), drift->deploy {retrain_secs:.3}s ({retrain_windows} windows x {epochs} epochs)"
    );
    serde_json::json!({
        "chunk": CHUNK,
        "chunks": CHUNKS,
        "ingest_windows": produced,
        "ingest_secs": ingest_secs,
        "ingest_windows_per_sec": ingest_wps,
        "retrain_windows": retrain_windows,
        "epochs": epochs,
        "drift_to_deploy_secs": retrain_secs,
    })
}

/// Snapshot of the kdprof aggregates accumulated so far — the serving
/// phase breakdown (admit → coalesce → window → pack → score → complete)
/// plus the deterministic counters (cache, arena, coalescer). The bench
/// binary builds with kdprof's `timing` feature, so spans carry real
/// nanoseconds here; library builds without the bench compile them out.
fn profile_record() -> serde_json::Value {
    let phases = kdprof::phase_stats();
    let counters = kdprof::counter_stats();
    println!("\nserving phase profile (kdprof, spans inclusive):");
    println!(
        "{:<12} {:>10} {:>14} {:>12}",
        "phase", "calls", "total ms", "ns/call"
    );
    for p in &phases {
        if p.calls == 0 {
            continue;
        }
        println!(
            "{:<12} {:>10} {:>14.3} {:>12.0}",
            p.name,
            p.calls,
            p.nanos as f64 / 1e6,
            p.nanos as f64 / p.calls as f64
        );
    }
    let counter_line: Vec<String> = counters
        .iter()
        .filter(|c| c.value > 0)
        .map(|c| format!("{}={}", c.name, c.value))
        .collect();
    println!("counters: {}", counter_line.join(" "));
    serde_json::json!({
        "timing": kdprof::timing_enabled(),
        "phases": phases
            .iter()
            .map(|p| {
                serde_json::json!({
                    "phase": p.name,
                    "calls": p.calls,
                    "nanos": p.nanos,
                })
            })
            .collect::<Vec<_>>(),
        "counters": counters
            .iter()
            .map(|c| serde_json::json!({"counter": c.name, "value": c.value}))
            .collect::<Vec<_>>(),
    })
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f64 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - y).abs() as f64)
        .fold(0.0, f64::max)
}

fn main() {
    let threads = tspar::threads();
    println!("kernel micro-bench: {threads} thread(s) (KD_THREADS to override)\n");
    println!(
        "{:<16} {:>10} {:>5}x{:<4}x{:<4} {:>12} {:>12} {:>8} {:>10}",
        "case", "op", "n", "m", "k", "naive ns", "blocked ns", "speedup", "max|Δ|"
    );

    let mut rows = Vec::new();
    let mut log_speedup_sum = 0.0f64;
    for &(label, op, n, m, k) in CASES {
        let (a, b) = match op {
            "matmul" => (filled(&[n, k], 1), filled(&[k, m], 2)),
            // t_matmul: self is (inner, rows_out) = (k, n) in tensor terms.
            "t_matmul" => (filled(&[k, n], 1), filled(&[k, m], 2)),
            // matmul_t: other is (m, k).
            "matmul_t" => (filled(&[n, k], 1), filled(&[m, k], 2)),
            _ => unreachable!(),
        };
        let (fast, slow): (Tensor, Tensor) = match op {
            "matmul" => (a.matmul(&b), a.matmul_naive(&b)),
            "t_matmul" => (a.t_matmul(&b), a.t_matmul_naive(&b)),
            "matmul_t" => (a.matmul_t(&b), a.matmul_t_naive(&b)),
            _ => unreachable!(),
        };
        let diff = max_abs_diff(&fast, &slow);
        assert!(
            diff <= 1e-5,
            "{label}: blocked kernel diverged from naive ({diff})"
        );

        let naive_ns = match op {
            "matmul" => time_ns(|| a.matmul_naive(&b)),
            "t_matmul" => time_ns(|| a.t_matmul_naive(&b)),
            "matmul_t" => time_ns(|| a.matmul_t_naive(&b)),
            _ => unreachable!(),
        };
        let blocked_ns = match op {
            "matmul" => time_ns(|| a.matmul(&b)),
            "t_matmul" => time_ns(|| a.t_matmul(&b)),
            "matmul_t" => time_ns(|| a.matmul_t(&b)),
            _ => unreachable!(),
        };
        let speedup = naive_ns / blocked_ns;
        log_speedup_sum += speedup.ln();
        println!(
            "{:<16} {:>10} {:>5}x{:<4}x{:<4} {:>12.0} {:>12.0} {:>7.2}x {:>10.2e}",
            label, op, n, m, k, naive_ns, blocked_ns, speedup, diff
        );
        rows.push(serde_json::json!({
            "case": label,
            "op": op,
            "n": n,
            "m": m,
            "k": k,
            "naive_ns": naive_ns,
            "blocked_ns": blocked_ns,
            "speedup": speedup,
            "max_abs_diff": diff,
        }));
    }

    let geomean = (log_speedup_sum / CASES.len() as f64).exp();
    println!("\ngeomean speedup: {geomean:.2}x at {threads} thread(s)");

    // --- Lane kernel vs the previous blocked kernel, bitwise-guarded. -----
    let simd = simd_benchmark(threads);

    // --- k-blocked dual-panel kernel vs the unblocked sweep, large k. -----
    let gemm_large_k = large_k_benchmark();

    // --- Serving throughput: direct batch vs the queued front-end, --------
    // --- sampled interleaved (see serving_benchmarks). --------------------
    println!();
    kdprof::reset();
    let (serve, serve_queue) = serving_benchmarks();
    // Snapshot the profile before the router/train sections add their own
    // phases, so the record isolates the serving hot path.
    let profile = profile_record();
    println!(
        "serving throughput: {:.0} selections/sec, {:.0} windows/sec \
         (batch {}, {} windows/series, ConvNet w{})",
        serve.selections_per_sec(),
        serve.windows_per_sec(),
        serve.batch,
        serve.windows_per_series,
        serve.width,
    );

    // --- Routed serving: 4-shard router vs direct, same producers. --------
    let route = route_benchmark();

    // --- Training throughput: session stack, 1 vs N threads. --------------
    let train = train_benchmark();

    // --- Streaming loop: ingest throughput + drift->deploy latency. -------
    let stream = stream_benchmark();

    // --- Region dispatch overhead: persistent pool vs spawn/join. ---------
    let dispatch = dispatch_overhead();

    // --- MIN_PAR_WORK calibration: serial vs pool across work sizes. ------
    let par_gate = par_gate_sweep();

    let serve_record = serde_json::json!({
        "batch": serve.batch,
        "series_len": serve.series_len,
        "window": serve.window,
        "width": serve.width,
        "windows_per_series": serve.windows_per_series,
        "batch_seconds": serve.batch_seconds,
        "selections_per_sec": serve.selections_per_sec(),
        "windows_per_sec": serve.windows_per_sec(),
    });
    let record = serde_json::json!({
        "bench": "micro_kernels",
        "threads": threads,
        "geomean_speedup": geomean,
        "cases": rows,
        "simd": simd,
        "gemm_large_k": gemm_large_k,
        "serve": serve_record,
        "serve_queue": serve_queue,
        "profile": profile,
        "route": route,
        "train": train,
        "stream": stream,
        "dispatch": dispatch,
        "par_gate": par_gate,
    });
    let path = std::env::var("KD_BENCH_OUT").unwrap_or_else(|_| "BENCH_micro.json".into());
    let line = serde_json::to_string(&record).expect("serializable record");
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            let _ = writeln!(f, "{line}");
            println!("appended record to {path}");
        }
        Err(e) => eprintln!("could not append to {path}: {e}"),
    }
}
