//! Kernel-level speedup record — blocked/parallel GEMM vs the naive seed
//! kernel at matrix shapes drawn from the selector architectures — plus a
//! serving-throughput record (selections/sec through the batched
//! `SelectorEngine` at a fixed 64-series batch).
//!
//! Appends one compact JSON line per run to `BENCH_micro.json` (repo root,
//! override with `KD_BENCH_OUT`) so the perf trajectory is tracked PR over
//! PR. Run via `scripts/bench.sh` or:
//!
//! ```text
//! cargo run --release -p kdselector-bench --bin micro_kernels
//! ```

use kdselector_core::selector::NnSelector;
use kdselector_core::serve::SelectorEngine;
use kdselector_core::train::TrainedSelector;
use kdselector_core::Architecture;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;
use tsdata::{TimeSeries, WindowConfig};
use tsnn::Tensor;

/// (label, op, n, m, k) — shapes taken from the workspace's hot paths:
/// Linear forward/backward in the MKI projection MLPs (256-wide hidden),
/// the InfoNCE similarity matrix, classifier layers over minibatches, and
/// a square stress shape for the cache-blocking headroom.
const CASES: &[(&str, &str, usize, usize, usize)] = &[
    ("mki_mlp_fc1", "matmul", 64, 256, 64),
    ("mki_mlp_fc1_dw", "t_matmul", 64, 256, 64),
    ("mki_mlp_fc1_dx", "matmul_t", 64, 64, 256),
    ("mki_mlp_fc2", "matmul", 64, 64, 256),
    ("infonce_sim", "matmul_t", 64, 64, 64),
    ("classifier", "matmul", 256, 12, 128),
    ("classifier_dw", "t_matmul", 256, 12, 128),
    ("square_256", "matmul", 256, 256, 256),
    ("square_256_t", "matmul_t", 256, 256, 256),
];

fn filled(shape: &[usize], seed: u32) -> Tensor {
    // Cheap deterministic fill; values in [-0.5, 0.5).
    let numel: usize = shape.iter().product();
    let data = (0..numel)
        .map(|i| {
            (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 8) & 0xFFFF) as f32
                / 65536.0
                - 0.5
        })
        .collect();
    Tensor::from_vec(shape, data)
}

/// Median-of-samples nanoseconds per call.
fn time_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    // Calibrate batch size to ~10ms.
    let t0 = Instant::now();
    let _keep = f();
    let once = t0.elapsed().as_secs_f64().max(1e-7);
    let batch = ((0.01 / once).ceil() as usize).clamp(1, 20_000);
    let mut samples = Vec::with_capacity(7);
    for _ in 0..7 {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(t.elapsed().as_secs_f64() / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2] * 1e9
}

/// Serving throughput numbers for the JSON record.
struct ServeBench {
    batch: usize,
    series_len: usize,
    window: usize,
    width: usize,
    windows_per_series: usize,
    batch_seconds: f64,
}

impl ServeBench {
    fn selections_per_sec(&self) -> f64 {
        self.batch as f64 / self.batch_seconds
    }

    fn windows_per_sec(&self) -> f64 {
        (self.batch * self.windows_per_series) as f64 / self.batch_seconds
    }
}

/// Times the batch-first serving path: a fixed batch of synthetic series
/// through a `SelectorEngine`-registered ConvNet selector, reported as
/// selections (series) per second.
fn serve_throughput() -> ServeBench {
    const BATCH: usize = 64;
    const SERIES_LEN: usize = 1024;
    const WINDOW: usize = 64;
    const WIDTH: usize = 8;

    let window_cfg = WindowConfig {
        length: WINDOW,
        stride: WINDOW / 2,
        znormalize: true,
    };
    let model = TrainedSelector::build(Architecture::ConvNet, WINDOW, WIDTH, 7);
    let mut engine = SelectorEngine::new();
    engine.register(
        "convnet",
        Arc::new(NnSelector::new("convnet", model, window_cfg)),
    );
    let batch: Vec<TimeSeries> = (0..BATCH)
        .map(|i| {
            TimeSeries::new(
                format!("bench-{i}"),
                "D",
                (0..SERIES_LEN)
                    .map(|t| {
                        let x = t as f64 * 0.05 + i as f64 * 0.7;
                        x.sin() + 0.3 * (x * 2.3).cos()
                    })
                    .collect(),
                vec![],
            )
        })
        .collect();
    let windows_per_series = (SERIES_LEN - WINDOW) / (WINDOW / 2) + 1;

    // Warm up once, then median-of-5 batch times.
    let selections = engine.select_batch("convnet", &batch).expect("registered");
    assert_eq!(selections.len(), BATCH);
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let t = Instant::now();
        std::hint::black_box(engine.select_batch("convnet", &batch).expect("registered"));
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let batch_seconds = samples[samples.len() / 2];

    ServeBench {
        batch: BATCH,
        series_len: SERIES_LEN,
        window: WINDOW,
        width: WIDTH,
        windows_per_series,
        batch_seconds,
    }
}

/// Per-region dispatch overhead: the same fixed partitions executed on the
/// persistent pool vs the pre-pool scoped spawn/join reference, at work
/// sizes small enough that dispatch (not compute) dominates. Results are
/// bit-identical by construction (`tests/pool_determinism.rs` enforces
/// it); this measures only the fixed cost a region pays to go parallel.
fn dispatch_overhead() -> Vec<serde_json::Value> {
    const WIDTH: usize = 4;
    tspar::set_parallelism(tspar::Parallelism::Fixed(WIDTH));

    let mut records = Vec::new();
    println!(
        "\n{:<18} {:>8} {:>12} {:>12} {:>8}",
        "region", "elems", "spawn ns", "pool ns", "speedup"
    );
    for &elems in &[4 * 1024usize, 64 * 1024] {
        let chunk = elems.div_ceil(WIDTH);
        let mut buf = vec![0.0f32; elems];
        let mut region = |backend| {
            tspar::set_backend(backend);
            // Warm up (spawns the pool workers on the first pooled region).
            tspar::par_chunks_mut(&mut buf, chunk, |ci, c| {
                for (j, x) in c.iter_mut().enumerate() {
                    *x = (ci * chunk + j) as f32 * 1.0009;
                }
            });
            time_ns(|| {
                tspar::par_chunks_mut(&mut buf, chunk, |ci, c| {
                    for (j, x) in c.iter_mut().enumerate() {
                        *x = (ci * chunk + j) as f32 * 1.0009;
                    }
                });
            })
        };
        let spawn_ns = region(tspar::Backend::Spawn);
        let pool_ns = region(tspar::Backend::Pool);
        let speedup = spawn_ns / pool_ns;
        println!(
            "{:<18} {:>8} {:>12.0} {:>12.0} {:>7.2}x",
            "par_chunks_mut", elems, spawn_ns, pool_ns, speedup
        );
        records.push(serde_json::json!({
            "region": "par_chunks_mut",
            "elems": elems,
            "threads": WIDTH,
            "spawn_ns": spawn_ns,
            "pool_ns": pool_ns,
            "speedup": speedup,
        }));
    }
    tspar::set_backend(tspar::Backend::Pool);
    tspar::set_parallelism(tspar::Parallelism::Auto);
    records
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f64 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - y).abs() as f64)
        .fold(0.0, f64::max)
}

fn main() {
    let threads = tspar::threads();
    println!("kernel micro-bench: {threads} thread(s) (KD_THREADS to override)\n");
    println!(
        "{:<16} {:>10} {:>5}x{:<4}x{:<4} {:>12} {:>12} {:>8} {:>10}",
        "case", "op", "n", "m", "k", "naive ns", "blocked ns", "speedup", "max|Δ|"
    );

    let mut rows = Vec::new();
    let mut log_speedup_sum = 0.0f64;
    for &(label, op, n, m, k) in CASES {
        let (a, b) = match op {
            "matmul" => (filled(&[n, k], 1), filled(&[k, m], 2)),
            // t_matmul: self is (inner, rows_out) = (k, n) in tensor terms.
            "t_matmul" => (filled(&[k, n], 1), filled(&[k, m], 2)),
            // matmul_t: other is (m, k).
            "matmul_t" => (filled(&[n, k], 1), filled(&[m, k], 2)),
            _ => unreachable!(),
        };
        let (fast, slow): (Tensor, Tensor) = match op {
            "matmul" => (a.matmul(&b), a.matmul_naive(&b)),
            "t_matmul" => (a.t_matmul(&b), a.t_matmul_naive(&b)),
            "matmul_t" => (a.matmul_t(&b), a.matmul_t_naive(&b)),
            _ => unreachable!(),
        };
        let diff = max_abs_diff(&fast, &slow);
        assert!(
            diff <= 1e-5,
            "{label}: blocked kernel diverged from naive ({diff})"
        );

        let naive_ns = match op {
            "matmul" => time_ns(|| a.matmul_naive(&b)),
            "t_matmul" => time_ns(|| a.t_matmul_naive(&b)),
            "matmul_t" => time_ns(|| a.matmul_t_naive(&b)),
            _ => unreachable!(),
        };
        let blocked_ns = match op {
            "matmul" => time_ns(|| a.matmul(&b)),
            "t_matmul" => time_ns(|| a.t_matmul(&b)),
            "matmul_t" => time_ns(|| a.matmul_t(&b)),
            _ => unreachable!(),
        };
        let speedup = naive_ns / blocked_ns;
        log_speedup_sum += speedup.ln();
        println!(
            "{:<16} {:>10} {:>5}x{:<4}x{:<4} {:>12.0} {:>12.0} {:>7.2}x {:>10.2e}",
            label, op, n, m, k, naive_ns, blocked_ns, speedup, diff
        );
        rows.push(serde_json::json!({
            "case": label,
            "op": op,
            "n": n,
            "m": m,
            "k": k,
            "naive_ns": naive_ns,
            "blocked_ns": blocked_ns,
            "speedup": speedup,
            "max_abs_diff": diff,
        }));
    }

    let geomean = (log_speedup_sum / CASES.len() as f64).exp();
    println!("\ngeomean speedup: {geomean:.2}x at {threads} thread(s)");

    // --- Serving throughput: selections/sec through the batched engine. ---
    let serve = serve_throughput();
    println!(
        "\nserving throughput: {:.0} selections/sec, {:.0} windows/sec \
         (batch {}, {} windows/series, ConvNet w{})",
        serve.selections_per_sec(),
        serve.windows_per_sec(),
        serve.batch,
        serve.windows_per_series,
        serve.width,
    );

    // --- Region dispatch overhead: persistent pool vs spawn/join. ---------
    let dispatch = dispatch_overhead();

    let serve_record = serde_json::json!({
        "batch": serve.batch,
        "series_len": serve.series_len,
        "window": serve.window,
        "width": serve.width,
        "windows_per_series": serve.windows_per_series,
        "batch_seconds": serve.batch_seconds,
        "selections_per_sec": serve.selections_per_sec(),
        "windows_per_sec": serve.windows_per_sec(),
    });
    let record = serde_json::json!({
        "bench": "micro_kernels",
        "threads": threads,
        "geomean_speedup": geomean,
        "cases": rows,
        "serve": serve_record,
        "dispatch": dispatch,
    });
    let path = std::env::var("KD_BENCH_OUT").unwrap_or_else(|_| "BENCH_micro.json".into());
    let line = serde_json::to_string(&record).expect("serializable record");
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            let _ = writeln!(f, "{line}");
            println!("appended record to {path}");
        }
        Err(e) => eprintln!("could not append to {path}: {e}"),
    }
}
