//! Wall-clock calibration: label generation + one ResNet training run.
use kdselector_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let pipeline = scale.prepare();
    eprintln!("windows = {}", pipeline.dataset.len());
    let t0 = std::time::Instant::now();
    let outcome = pipeline.train_nn_selector();
    eprintln!(
        "train: {:.1}s ({} epochs), avg AUC-PR {:.3}, oracle {:.3}",
        t0.elapsed().as_secs_f64(),
        outcome.stats.epoch_loss.len(),
        outcome.report.average_auc_pr(),
        pipeline.test_perf.oracle_mean(),
    );
}
