//! Principal component analysis via power iteration with deflation.
//!
//! Used by the PCA anomaly detector (reconstruction-error scoring) and kept
//! deliberately simple: the detectors only need the first handful of
//! components of small covariance matrices (window length ≤ a few hundred).

use crate::Matrix;

/// Result of a PCA fit.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-feature mean subtracted before projection.
    pub mean: Vec<f64>,
    /// Principal axes, one row per component (unit vectors).
    pub components: Matrix,
    /// Eigenvalues (explained variance) per component, descending.
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits `n_components` principal components to the rows of `x`.
    ///
    /// Components whose eigenvalue collapses to (numerical) zero are dropped,
    /// so the returned model may have fewer components than requested.
    ///
    /// # Panics
    /// Panics if `x` has no rows or no columns.
    pub fn fit(x: &Matrix, n_components: usize) -> Self {
        assert!(x.rows() > 0 && x.cols() > 0, "PCA needs a non-empty matrix");
        let d = x.cols();
        let mean = column_means(x);
        let cov = covariance(x, &mean);

        let mut deflated = cov;
        let mut components = Vec::new();
        let mut eigenvalues = Vec::new();
        let k = n_components.min(d);
        for c in 0..k {
            let (val, vec) = match dominant_eigenpair(&deflated, 256, 1e-10, c as u64) {
                Some(pair) => pair,
                None => break,
            };
            if val <= 1e-12 {
                break;
            }
            // Deflate: C ← C − λ v vᵀ.
            for i in 0..d {
                for j in 0..d {
                    deflated[(i, j)] -= val * vec[i] * vec[j];
                }
            }
            components.push(vec);
            eigenvalues.push(val);
        }
        let comp_mat = if components.is_empty() {
            Matrix::zeros(0, d)
        } else {
            Matrix::from_rows(&components)
        };
        Pca {
            mean,
            components: comp_mat,
            explained_variance: eigenvalues,
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Projects a single sample into component space.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(a, m)| a - m).collect();
        self.components.matvec(&centered)
    }

    /// Squared reconstruction error of `x` after projecting onto the
    /// retained components — the PCA anomaly score.
    pub fn reconstruction_error(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(a, m)| a - m).collect();
        let proj = self.components.matvec(&centered);
        // ||c||² − ||proj||² because the components are orthonormal.
        let total: f64 = centered.iter().map(|v| v * v).sum();
        let captured: f64 = proj.iter().map(|v| v * v).sum();
        (total - captured).max(0.0)
    }
}

/// Column means of a matrix.
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let mut mean = vec![0.0; x.cols()];
    for i in 0..x.rows() {
        for (m, &v) in mean.iter_mut().zip(x.row(i)) {
            *m += v;
        }
    }
    let n = x.rows() as f64;
    for m in &mut mean {
        *m /= n;
    }
    mean
}

/// Sample covariance matrix of the rows of `x` (divides by `n`, not `n-1`,
/// matching what the detectors need — only relative magnitudes matter).
pub fn covariance(x: &Matrix, mean: &[f64]) -> Matrix {
    let d = x.cols();
    let mut cov = Matrix::zeros(d, d);
    let mut centered = vec![0.0; d];
    for i in 0..x.rows() {
        for (c, (&v, &m)) in centered.iter_mut().zip(x.row(i).iter().zip(mean)) {
            *c = v - m;
        }
        for a in 0..d {
            let ca = centered[a];
            if ca == 0.0 {
                continue;
            }
            let row = cov.row_mut(a);
            for (o, &cb) in row.iter_mut().zip(&centered) {
                *o += ca * cb;
            }
        }
    }
    let n = x.rows() as f64;
    for a in 0..d {
        for v in cov.row_mut(a) {
            *v /= n;
        }
    }
    cov
}

/// Power iteration for the dominant eigenpair of a symmetric matrix.
///
/// Returns `None` if the iteration degenerates (e.g. zero matrix).
fn dominant_eigenpair(
    a: &Matrix,
    max_iters: usize,
    tol: f64,
    seed: u64,
) -> Option<(f64, Vec<f64>)> {
    let n = a.rows();
    // Deterministic pseudo-random start vector (splitmix64) so ties break
    // reproducibly without an RNG dependency.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut v: Vec<f64> = (0..n)
        .map(|_| {
            state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(31);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    normalize(&mut v)?;
    let mut eigenvalue = 0.0;
    for _ in 0..max_iters {
        let mut w = a.matvec(&v);
        let norm = normalize(&mut w)?;
        let delta: f64 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
        v = w;
        eigenvalue = norm;
        if delta < tol {
            break;
        }
    }
    // Rayleigh quotient for a signed eigenvalue estimate.
    let av = a.matvec(&v);
    let rq: f64 = av.iter().zip(&v).map(|(a, b)| a * b).sum();
    let _ = eigenvalue;
    Some((rq, v))
}

fn normalize(v: &mut [f64]) -> Option<f64> {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm < 1e-300 || !norm.is_finite() {
        return None;
    }
    for x in v.iter_mut() {
        *x /= norm;
    }
    Some(norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points stretched along the x-axis: first component must be ~(1, 0).
    #[test]
    fn first_component_follows_dominant_direction() {
        let mut rows = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 10.0 - 2.5;
            rows.push(vec![10.0 * t, 0.1 * (i % 3) as f64]);
        }
        let x = Matrix::from_rows(&rows);
        let pca = Pca::fit(&x, 2);
        assert!(pca.n_components() >= 1);
        let c0 = pca.components.row(0);
        assert!(c0[0].abs() > 0.999, "dominant axis should be x: {c0:?}");
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rows = Vec::new();
        for i in 0..40 {
            let t = i as f64;
            rows.push(vec![t.sin() * 3.0, t.cos() * 2.0, (t * 0.3).sin()]);
        }
        let x = Matrix::from_rows(&rows);
        let pca = Pca::fit(&x, 3);
        let k = pca.n_components();
        for a in 0..k {
            for b in 0..k {
                let dot: f64 = pca
                    .components
                    .row(a)
                    .iter()
                    .zip(pca.components.row(b))
                    .map(|(x, y)| x * y)
                    .sum();
                let expected = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-4, "component {a}·{b} = {dot}");
            }
        }
    }

    #[test]
    fn explained_variance_is_descending() {
        let mut rows = Vec::new();
        for i in 0..60 {
            let t = i as f64 / 5.0;
            rows.push(vec![5.0 * t, t + (i % 2) as f64, 0.05 * (i % 5) as f64]);
        }
        let pca = Pca::fit(&Matrix::from_rows(&rows), 3);
        for w in pca.explained_variance.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-9,
                "variance must be descending: {:?}",
                pca.explained_variance
            );
        }
    }

    #[test]
    fn reconstruction_error_zero_for_in_subspace_points() {
        // Data on a line through the mean: 1 component reconstructs exactly.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let pca = Pca::fit(&x, 1);
        let err = pca.reconstruction_error(&[5.0, 10.0]);
        assert!(err < 1e-8, "on-line point should reconstruct: {err}");
        let err_off = pca.reconstruction_error(&[5.0, -10.0]);
        assert!(err_off > 1.0, "off-line point should have error: {err_off}");
    }

    #[test]
    fn transform_centers_data() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 + 100.0]).collect();
        let x = Matrix::from_rows(&rows);
        let pca = Pca::fit(&x, 1);
        // Mean point must project to ~0.
        let z = pca.transform(&[104.5]);
        assert!(z[0].abs() < 1e-9);
    }
}
