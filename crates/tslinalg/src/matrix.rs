//! Row-major dense `f64` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// The type is intentionally small: it supports exactly the operations the
/// workspace needs (construction, element access, multiplication, transpose,
/// Gram products, row views) and panics on shape mismatches, which in this
/// codebase always indicate a programming error rather than bad user input.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must match rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix whose rows are the given slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the classic i-k-j loop order so the innermost loop runs over
    /// contiguous memory of both the output row and the `other` row, which
    /// lets LLVM vectorise it.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let o_row = out.row_mut(i);
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must match column count");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Gram matrix `selfᵀ * self` (`cols × cols`), computed without
    /// materialising the transpose.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            for (a_idx, &a) in row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = out.row_mut(a_idx);
                for (o, &b) in o_row.iter_mut().zip(row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ * v` where `v` has one entry per row of `self`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows`.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length must match row count");
        let mut out = vec![0.0; self.cols];
        for (i, &scale) in v.iter().enumerate() {
            if scale == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(self.row(i)) {
                *o += scale * x;
            }
        }
        out
    }

    /// Adds `value` to every diagonal entry (ridge regularisation helper).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_neutral() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i2 = Matrix::identity(2);
        let i3 = Matrix::identity(3);
        assert_eq!(i2.matmul(&a), a);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn matmul_matches_hand_computed_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 2.0, 4.0, 0.5]);
        let v = vec![3.0, -2.0, 1.0];
        assert_eq!(a.matvec(&v), vec![2.0, -1.5]);
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_equals_transpose_matmul() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 0.0, -1.0, 4.0, 0.5]);
        let g = a.gram();
        let expected = a.transpose().matmul(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - expected[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn t_matvec_equals_transpose_matvec() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 0.0, -1.0, 4.0, 0.5]);
        let v = vec![1.0, -1.0, 2.0];
        assert_eq!(a.t_matvec(&v), a.transpose().matvec(&v));
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(3.5);
        assert_eq!(a.as_slice(), &[3.5, 0.0, 0.0, 3.5]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_rows_builds_expected_layout() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }
}
