//! Small real discrete Fourier transform for spectral features.
//!
//! The feature extractor only needs magnitude spectra of short windows
//! (≤ 1024 points), so a direct O(n²) DFT with precomputed twiddle factors is
//! fast enough and keeps the crate dependency-free. A radix-2 path handles
//! power-of-two lengths in O(n log n) for the longer series used by NORMA's
//! periodicity estimator.

use std::f64::consts::PI;

/// Magnitude spectrum of a real signal: `|X_k|` for `k = 0 .. n/2`.
///
/// Uses radix-2 FFT when `n` is a power of two, otherwise a direct DFT.
pub fn magnitude_spectrum(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let (re, im) = if n.is_power_of_two() && n >= 2 {
        fft_radix2(signal)
    } else {
        dft_direct(signal)
    };
    (0..=n / 2)
        .map(|k| (re[k] * re[k] + im[k] * im[k]).sqrt())
        .collect()
}

/// Dominant period of a signal estimated from the magnitude spectrum,
/// ignoring the DC component. Returns `None` for constant/degenerate input.
///
/// This is the periodicity hint used by the NORMA and MP detectors to pick a
/// subsequence length automatically.
pub fn dominant_period(signal: &[f64]) -> Option<usize> {
    let n = signal.len();
    if n < 8 {
        return None;
    }
    // Work on a power-of-two prefix for speed.
    let m = n.next_power_of_two() / 2;
    let m = m.clamp(8, n);
    let spec = magnitude_spectrum(&signal[..m]);
    // Skip DC (k=0) and the lowest bin (trend); find the peak.
    let mut best_k = 0;
    let mut best_v = 0.0;
    for (k, &v) in spec.iter().enumerate().skip(2) {
        if v > best_v {
            best_v = v;
            best_k = k;
        }
    }
    if best_k == 0 || best_v <= 1e-12 {
        return None;
    }
    let period = m / best_k;
    if period >= 2 {
        Some(period)
    } else {
        None
    }
}

fn dft_direct(signal: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = signal.len();
    let mut re = vec![0.0; n];
    let mut im = vec![0.0; n];
    let step = -2.0 * PI / n as f64;
    for k in 0..n {
        let mut sr = 0.0;
        let mut si = 0.0;
        for (t, &x) in signal.iter().enumerate() {
            let angle = step * (k * t % n) as f64;
            sr += x * angle.cos();
            si += x * angle.sin();
        }
        re[k] = sr;
        im[k] = si;
    }
    (re, im)
}

/// Iterative radix-2 Cooley–Tukey FFT of a real signal.
fn fft_radix2(signal: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = signal.len();
    debug_assert!(n.is_power_of_two());
    let mut re: Vec<f64> = signal.to_vec();
    let mut im = vec![0.0; n];
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * PI / len as f64;
        let (wr, wi) = (angle.cos(), angle.sin());
        let mut start = 0;
        while start < n {
            let mut cr = 1.0;
            let mut ci = 0.0;
            for k in 0..len / 2 {
                let even = start + k;
                let odd = start + k + len / 2;
                let tr = cr * re[odd] - ci * im[odd];
                let ti = cr * im[odd] + ci * re[odd];
                re[odd] = re[even] - tr;
                im[odd] = im[even] - ti;
                re[even] += tr;
                im[even] += ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            start += len;
        }
        len <<= 1;
    }
    (re, im)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_of_pure_sine_peaks_at_its_frequency() {
        let n = 128;
        let freq = 8; // cycles over the window
        let signal: Vec<f64> = (0..n)
            .map(|t| (2.0 * PI * freq as f64 * t as f64 / n as f64).sin())
            .collect();
        let spec = magnitude_spectrum(&signal);
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(k, _)| k)
            .unwrap();
        assert_eq!(peak, freq);
    }

    #[test]
    fn fft_matches_direct_dft() {
        let signal: Vec<f64> = (0..64)
            .map(|t| ((t * t) as f64 * 0.1).sin() + 0.3)
            .collect();
        let (fr, fi) = fft_radix2(&signal);
        let (dr, di) = dft_direct(&signal);
        for k in 0..64 {
            assert!((fr[k] - dr[k]).abs() < 1e-8, "re[{k}]");
            assert!((fi[k] - di[k]).abs() < 1e-8, "im[{k}]");
        }
    }

    #[test]
    fn non_power_of_two_lengths_work() {
        let signal: Vec<f64> = (0..100).map(|t| (t as f64 * 0.2).cos()).collect();
        let spec = magnitude_spectrum(&signal);
        assert_eq!(spec.len(), 51);
        assert!(spec.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dominant_period_of_periodic_signal() {
        let period = 16;
        let signal: Vec<f64> = (0..512)
            .map(|t| (2.0 * PI * t as f64 / period as f64).sin())
            .collect();
        let p = dominant_period(&signal).unwrap();
        assert!(
            (p as i64 - period as i64).abs() <= 2,
            "estimated {p}, expected ~{period}"
        );
    }

    #[test]
    fn dominant_period_none_for_constant() {
        let signal = vec![3.0; 256];
        assert_eq!(dominant_period(&signal), None);
    }

    #[test]
    fn empty_signal_gives_empty_spectrum() {
        assert!(magnitude_spectrum(&[]).is_empty());
    }

    #[test]
    fn dc_component_equals_sum() {
        let signal = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let spec = magnitude_spectrum(&signal);
        assert!((spec[0] - 15.0).abs() < 1e-9);
    }
}
