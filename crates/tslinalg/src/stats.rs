//! Scalar statistics shared across the workspace.

/// Arithmetic mean. Returns 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns 0 for fewer than 2 samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample skewness (0 for degenerate input).
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 3 {
        return 0.0;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 {
        return 0.0;
    }
    xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / n as f64
}

/// Excess kurtosis (0 for degenerate input).
pub fn kurtosis(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 4 {
        return 0.0;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 {
        return 0.0;
    }
    xs.iter().map(|x| ((x - m) / s).powi(4)).sum::<f64>() / n as f64 - 3.0
}

/// Quantile via linear interpolation on a *sorted* slice.
///
/// `q` is clamped to `[0, 1]`. Returns 0 for empty input.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Quantile of an unsorted slice (allocates a sorted copy).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    quantile_sorted(&sorted, q)
}

/// Median of an unsorted slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Autocorrelation at the given lag (0 for degenerate input).
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    let n = xs.len();
    if lag >= n || n < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom < 1e-12 {
        return 0.0;
    }
    let num: f64 = (0..n - lag).map(|i| (xs[i] - m) * (xs[i + lag] - m)).sum();
    num / denom
}

/// Z-normalises a slice in place. Constant slices become all zeros.
pub fn znormalize(xs: &mut [f64]) {
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 {
        for x in xs.iter_mut() {
            *x = 0.0;
        }
    } else {
        for x in xs.iter_mut() {
            *x = (*x - m) / s;
        }
    }
}

/// Min-max rescales scores into `[0, 1]`. Constant input maps to all zeros.
pub fn minmax_scale(xs: &mut [f64]) {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs.iter() {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    let range = hi - lo;
    if range < 1e-300 || !range.is_finite() {
        for x in xs.iter_mut() {
            *x = 0.0;
        }
    } else {
        for x in xs.iter_mut() {
            *x = (*x - lo) / range;
        }
    }
}

/// Euclidean distance between two equal-length slices.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Simple linear-regression slope of `xs` against `0..n`.
pub fn linear_trend_slope(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let tx = (n - 1) as f64 / 2.0;
    let my = mean(xs);
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in xs.iter().enumerate() {
        let dx = i as f64 - tx;
        num += dx * (y - my);
        den += dx * dx;
    }
    if den < 1e-12 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn skewness_sign_reflects_tail() {
        let right_tail = [1.0, 1.0, 1.0, 1.0, 10.0];
        let left_tail = [-10.0, 1.0, 1.0, 1.0, 1.0];
        assert!(skewness(&right_tail) > 0.5);
        assert!(skewness(&left_tail) < -0.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0) - 0.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 2.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_periodic_signal() {
        let xs: Vec<f64> = (0..200)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 10.0).sin())
            .collect();
        assert!(autocorrelation(&xs, 10) > 0.9);
        assert!(autocorrelation(&xs, 5) < -0.9);
    }

    #[test]
    fn znormalize_gives_zero_mean_unit_std() {
        let mut xs: Vec<f64> = (0..50).map(|i| i as f64 * 3.0 + 7.0).collect();
        znormalize(&mut xs);
        assert!(mean(&xs).abs() < 1e-10);
        assert!((std_dev(&xs) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn znormalize_constant_becomes_zero() {
        let mut xs = vec![5.0; 10];
        znormalize(&mut xs);
        assert!(xs.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn minmax_scale_bounds() {
        let mut xs = vec![-3.0, 0.0, 9.0];
        minmax_scale(&mut xs);
        assert_eq!(xs[0], 0.0);
        assert_eq!(xs[2], 1.0);
        assert!((xs[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn trend_slope_of_line() {
        let xs: Vec<f64> = (0..30).map(|i| 2.0 * i as f64 + 1.0).collect();
        assert!((linear_trend_slope(&xs) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn kurtosis_of_uniformish_is_negative() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(kurtosis(&xs) < 0.0);
    }
}
