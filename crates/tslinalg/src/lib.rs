//! Minimal dense linear-algebra substrate for the KDSelector workspace.
//!
//! This crate deliberately implements only what the reproduction needs:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the handful of
//!   operations used by the classic-ML and detector crates (multiplication,
//!   transpose, Gram matrices).
//! * [`decomp`] — Cholesky factorisation and linear solves, used by the
//!   ridge-regression classifier behind the Rocket baseline.
//! * [`pca`] — covariance + power-iteration eigen decomposition, used by the
//!   PCA anomaly detector and the feature extractor.
//! * [`dft`] — a small real discrete Fourier transform for spectral features.
//! * [`stats`] — scalar statistics shared across crates (mean, variance,
//!   quantiles, ranks).
//!
//! Everything is pure safe Rust with no external dependencies, so the rest of
//! the workspace can rely on deterministic, portable numerics.

pub mod decomp;
pub mod dft;
pub mod matrix;
pub mod pca;
pub mod stats;

pub use matrix::Matrix;
