//! Cholesky factorisation and symmetric positive-definite linear solves.

use crate::Matrix;

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Index of the pivot that failed.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Computes the lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Errors
/// Returns [`NotPositiveDefinite`] if a pivot is not strictly positive.
///
/// # Panics
/// Panics if `a` is not square.
pub fn cholesky(a: &Matrix) -> Result<Matrix, NotPositiveDefinite> {
    assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
///
/// # Errors
/// Returns [`NotPositiveDefinite`] if the factorisation fails.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NotPositiveDefinite> {
    let l = cholesky(a)?;
    Ok(solve_with_factor(&l, b))
}

/// Solves `A X = B` column-by-column for symmetric positive-definite `A`.
///
/// `b` has one right-hand side per *column*; the result has the same shape.
///
/// # Errors
/// Returns [`NotPositiveDefinite`] if the factorisation fails.
pub fn solve_spd_multi(a: &Matrix, b: &Matrix) -> Result<Matrix, NotPositiveDefinite> {
    assert_eq!(a.rows(), b.rows(), "dimension mismatch");
    let l = cholesky(a)?;
    let mut out = Matrix::zeros(b.rows(), b.cols());
    let mut rhs = vec![0.0; b.rows()];
    for j in 0..b.cols() {
        for i in 0..b.rows() {
            rhs[i] = b[(i, j)];
        }
        let x = solve_with_factor(&l, &rhs);
        for i in 0..b.rows() {
            out[(i, j)] = x[i];
        }
    }
    Ok(out)
}

/// Solves `L Lᵀ x = b` given the lower-triangular factor `L`.
fn solve_with_factor(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n, "rhs length must match matrix size");
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // Backward substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Solves the ridge-regression normal equations `(XᵀX + λI) w = Xᵀy`.
///
/// This is the closed-form trainer used by the Rocket baseline's ridge
/// classifier. `lambda` must be positive so the system is always SPD.
pub fn ridge_solve(x: &Matrix, y: &[f64], lambda: f64) -> Vec<f64> {
    assert!(lambda > 0.0, "ridge lambda must be positive");
    let mut gram = x.gram();
    gram.add_diagonal(lambda);
    let rhs = x.t_matvec(y);
    solve_spd(&gram, &rhs).expect("ridge system is SPD by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for random-ish B, guaranteed SPD.
        Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 6.0, 2.0, 1.0, 2.0, 4.0])
    }

    #[test]
    fn cholesky_reconstructs_input() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_spd_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn solve_spd_multi_matches_single_solves() {
        let a = spd3();
        let b = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 2.0, -1.0]);
        let x = solve_spd_multi(&a, &b).unwrap();
        for j in 0..2 {
            let col: Vec<f64> = (0..3).map(|i| b[(i, j)]).collect();
            let single = solve_spd(&a, &col).unwrap();
            for i in 0..3 {
                assert!((x[(i, j)] - single[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn non_spd_matrix_is_rejected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn ridge_solution_shrinks_towards_zero_with_lambda() {
        // One-feature regression: w = Σxy / (Σx² + λ).
        let x = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let w_small = ridge_solve(&x, &y, 1e-6)[0];
        let w_big = ridge_solve(&x, &y, 100.0)[0];
        assert!((w_small - 2.0).abs() < 1e-4);
        assert!(w_big < w_small);
        assert!(w_big > 0.0);
    }
}
