//! The selector serving layer: a thread-safe registry of named selectors
//! answering batched selection requests.
//!
//! [`SelectorEngine`] is the process-level entry point a service wraps: it
//! owns `Arc<dyn Selector>`s (loadable from a [`SelectorStore`]), accepts a
//! [`SelectRequest`] carrying a *batch* of series, and answers with one
//! structured [`Selection`] per series — the chosen model plus the full
//! per-class vote tally and the vote margin, so callers can reason about
//! confidence, not just the argmax.
//!
//! # Determinism
//!
//! Batched serving runs each series through the selector's per-series
//! scoring kernel, fanned out over [`tspar`]'s fixed work partitions on
//! the persistent worker pool (so a high-QPS serving loop pays queue
//! dispatch per batch, not thread spawn/join). Partition boundaries depend
//! only on the batch size, never on the worker count or the execution
//! backend, so a batch served at `KD_THREADS=1` and at `KD_THREADS=64` —
//! or the same series selected one at a time via [`Selector::select`] —
//! produces bit-identical `Selection`s. The engine is `Send + Sync`;
//! N threads serving the same engine concurrently also agree exactly
//! (`tests/pool_determinism.rs` stresses concurrent callers across a
//! thread-count sweep against the pre-pool spawn path).
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use kdselector_core::manage::SelectorStore;
//! use kdselector_core::serve::{SelectRequest, SelectorEngine};
//! use tsdata::WindowConfig;
//!
//! let store = SelectorStore::open("selectors").unwrap();
//! let window = WindowConfig { length: 64, stride: 64, znormalize: true };
//! let mut engine = SelectorEngine::new();
//! engine.load(&store, "resnet-kd", window).unwrap();
//! let request = SelectRequest::new("resnet-kd", vec![/* series */]);
//! for selection in engine.handle(&request).unwrap() {
//!     println!("{} (margin {:.2})", selection.model, selection.margin);
//! }
//! ```

use crate::manage::SelectorStore;
use crate::selector::{argmax, majority_winner, vote_counts, NnSelector, Selector};
use std::collections::BTreeMap;
use std::sync::Arc;
use tsad_models::ModelId;
use tsdata::{TimeSeries, WindowConfig};

/// A batched selection request: which registered selector to use and the
/// series to select models for.
#[derive(Debug, Clone)]
pub struct SelectRequest {
    /// Name of a registered selector.
    pub selector: String,
    /// The batch of series to serve.
    pub batch: Vec<TimeSeries>,
}

impl SelectRequest {
    /// New request for `selector` over `batch`.
    pub fn new(selector: impl Into<String>, batch: Vec<TimeSeries>) -> Self {
        Self {
            selector: selector.into(),
            batch,
        }
    }
}

/// The structured result of selecting a model for one series.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Selection {
    /// The chosen model (majority vote over windows, low-index tie-break).
    pub model: ModelId,
    /// Per-class vote counts in [`ModelId::ALL`] order.
    pub votes: Vec<usize>,
    /// Number of windows that voted.
    pub windows: usize,
    /// Vote margin: `(top count − runner-up count) / windows`, in `[0, 1]`.
    /// `0` for windowless series; `1` when every window agrees.
    pub margin: f64,
}

impl Selection {
    /// Derives a selection from one series' per-window class scores,
    /// through the same argmax and majority rule as [`Selector::select`].
    pub fn from_scores(scores: &[Vec<f32>]) -> Self {
        let n_classes = ModelId::ALL.len();
        let window_votes: Vec<usize> = scores.iter().map(|row| argmax(row)).collect();
        let votes = vote_counts(&window_votes, n_classes);
        let winner = majority_winner(&votes);
        let mut sorted: Vec<usize> = votes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let windows = scores.len();
        let margin = if windows == 0 {
            0.0
        } else {
            (sorted[0] - sorted[1]) as f64 / windows as f64
        };
        Self {
            model: ModelId::from_index(winner),
            votes,
            windows,
            margin,
        }
    }
}

/// Errors a serving call can produce.
#[derive(Debug)]
pub enum ServeError {
    /// The request named a selector that is not registered.
    UnknownSelector(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownSelector(name) => {
                write!(f, "no selector registered under {name:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A registry of named, immutable selectors serving batched requests.
///
/// Registration (`register` / `load`) takes `&mut self`; serving
/// (`handle` / `select_batch`) takes `&self`, so a configured engine can be
/// shared across threads behind a plain reference or an `Arc`.
#[derive(Default, Clone)]
pub struct SelectorEngine {
    registry: BTreeMap<String, Arc<dyn Selector>>,
}

impl SelectorEngine {
    /// New empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a selector under `name`, replacing any previous entry.
    pub fn register(&mut self, name: impl Into<String>, selector: Arc<dyn Selector>) {
        self.registry.insert(name.into(), selector);
    }

    /// Loads a saved NN selector from `store` and registers it under its
    /// store name.
    ///
    /// # Errors
    /// Besides store I/O failures, fails with `InvalidInput` when
    /// `window.length` disagrees with the window length the selector was
    /// trained with — catching the mismatch here instead of panicking in a
    /// serving thread on the first request.
    pub fn load(
        &mut self,
        store: &SelectorStore,
        name: &str,
        window: WindowConfig,
    ) -> std::io::Result<()> {
        let model = store.load(name)?;
        if model.window != window.length {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "selector {name:?} was trained with window length {}, \
                     but the serving WindowConfig has length {}",
                    model.window, window.length
                ),
            ));
        }
        self.register(name, Arc::new(NnSelector::new(name, model, window)));
        Ok(())
    }

    /// The registered selector names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.registry.keys().map(|s| s.as_str()).collect()
    }

    /// Looks up a registered selector.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Selector>> {
        self.registry.get(name)
    }

    /// Number of registered selectors.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }

    /// Serves a batched request: one [`Selection`] per series, in request
    /// order. Bit-identical to per-series [`Selector::select`] calls at any
    /// thread count.
    pub fn handle(&self, request: &SelectRequest) -> Result<Vec<Selection>, ServeError> {
        self.select_batch(&request.selector, &request.batch)
    }

    /// Serves a batch against the named selector.
    pub fn select_batch(
        &self,
        selector: &str,
        batch: &[TimeSeries],
    ) -> Result<Vec<Selection>, ServeError> {
        let sel = self
            .registry
            .get(selector)
            .ok_or_else(|| ServeError::UnknownSelector(selector.to_string()))?;
        Ok(sel
            .window_scores(batch)
            .iter()
            .map(|scores| Selection::from_scores(scores))
            .collect())
    }
}

impl std::fmt::Debug for SelectorEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectorEngine")
            .field("selectors", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::train::TrainedSelector;

    fn sine_series(id: usize, len: usize) -> TimeSeries {
        TimeSeries::new(
            format!("serve-{id}"),
            "D",
            (0..len)
                .map(|t| ((t + 7 * id) as f64 * 0.21).sin() + 0.01 * id as f64)
                .collect(),
            vec![],
        )
    }

    fn test_engine() -> SelectorEngine {
        let window = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        let model = TrainedSelector::build(Architecture::ConvNet, 32, 4, 3);
        let mut engine = SelectorEngine::new();
        engine.register(
            "convnet",
            Arc::new(NnSelector::new("convnet", model, window)),
        );
        engine
    }

    #[test]
    fn unknown_selector_is_an_error() {
        let engine = test_engine();
        let err = engine.select_batch("ghost", &[]).unwrap_err();
        assert!(matches!(err, ServeError::UnknownSelector(ref n) if n == "ghost"));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn registry_lists_and_replaces() {
        let mut engine = test_engine();
        assert_eq!(engine.names(), vec!["convnet"]);
        assert_eq!(engine.len(), 1);
        assert!(!engine.is_empty());
        assert!(engine.get("convnet").is_some());
        let model = TrainedSelector::build(Architecture::ConvNet, 32, 4, 9);
        let window = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        engine.register("convnet", Arc::new(NnSelector::new("v2", model, window)));
        assert_eq!(engine.len(), 1, "same name replaces");
        assert_eq!(engine.get("convnet").unwrap().name(), "v2");
    }

    #[test]
    fn batched_selection_matches_per_series_select() {
        let engine = test_engine();
        let batch: Vec<TimeSeries> = (0..6).map(|i| sine_series(i, 200)).collect();
        let selections = engine.select_batch("convnet", &batch).unwrap();
        assert_eq!(selections.len(), 6);
        let sel = engine.get("convnet").unwrap();
        for (ts, selection) in batch.iter().zip(&selections) {
            assert_eq!(selection.model, sel.select(ts), "{}", ts.id);
            assert_eq!(selection.windows, sel.window_votes(ts).len());
            assert!(selection.windows > 0);
            assert_eq!(selection.votes.iter().sum::<usize>(), selection.windows);
            assert!((0.0..=1.0).contains(&selection.margin));
        }
    }

    #[test]
    fn handle_routes_requests() {
        let engine = test_engine();
        let request = SelectRequest::new("convnet", (0..3).map(|i| sine_series(i, 96)).collect());
        let selections = engine.handle(&request).unwrap();
        assert_eq!(selections.len(), 3);
    }

    #[test]
    fn selection_from_scores_votes_and_margin() {
        // 4 windows: classes 2, 2, 5, 2 → winner 2, margin (3-1)/4.
        let mk = |c: usize| {
            let mut row = vec![0.0f32; 12];
            row[c] = 1.0;
            row
        };
        let scores = vec![mk(2), mk(2), mk(5), mk(2)];
        let s = Selection::from_scores(&scores);
        assert_eq!(s.model, ModelId::from_index(2));
        assert_eq!(s.votes[2], 3);
        assert_eq!(s.votes[5], 1);
        assert_eq!(s.windows, 4);
        assert!((s.margin - 0.5).abs() < 1e-12);
    }

    #[test]
    fn windowless_series_selects_default_with_zero_margin() {
        let s = Selection::from_scores(&[]);
        assert_eq!(s.model, ModelId::from_index(0));
        assert_eq!(s.windows, 0);
        assert_eq!(s.margin, 0.0);
    }

    #[test]
    fn load_rejects_mismatched_window_length() {
        let dir = std::env::temp_dir().join(format!("kdsel-serve-load-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SelectorStore::open(&dir).unwrap();
        let model = TrainedSelector::build(Architecture::ConvNet, 64, 4, 1);
        store.save("w64", &model, "").unwrap();

        let mut engine = SelectorEngine::new();
        let bad = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        let err = engine.load(&store, "w64", bad).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(engine.is_empty(), "failed load must not register");

        let good = WindowConfig {
            length: 64,
            stride: 32,
            znormalize: true,
        };
        engine.load(&store, "w64", good).unwrap();
        assert_eq!(engine.names(), vec!["w64"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn check<T: Send + Sync>(_: &T) {}
        check(&test_engine());
    }
}
