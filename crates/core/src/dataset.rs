//! Window-level training data for selector learning.

use crate::labels::PerfMatrix;
use tsdata::families::family_by_name;
use tsdata::{extract_windows, TimeSeries, WindowConfig};
use tstext::{render_metadata, FrozenTextEncoder, SeriesMetadata};

/// The selector's training set: z-normalised windows with hard labels (best
/// model of the source series), the full per-model performance row (the PISL
/// soft-label source) and the frozen metadata embedding (the MKI knowledge
/// feature).
#[derive(Debug, Clone)]
pub struct SelectorDataset {
    /// Window values, each of length `window_cfg.length`.
    pub windows: Vec<Vec<f32>>,
    /// Source series of each window.
    pub series_index: Vec<usize>,
    /// Hard class label per window (index into `ModelId::ALL`).
    pub hard_labels: Vec<usize>,
    /// Per-series AUC-PR rows (12 columns).
    pub series_perf: Vec<Vec<f64>>,
    /// Per-series frozen metadata embeddings.
    pub series_knowledge: Vec<Vec<f32>>,
    /// Window extraction parameters.
    pub window_cfg: WindowConfig,
    /// Text-embedding width.
    pub text_dim: usize,
}

impl SelectorDataset {
    /// Builds the dataset from labeled series.
    ///
    /// # Panics
    /// Panics if `perf.len() != series.len()`.
    pub fn build(
        series: &[TimeSeries],
        perf: &PerfMatrix,
        window_cfg: WindowConfig,
        text_encoder: &FrozenTextEncoder,
    ) -> Self {
        assert_eq!(
            perf.len(),
            series.len(),
            "perf matrix must cover all series"
        );
        let mut windows = Vec::new();
        let mut series_index = Vec::new();
        let mut hard_labels = Vec::new();
        let mut series_perf = Vec::with_capacity(series.len());
        let mut series_knowledge = Vec::with_capacity(series.len());
        for (si, ts) in series.iter().enumerate() {
            let label = perf.best_model(si).index();
            series_perf.push(perf.row(si).to_vec());
            series_knowledge.push(text_encoder.encode(&metadata_text(ts)));
            for w in extract_windows(ts, si, &window_cfg) {
                windows.push(w.values);
                series_index.push(si);
                hard_labels.push(label);
            }
        }
        Self {
            windows,
            series_index,
            hard_labels,
            series_perf,
            series_knowledge,
            window_cfg,
            text_dim: text_encoder.dim(),
        }
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Number of source series.
    pub fn n_series(&self) -> usize {
        self.series_perf.len()
    }

    /// The PISL soft label of a window: `softmax(perf / t_soft)` over the 12
    /// models of its source series.
    pub fn soft_label(&self, window: usize, t_soft: f64) -> Vec<f32> {
        softmax_scaled(&self.series_perf[self.series_index[window]], t_soft)
    }

    /// The knowledge feature of a window (its series' metadata embedding).
    pub fn knowledge(&self, window: usize) -> &[f32] {
        &self.series_knowledge[self.series_index[window]]
    }

    /// The LSH input of a sample: window values, concatenated with the
    /// knowledge feature when MKI is active (`X_i = {T_i, z_K,i}` in §3).
    pub fn lsh_input(&self, window: usize, with_knowledge: bool) -> Vec<f64> {
        let mut v: Vec<f64> = self.windows[window].iter().map(|&x| x as f64).collect();
        if with_knowledge {
            v.extend(self.knowledge(window).iter().map(|&x| x as f64));
        }
        v
    }

    /// A 64-bit FNV-1a content fingerprint of the training set: window
    /// config, every window's raw bits, labels, series mapping,
    /// performance rows and knowledge embeddings. Training checkpoints
    /// store this so resuming over a *different* dataset — even one with
    /// the same window count — is a hard error instead of a silently
    /// corrupted continuation.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::hash::FNV_OFFSET;
        let mut mix = |v: u64| crate::hash::fnv1a_mix(&mut h, v);
        mix(self.window_cfg.length as u64);
        mix(self.window_cfg.stride as u64);
        mix(self.window_cfg.znormalize as u64);
        mix(self.text_dim as u64);
        mix(self.windows.len() as u64);
        for ((w, &si), &label) in self
            .windows
            .iter()
            .zip(&self.series_index)
            .zip(&self.hard_labels)
        {
            mix(si as u64);
            mix(label as u64);
            for &x in w {
                mix(u64::from(x.to_bits()));
            }
        }
        for (perf, know) in self.series_perf.iter().zip(&self.series_knowledge) {
            for &p in perf {
                mix(p.to_bits());
            }
            for &k in know {
                mix(u64::from(k.to_bits()));
            }
        }
        h
    }
}

/// Renders the paper's metadata template for a series, pulling the domain
/// description from its dataset family.
pub fn metadata_text(ts: &TimeSeries) -> String {
    let description = family_by_name(&ts.dataset)
        .map(|f| f.description.to_string())
        .unwrap_or_else(|| "a time series dataset".to_string());
    render_metadata(&SeriesMetadata {
        dataset_name: ts.dataset.clone(),
        domain_description: description,
        series_length: ts.len(),
        anomaly_lengths: ts.anomaly_lengths(),
    })
}

/// `softmax(row / t)` in f32.
fn softmax_scaled(row: &[f64], t: f64) -> Vec<f32> {
    assert!(t > 0.0, "temperature must be positive");
    let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = row.iter().map(|&v| ((v - max) / t).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| (e / sum) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::{Benchmark, BenchmarkConfig};

    fn toy() -> (Vec<TimeSeries>, PerfMatrix) {
        let mut cfg = BenchmarkConfig::tiny();
        cfg.series_length = 320;
        let b = Benchmark::generate(cfg);
        let series: Vec<TimeSeries> = b.train.into_iter().take(4).collect();
        // Synthetic perf rows avoid running detectors in unit tests.
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..12).map(|m| if m == i { 0.9 } else { 0.1 }).collect())
            .collect();
        let perf = PerfMatrix {
            series_ids: series.iter().map(|s| s.id.clone()).collect(),
            rows,
        };
        (series, perf)
    }

    #[test]
    fn windows_inherit_series_labels() {
        let (series, perf) = toy();
        let enc = FrozenTextEncoder::new(64, 0);
        let ds = SelectorDataset::build(&series, &perf, WindowConfig::default(), &enc);
        assert!(!ds.is_empty());
        for i in 0..ds.len() {
            assert_eq!(ds.hard_labels[i], ds.series_index[i]);
            assert_eq!(ds.windows[i].len(), 64);
        }
        assert_eq!(ds.n_series(), 4);
    }

    #[test]
    fn soft_labels_are_distributions_favouring_the_best() {
        let (series, perf) = toy();
        let enc = FrozenTextEncoder::new(64, 0);
        let ds = SelectorDataset::build(&series, &perf, WindowConfig::default(), &enc);
        let p = ds.soft_label(0, 0.25);
        assert_eq!(p.len(), 12);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        let best = ds.hard_labels[0];
        assert!(p[best] > 0.5, "best-model probability {}", p[best]);
    }

    #[test]
    fn lower_temperature_sharpens_soft_labels() {
        let (series, perf) = toy();
        let enc = FrozenTextEncoder::new(64, 0);
        let ds = SelectorDataset::build(&series, &perf, WindowConfig::default(), &enc);
        let sharp = ds.soft_label(0, 0.1);
        let smooth = ds.soft_label(0, 2.0);
        let best = ds.hard_labels[0];
        assert!(sharp[best] > smooth[best]);
    }

    #[test]
    fn knowledge_is_shared_within_a_series() {
        let (series, perf) = toy();
        let enc = FrozenTextEncoder::new(64, 0);
        let ds = SelectorDataset::build(&series, &perf, WindowConfig::default(), &enc);
        let same_series: Vec<usize> = (0..ds.len()).filter(|&i| ds.series_index[i] == 0).collect();
        assert!(same_series.len() >= 2);
        assert_eq!(ds.knowledge(same_series[0]), ds.knowledge(same_series[1]));
    }

    #[test]
    fn lsh_input_concatenates_knowledge() {
        let (series, perf) = toy();
        let enc = FrozenTextEncoder::new(32, 0);
        let ds = SelectorDataset::build(&series, &perf, WindowConfig::default(), &enc);
        assert_eq!(ds.lsh_input(0, false).len(), 64);
        assert_eq!(ds.lsh_input(0, true).len(), 64 + 32);
    }

    #[test]
    fn metadata_text_contains_family_description() {
        let (series, _) = toy();
        let text = metadata_text(&series[0]);
        assert!(text.contains(&series[0].dataset));
        assert!(text.contains("anomalies in this series"));
    }
}
