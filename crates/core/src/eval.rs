//! Selector evaluation — the paper's headline metric.
//!
//! A selector is scored by the AUC-PR *of the TSAD models it selects*: for
//! each test series, look up the detection performance of the chosen model
//! (computed once by [`crate::labels`]) and average per dataset family —
//! exactly the protocol behind Tables 1–3 and Fig. 4.

use crate::labels::PerfMatrix;
use crate::selector::Selector;
use tsad_models::ModelId;
use tsdata::TimeSeries;

/// Evaluation result of one selector over the test split.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EvalReport {
    /// Selector name.
    pub selector: String,
    /// `(dataset, mean AUC-PR)` per dataset family, in first-seen order.
    pub per_dataset: Vec<(String, f64)>,
    /// Model chosen per test series (aligned with the input order).
    pub selections: Vec<ModelId>,
}

impl EvalReport {
    /// Average AUC-PR across dataset families (the paper's bottom row).
    pub fn average_auc_pr(&self) -> f64 {
        if self.per_dataset.is_empty() {
            return 0.0;
        }
        self.per_dataset.iter().map(|(_, v)| v).sum::<f64>() / self.per_dataset.len() as f64
    }

    /// AUC-PR of a specific dataset family, if present.
    pub fn dataset_auc_pr(&self, dataset: &str) -> Option<f64> {
        self.per_dataset
            .iter()
            .find(|(d, _)| d == dataset)
            .map(|(_, v)| *v)
    }
}

/// Evaluates a selector on the test series against the test perf matrix.
///
/// Runs the whole test split through the selector's batch-first entry point
/// ([`Selector::select_batch`]), which fans out over `tspar`'s fixed
/// partitions — bit-identical to a per-series loop at any thread count.
///
/// # Panics
/// Panics if `perf` does not cover `test`.
pub fn evaluate(selector: &dyn Selector, test: &[TimeSeries], perf: &PerfMatrix) -> EvalReport {
    assert_eq!(
        perf.len(),
        test.len(),
        "perf matrix must cover the test set"
    );
    let selections = selector.select_batch(test);
    let mut sums: Vec<(String, f64, usize)> = Vec::new();
    for (i, (ts, &choice)) in test.iter().zip(&selections).enumerate() {
        let score = perf.perf_of(i, choice);
        match sums.iter_mut().find(|(d, _, _)| *d == ts.dataset) {
            Some((_, total, count)) => {
                *total += score;
                *count += 1;
            }
            None => sums.push((ts.dataset.clone(), score, 1)),
        }
    }
    EvalReport {
        selector: selector.name().to_string(),
        per_dataset: sums
            .into_iter()
            .map(|(d, t, c)| (d, t / c as f64))
            .collect(),
        selections,
    }
}

/// Reference points that bracket every selector:
/// the oracle (always the best model) and the best single model.
#[derive(Debug, Clone)]
pub struct ReferencePoints {
    /// Mean AUC-PR of the per-series best model.
    pub oracle: f64,
    /// `(model, mean AUC-PR)` of the best fixed model across the test set.
    pub best_single: (ModelId, f64),
}

/// Computes oracle / best-single-model references from a perf matrix.
pub fn reference_points(perf: &PerfMatrix) -> ReferencePoints {
    let oracle = perf.oracle_mean();
    let n = perf.len().max(1);
    let mut best = (ModelId::IForest, f64::MIN);
    for model in ModelId::ALL {
        let mean: f64 = (0..perf.len()).map(|i| perf.perf_of(i, model)).sum::<f64>() / n as f64;
        if mean > best.1 {
            best = (model, mean);
        }
    }
    ReferencePoints {
        oracle,
        best_single: best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedSelector(usize);

    impl Selector for FixedSelector {
        fn name(&self) -> &str {
            "fixed"
        }
        fn series_scores(&self, _ts: &TimeSeries) -> Vec<Vec<f32>> {
            let mut row = vec![0.0f32; 12];
            row[self.0] = 1.0;
            vec![row]
        }
    }

    fn toy() -> (Vec<TimeSeries>, PerfMatrix) {
        let mk = |id: &str, ds: &str| TimeSeries::new(id, ds, vec![0.0; 50], vec![]);
        let series = vec![mk("a", "D1"), mk("b", "D1"), mk("c", "D2")];
        let mut rows = vec![vec![0.1; 12]; 3];
        rows[0][0] = 0.9; // model 0 great on series a
        rows[1][0] = 0.5;
        rows[2][3] = 0.8; // model 3 great on series c
        let perf = PerfMatrix {
            series_ids: series.iter().map(|s| s.id.clone()).collect(),
            rows,
        };
        (series, perf)
    }

    #[test]
    fn evaluate_groups_by_dataset() {
        let (series, perf) = toy();
        let sel = FixedSelector(0);
        let report = evaluate(&sel, &series, &perf);
        assert_eq!(report.per_dataset.len(), 2);
        assert!((report.dataset_auc_pr("D1").unwrap() - 0.7).abs() < 1e-12);
        assert!((report.dataset_auc_pr("D2").unwrap() - 0.1).abs() < 1e-12);
        assert!((report.average_auc_pr() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn oracle_beats_any_fixed_selector() {
        let (series, perf) = toy();
        let refs = reference_points(&perf);
        for m in 0..12 {
            let sel = FixedSelector(m);
            let report = evaluate(&sel, &series, &perf);
            // Oracle mean is over series (not datasets), so compare on the
            // same scale: recompute series-mean for the fixed selector.
            let fixed_mean: f64 = (0..3)
                .map(|i| perf.perf_of(i, ModelId::from_index(m)))
                .sum::<f64>()
                / 3.0;
            assert!(refs.oracle >= fixed_mean - 1e-12);
            let _ = report;
        }
        assert_eq!(refs.best_single.0, ModelId::IForest);
    }
}
