//! The KDSelector trainer.
//!
//! Implements the standard NN selector-learning loop (cross-entropy on hard
//! labels, SGD over all samples) and the three plug-and-play modules:
//!
//! * **PISL** — adds `α · L_PISL` where the soft target is
//!   `softmax(P(M_j(T_i)) / t_soft)`, and scales the hard-label term by
//!   `(1 − α)`.
//! * **MKI** — adds `λ · L_InfoNCE(h_T(z_T), h_K(z_K))` where `z_K` is the
//!   frozen metadata embedding; `h_T`, `h_K` are trainable MLP projections.
//! * **PA / InfoBatch** — delegates the per-epoch sample plan to
//!   [`crate::prune::PruneState`]; surviving samples carry gradient weights
//!   `1/(1−r)` which flow through the per-sample-weighted losses.
//!
//! The trainer reports wall-clock training time and per-epoch sample counts,
//! which the benchmark harness uses to reproduce the paper's time columns.

use crate::arch::{Architecture, Encoder};
use crate::dataset::SelectorDataset;
use crate::mlp::Mlp;
use crate::prune::{PruneState, PruningStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsad_models::ModelId;
use tsnn::layers::{Layer, Linear};
use tsnn::loss::{cross_entropy, info_nce, soft_cross_entropy};
use tsnn::optim::{clip_grad_norm, Adam};
use tsnn::Tensor;

/// PISL hyperparameters (§3, Table of §B.1).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PislConfig {
    /// Relative importance of the soft label, `α ∈ [0, 1]`.
    pub alpha: f32,
    /// Soft-label temperature `t_soft`.
    pub t_soft: f64,
}

impl Default for PislConfig {
    fn default() -> Self {
        Self {
            alpha: 0.4,
            t_soft: 0.25,
        }
    }
}

/// MKI hyperparameters (§3, §B.1).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MkiConfig {
    /// Weight `λ` of the InfoNCE term.
    pub lambda: f32,
    /// Shared projection dimension `H`.
    pub proj_dim: usize,
    /// Hidden width of the projection MLPs.
    pub hidden: usize,
    /// InfoNCE temperature.
    pub temperature: f32,
}

impl Default for MkiConfig {
    fn default() -> Self {
        // λ = 1.0 is the paper's selected value (it picks λ ∈ {0.78, 1.0}).
        // On this reproduction's deliberately small encoders MKI is
        // neutral-to-negative at any λ we tried (1.0 and 0.3 are both
        // benchmarked; see EXPERIMENTS.md, "Notes on fidelity") — the
        // default stays paper-faithful rather than tuned to our substrate.
        Self {
            lambda: 1.0,
            proj_dim: 64,
            hidden: 256,
            temperature: 0.1,
        }
    }
}

/// Full training configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    /// Selector architecture.
    pub arch: Architecture,
    /// Base channel width of the encoder.
    pub width: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip (the §A.1 boundedness assumption).
    pub grad_clip: f64,
    /// Weight decay (the §A.1 strong-convexity device).
    pub weight_decay: f32,
    /// Seed for init, shuffling and pruning randomness.
    pub seed: u64,
    /// PISL module (None = hard labels only).
    pub pisl: Option<PislConfig>,
    /// MKI module (None = no knowledge integration).
    pub mki: Option<MkiConfig>,
    /// Pruning strategy.
    pub pruning: PruningStrategy,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            arch: Architecture::ResNet,
            width: 8,
            epochs: 10,
            batch_size: 64,
            lr: 3e-3,
            grad_clip: 5.0,
            weight_decay: 1e-4,
            seed: 7,
            pisl: None,
            mki: None,
            pruning: PruningStrategy::None,
        }
    }
}

impl TrainConfig {
    /// The full KDSelector configuration: PISL + MKI + PA with the paper's
    /// defaults.
    pub fn kdselector(arch: Architecture) -> Self {
        Self {
            arch,
            pisl: Some(PislConfig::default()),
            mki: Some(MkiConfig::default()),
            pruning: PruningStrategy::pa_default(),
            ..Self::default()
        }
    }

    /// Knowledge-enhanced but unpruned (the accuracy-comparison setting the
    /// paper uses for Table 1, Fig. 4 and the AUC-PR columns of Table 3).
    pub fn knowledge_enhanced(arch: Architecture) -> Self {
        Self {
            arch,
            pisl: Some(PislConfig::default()),
            mki: Some(MkiConfig::default()),
            pruning: PruningStrategy::None,
            ..Self::default()
        }
    }
}

/// Per-training-run statistics.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainStats {
    /// Mean combined loss per epoch.
    pub epoch_loss: Vec<f64>,
    /// Training accuracy (hard label) per epoch.
    pub epoch_accuracy: Vec<f64>,
    /// Samples examined per epoch (pruning shrinks this).
    pub epoch_examined: Vec<usize>,
    /// Wall-clock training seconds (includes LSH setup for PA).
    pub train_seconds: f64,
    /// Total number of windows in the training set.
    pub total_windows: usize,
}

impl TrainStats {
    /// Fraction of sample visits saved relative to full-data training.
    pub fn examined_fraction(&self) -> f64 {
        if self.total_windows == 0 || self.epoch_examined.is_empty() {
            return 1.0;
        }
        let visited: usize = self.epoch_examined.iter().sum();
        visited as f64 / (self.total_windows * self.epoch_examined.len()) as f64
    }
}

/// A trained NN selector: encoder + linear classifier.
pub struct TrainedSelector {
    /// Architecture used.
    pub arch: Architecture,
    /// Window length the selector expects.
    pub window: usize,
    /// Encoder width.
    pub width: usize,
    /// Seed used at build time (needed to rebuild for weight loading).
    pub seed: u64,
    pub(crate) encoder: Box<dyn Encoder>,
    pub(crate) classifier: Linear,
}

impl TrainedSelector {
    /// Builds an untrained selector (used by the loader).
    pub fn build(arch: Architecture, window: usize, width: usize, seed: u64) -> Self {
        let encoder = arch.build(window, width, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A5);
        let classifier = Linear::new(encoder.feature_dim(), ModelId::ALL.len(), &mut rng);
        Self {
            arch,
            window,
            width,
            seed,
            encoder,
            classifier,
        }
    }

    /// All trainable parameters (encoder then classifier), stable order.
    pub fn params_mut(&mut self) -> Vec<&mut tsnn::Param> {
        let mut p = self.encoder.params_mut();
        p.extend(self.classifier.params_mut());
        p
    }

    /// Read-only view of the trainable parameters, `params_mut()` order.
    /// Persistence snapshots a trained selector through this accessor —
    /// saving is not a mutation.
    pub fn params(&self) -> Vec<&tsnn::Param> {
        let mut p = self.encoder.params();
        p.extend(self.classifier.params());
        p
    }

    /// Non-trainable state (batch-norm running statistics). Persistence must
    /// save these alongside the parameters or inference-mode normalisation
    /// breaks after a reload.
    pub fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        self.encoder.buffers_mut()
    }

    /// Read-only view of the non-trainable state, `buffers_mut()` order.
    pub fn buffers(&self) -> Vec<&Vec<f32>> {
        self.encoder.buffers()
    }

    /// Class logits for a batch of windows (inference mode, chunked).
    ///
    /// Immutable and thread-safe: the forward pass runs through the
    /// encoder's [`Encoder::infer`] path, so one trained selector can score
    /// concurrent batches from many threads.
    pub fn predict_logits(&self, windows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(windows.len());
        for chunk in windows.chunks(256) {
            let x = Tensor::from_rows(chunk).reshape(&[chunk.len(), 1, self.window]);
            let z = self.encoder.infer(&x);
            let logits = self.classifier.infer(&z);
            for i in 0..chunk.len() {
                out.push(logits.row(i).to_vec());
            }
        }
        out
    }

    /// Hard class predictions for a batch of windows.
    pub fn predict_windows(&self, windows: &[Vec<f32>]) -> Vec<usize> {
        self.predict_logits(windows)
            .into_iter()
            .map(|row| crate::selector::argmax(&row))
            .collect()
    }
}

/// Trains a selector on the dataset with the given configuration.
///
/// # Panics
/// Panics if the dataset is empty or its window length is inconsistent.
pub fn train(dataset: &SelectorDataset, cfg: &TrainConfig) -> (TrainedSelector, TrainStats) {
    assert!(!dataset.is_empty(), "cannot train on an empty dataset");
    let window = dataset.window_cfg.length;
    let n = dataset.len();
    let classes = ModelId::ALL.len();

    let start = std::time::Instant::now();

    // Model components.
    let mut encoder = cfg.arch.build(window, cfg.width, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC1A5);
    let mut classifier = Linear::new(encoder.feature_dim(), classes, &mut rng);
    let (mut h_t, mut h_k) = match cfg.mki {
        Some(mki) => {
            let mut mki_rng = StdRng::seed_from_u64(cfg.seed ^ 0x17E);
            (
                Some(Mlp::new(
                    encoder.feature_dim(),
                    mki.hidden,
                    mki.proj_dim,
                    &mut mki_rng,
                )),
                Some(Mlp::new(
                    dataset.text_dim,
                    mki.hidden,
                    mki.proj_dim,
                    &mut mki_rng,
                )),
            )
        }
        None => (None, None),
    };
    let mut opt = Adam::new(cfg.lr, cfg.weight_decay);

    // Precompute soft labels per series (PISL) as f32 rows.
    let soft_by_series: Option<Vec<Vec<f32>>> = cfg.pisl.map(|p| {
        (0..dataset.n_series())
            .map(|s| {
                // Reuse the dataset helper through any window of the series;
                // series without windows cannot occur by construction.
                let row = &dataset.series_perf[s];
                softmax_scaled_f32(row, p.t_soft)
            })
            .collect()
    });

    // Pruning state (LSH signatures computed before epoch 0 for PA).
    let lsh_inputs: Option<Vec<Vec<f64>>> = match cfg.pruning {
        PruningStrategy::Pa { .. } => Some(
            (0..n)
                .map(|i| dataset.lsh_input(i, cfg.mki.is_some()))
                .collect(),
        ),
        _ => None,
    };
    let mut prune = PruneState::new(cfg.pruning, lsh_inputs.as_deref(), n, cfg.seed ^ 0x9A);

    let mut shuffle_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5F);
    let mut stats = TrainStats {
        epoch_loss: Vec::with_capacity(cfg.epochs),
        epoch_accuracy: Vec::with_capacity(cfg.epochs),
        epoch_examined: Vec::with_capacity(cfg.epochs),
        train_seconds: 0.0,
        total_windows: n,
    };

    // Scratch buffers reused across every minibatch: batch assembly used to
    // clone each window/soft-label/knowledge row into a fresh Vec<Vec<f32>>
    // per step, which dominated allocator traffic. The flat buffers travel
    // into the input tensors and are reclaimed via `Tensor::into_data`.
    let mut x_buf: Vec<f32> = Vec::new();
    let mut soft_buf: Vec<f32> = Vec::new();
    let mut know_buf: Vec<f32> = Vec::new();
    let mut targets: Vec<usize> = Vec::with_capacity(cfg.batch_size);

    for epoch in 0..cfg.epochs {
        let mut plan = prune.plan_epoch(epoch, cfg.epochs);
        shuffle_pair(&mut plan.indices, &mut plan.weights, &mut shuffle_rng);
        stats.epoch_examined.push(plan.indices.len());

        let mut epoch_loss = 0.0f64;
        let mut correct = 0usize;
        let mut seen = 0usize;

        let mut cursor = 0;
        while cursor < plan.indices.len() {
            let end = (cursor + cfg.batch_size).min(plan.indices.len());
            let batch_idx = &plan.indices[cursor..end];
            let batch_w = &plan.weights[cursor..end];
            let b = batch_idx.len();
            cursor = end;

            // Assemble input tensor (B, 1, L) into the reusable buffer —
            // one contiguous copy per batch, no per-row allocations.
            x_buf.clear();
            x_buf.reserve(b * window);
            for &i in batch_idx {
                x_buf.extend_from_slice(&dataset.windows[i]);
            }
            let x = Tensor::from_vec(&[b, 1, window], std::mem::take(&mut x_buf));
            targets.clear();
            targets.extend(batch_idx.iter().map(|&i| dataset.hard_labels[i]));

            // Zero every gradient before this batch's backward passes
            // (classifier/MKI backward runs accumulate before the encoder's).
            {
                let mut params = encoder.params_mut();
                params.extend(classifier.params_mut());
                if let Some(ht) = h_t.as_mut() {
                    params.extend(ht.params_mut());
                }
                if let Some(hk) = h_k.as_mut() {
                    params.extend(hk.params_mut());
                }
                for p in params.iter_mut() {
                    p.zero_grad();
                }
            }

            // Forward.
            let z_t = encoder.forward(&x, true);
            let logits = classifier.forward(&z_t, true);

            // Hard CE (scaled by 1−α under PISL).
            let hard_scale = cfg.pisl.map_or(1.0, |p| 1.0 - p.alpha);
            let ce = cross_entropy(&logits, &targets, Some(batch_w));
            let mut grad_logits = ce.grad.clone();
            grad_logits.scale_(hard_scale);
            let mut per_sample: Vec<f64> = ce
                .per_sample
                .iter()
                .map(|&l| l * hard_scale as f64)
                .collect();
            let mut batch_loss = ce.loss * hard_scale as f64;

            // PISL soft term.
            if let Some(p) = cfg.pisl {
                let soft = soft_by_series.as_ref().expect("soft labels precomputed");
                soft_buf.clear();
                soft_buf.reserve(b * classes);
                for &i in batch_idx {
                    soft_buf.extend_from_slice(&soft[dataset.series_index[i]]);
                }
                let soft_targets = Tensor::from_vec(&[b, classes], std::mem::take(&mut soft_buf));
                let soft_out = soft_cross_entropy(&logits, &soft_targets, Some(batch_w));
                let mut g = soft_out.grad;
                g.scale_(p.alpha);
                grad_logits.add_assign(&g);
                for (acc, &l) in per_sample.iter_mut().zip(&soft_out.per_sample) {
                    *acc += p.alpha as f64 * l;
                }
                batch_loss += p.alpha as f64 * soft_out.loss;
                soft_buf = soft_targets.into_data();
            }

            // Classifier backward feeds the encoder gradient.
            let mut g_z = classifier.backward(&grad_logits);

            // MKI term.
            if let (Some(mki), Some(ht), Some(hk)) = (cfg.mki, h_t.as_mut(), h_k.as_mut()) {
                know_buf.clear();
                know_buf.reserve(b * dataset.text_dim);
                for &i in batch_idx {
                    know_buf.extend_from_slice(dataset.knowledge(i));
                }
                let z_k = Tensor::from_vec(&[b, dataset.text_dim], std::mem::take(&mut know_buf));
                let zt_proj = ht.forward(&z_t, true);
                let zk_proj = hk.forward(&z_k, true);
                let (nce_loss, nce_per_sample, mut g_zt_proj, mut g_zk_proj) =
                    info_nce(&zt_proj, &zk_proj, mki.temperature, Some(batch_w));
                g_zt_proj.scale_(mki.lambda);
                g_zk_proj.scale_(mki.lambda);
                let g_from_mki = ht.backward(&g_zt_proj);
                let _ = hk.backward(&g_zk_proj); // z_K is frozen input
                g_z.add_assign(&g_from_mki);
                for (acc, &l) in per_sample.iter_mut().zip(&nce_per_sample) {
                    *acc += mki.lambda as f64 * l;
                }
                batch_loss += mki.lambda as f64 * nce_loss;
                know_buf = z_k.into_data();
            }

            // Encoder backward and optimizer step.
            let _ = encoder.backward(&g_z);
            {
                let mut params = encoder.params_mut();
                params.extend(classifier.params_mut());
                if let Some(ht) = h_t.as_mut() {
                    params.extend(ht.params_mut());
                }
                if let Some(hk) = h_k.as_mut() {
                    params.extend(hk.params_mut());
                }
                clip_grad_norm(&mut params, cfg.grad_clip);
                opt.step(&mut params);
            }

            // Bookkeeping.
            prune.record_losses(batch_idx, &per_sample);
            epoch_loss += batch_loss * b as f64;
            seen += b;
            // Accuracy from logits.
            for (bi, &t) in targets.iter().enumerate() {
                let row = logits.row(bi);
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, c| a.1.partial_cmp(c.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                if pred == t {
                    correct += 1;
                }
            }

            // Recycle the input buffer for the next batch.
            x_buf = x.into_data();
        }

        stats.epoch_loss.push(if seen > 0 {
            epoch_loss / seen as f64
        } else {
            0.0
        });
        stats.epoch_accuracy.push(if seen > 0 {
            correct as f64 / seen as f64
        } else {
            0.0
        });
    }

    stats.train_seconds = start.elapsed().as_secs_f64();
    (
        TrainedSelector {
            arch: cfg.arch,
            window,
            width: cfg.width,
            seed: cfg.seed,
            encoder,
            classifier,
        },
        stats,
    )
}

/// Zero-bug duplicate of the dataset's softmax (kept local to avoid exposing
/// an f32 variant publicly).
fn softmax_scaled_f32(row: &[f64], t: f64) -> Vec<f32> {
    let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = row.iter().map(|&v| ((v - max) / t).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| (e / sum) as f32).collect()
}

fn shuffle_pair(indices: &mut [usize], weights: &mut [f32], rng: &mut StdRng) {
    debug_assert_eq!(indices.len(), weights.len());
    for i in (1..indices.len()).rev() {
        let j = rng.random_range(0..=i);
        indices.swap(i, j);
        weights.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::PerfMatrix;
    use tsdata::{Benchmark, BenchmarkConfig, WindowConfig};
    use tstext::FrozenTextEncoder;

    /// Small dataset with synthetic perf rows (no detector runs).
    fn toy_dataset() -> SelectorDataset {
        let mut cfg = BenchmarkConfig::tiny();
        cfg.series_length = 256;
        let b = Benchmark::generate(cfg);
        let series: Vec<_> = b.train.into_iter().take(6).collect();
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..12)
                    .map(|m| if m == i % 3 { 0.8 } else { 0.1 })
                    .collect()
            })
            .collect();
        let perf = PerfMatrix {
            series_ids: series.iter().map(|s| s.id.clone()).collect(),
            rows,
        };
        let enc = FrozenTextEncoder::new(48, 0);
        let wc = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        SelectorDataset::build(&series, &perf, wc, &enc)
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            arch: Architecture::ConvNet,
            width: 4,
            epochs: 3,
            batch_size: 16,
            lr: 5e-3,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn standard_training_decreases_loss() {
        let ds = toy_dataset();
        let mut cfg = quick_cfg();
        cfg.epochs = 6;
        let (_sel, stats) = train(&ds, &cfg);
        assert_eq!(stats.epoch_loss.len(), 6);
        assert!(
            stats.epoch_loss.last().unwrap() < stats.epoch_loss.first().unwrap(),
            "loss {:?}",
            stats.epoch_loss
        );
        assert!((stats.examined_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pisl_and_mki_paths_run_and_learn() {
        let ds = toy_dataset();
        let mut cfg = quick_cfg();
        cfg.pisl = Some(PislConfig::default());
        cfg.mki = Some(MkiConfig {
            hidden: 32,
            proj_dim: 16,
            ..MkiConfig::default()
        });
        cfg.epochs = 5;
        let (_sel, stats) = train(&ds, &cfg);
        assert!(
            stats.epoch_loss.last().unwrap() < stats.epoch_loss.first().unwrap(),
            "loss {:?}",
            stats.epoch_loss
        );
    }

    #[test]
    fn pruning_reduces_examined_samples() {
        let ds = toy_dataset();
        let mut cfg = quick_cfg();
        cfg.epochs = 6;
        cfg.pruning = PruningStrategy::InfoBatch {
            ratio: 0.8,
            anneal: 0.17,
        };
        let (_sel, stats) = train(&ds, &cfg);
        assert!(
            stats.examined_fraction() < 1.0,
            "{:?}",
            stats.epoch_examined
        );
        // First epoch always full.
        assert_eq!(stats.epoch_examined[0], ds.len());
        // Last (anneal) epoch full again.
        assert_eq!(*stats.epoch_examined.last().unwrap(), ds.len());
    }

    #[test]
    fn pa_examines_fewer_samples_than_infobatch() {
        let ds = toy_dataset();
        let mut cfg = quick_cfg();
        cfg.epochs = 6;
        cfg.pruning = PruningStrategy::InfoBatch {
            ratio: 0.8,
            anneal: 0.0,
        };
        let (_s, ib) = train(&ds, &cfg);
        cfg.pruning = PruningStrategy::Pa {
            ratio: 0.8,
            lsh_bits: 10,
            bins: 4,
            anneal: 0.0,
        };
        let (_s, pa) = train(&ds, &cfg);
        let ib_total: usize = ib.epoch_examined.iter().sum();
        let pa_total: usize = pa.epoch_examined.iter().sum();
        assert!(pa_total <= ib_total, "PA {pa_total} vs IB {ib_total}");
    }

    #[test]
    fn trained_selector_predicts_in_class_range() {
        let ds = toy_dataset();
        let (sel, _) = train(&ds, &quick_cfg());
        let preds = sel.predict_windows(&ds.windows[..10.min(ds.len())]);
        assert!(preds.iter().all(|&p| p < 12));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let ds = toy_dataset();
        let cfg = quick_cfg();
        let (a, _) = train(&ds, &cfg);
        let (b, _) = train(&ds, &cfg);
        assert_eq!(
            a.predict_windows(&ds.windows[..4]),
            b.predict_windows(&ds.windows[..4])
        );
        let la = a.predict_logits(&ds.windows[..2]);
        let lb = b.predict_logits(&ds.windows[..2]);
        assert_eq!(la, lb);
    }

    #[test]
    fn learns_family_correlated_labels() {
        // Labels that correlate with the signal family (series i/2 share a
        // family and a label) are learnable from window shape alone.
        let mut cfg_b = BenchmarkConfig::tiny();
        cfg_b.series_length = 256;
        let b = Benchmark::generate(cfg_b);
        let series: Vec<_> = b.train.into_iter().take(6).collect();
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..12)
                    .map(|m| if m == i / 2 { 0.8 } else { 0.1 })
                    .collect()
            })
            .collect();
        let perf = PerfMatrix {
            series_ids: series.iter().map(|s| s.id.clone()).collect(),
            rows,
        };
        let enc = FrozenTextEncoder::new(48, 0);
        let wc = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        let ds = SelectorDataset::build(&series, &perf, wc, &enc);

        let mut cfg = quick_cfg();
        cfg.epochs = 25;
        cfg.lr = 5e-3;
        let (_sel, stats) = train(&ds, &cfg);
        let final_acc = *stats.epoch_accuracy.last().unwrap();
        assert!(final_acc > 0.6, "accuracy {final_acc}");
    }
}
