//! # KDSelector — knowledge-enhanced, data-efficient selector learning
//!
//! Reproduction of *KDSelector: A Knowledge-Enhanced and Data-Efficient Model
//! Selector Learning Framework for Time Series Anomaly Detection*
//! (SIGMOD-Companion 2025).
//!
//! A **selector** is a time-series classifier that maps a fixed-length window
//! to one of the 12 TSAD models in the model set; per-series selection is a
//! majority vote over window predictions. This crate implements:
//!
//! * the four NN selector architectures of the evaluation
//!   ([`arch`]: ConvNet, ResNet, InceptionTime, ConvTransformer),
//! * the **KDSelector training framework** ([`train`]) with its three
//!   plug-and-play modules —
//!   **PISL** (soft labels from detector performance, [`train::TrainConfig::pisl`]),
//!   **MKI** (InfoNCE alignment with frozen metadata embeddings,
//!   [`train::TrainConfig::mki`]), and
//!   **PA** (LSH-bucketed dynamic pruning, [`prune`]) alongside the InfoBatch
//!   baseline — layered as composable loss terms ([`train::objective`]),
//!   resumable, checkpointable sessions ([`train::TrainSession`]), and
//!   deterministic data-parallel gradient accumulation ([`train::dp`]:
//!   bitwise-identical results at any `KD_THREADS`),
//! * the non-NN baselines ([`nonnn`]: KNN / SVC / AdaBoost / RandomForest on
//!   TSFresh-style features, MiniRocket + ridge),
//! * label generation by actually running the 12 detectors ([`labels`], with
//!   a disk cache),
//! * evaluation ([`eval`]) that scores a selector by the AUC-PR of the TSAD
//!   models it picks, per dataset — the paper's headline metric,
//! * selector management ([`manage`]: save / load / list),
//! * a thread-safe, batch-first serving layer ([`serve`]: a hot-swappable
//!   [`serve::SelectorEngine`] registry answering batched
//!   [`serve::SelectRequest`]s with structured [`serve::Selection`]s, a
//!   queued, admission-controlled front-end [`serve::ServeQueue`] that
//!   coalesces small concurrent requests, and a content-keyed LRU
//!   [`serve::WindowCache`] for repeat series),
//! * a streaming tier ([`stream`]): incremental, cache-publishing window
//!   ingestion ([`stream::StreamIngestor`]), deterministic count-windowed
//!   drift detection ([`stream::DriftMonitor`]), and a drift/quota-triggered
//!   retraining daemon ([`stream::RetrainDaemon`]) that checkpoints every
//!   epoch and hot-deploys into the serving engine — all bitwise-replayable
//!   from the append log, and
//! * an end-to-end pipeline ([`pipeline`]) used by the examples and the
//!   benchmark harness.

pub mod arch;
pub mod dataset;
pub mod eval;
mod hash;
pub mod labels;
pub mod manage;
pub mod mlp;
pub mod nonnn;
pub mod pipeline;
pub mod prune;
pub mod selector;
pub mod serve;
pub mod stream;
pub mod train;

pub use arch::Architecture;
pub use dataset::SelectorDataset;
pub use eval::EvalReport;
pub use labels::PerfMatrix;
pub use prune::PruningStrategy;
pub use selector::Selector;
pub use serve::{
    FaultAction, FaultPlan, FaultPoint, FaultRule, QueueConfig, RouteError, RouteReply,
    RouterConfig, SelectRequest, Selection, SelectionTap, SelectorEngine, ServeError, ServeQueue,
    ShardedRouter, WindowCache,
};
pub use stream::{
    DaemonConfig, DaemonEvent, DriftConfig, DriftKind, DriftMonitor, DriftSignal, LabelOracle,
    MarginDriftTap, RetrainDaemon, RetrainReason, StreamIngestor,
};
pub use train::{TrainCheckpoint, TrainConfig, TrainSession, TrainStats, TrainedSelector};
