//! Dynamic training-data pruning: InfoBatch and the paper's PA module.
//!
//! Both strategies score each sample by the **running mean of its past
//! per-epoch losses** (`¯L_i`) and prune below-mean samples with probability
//! `r`, rescaling surviving gradients by `1/(1-r)` so the expected objective
//! is unchanged (paper §A.2). PA additionally prunes *redundant* above-mean
//! samples: samples that hash to the same LSH signature **and** fall in the
//! same equi-depth average-loss bin form a bucket, and buckets of size > 1
//! are pruned the same way (§3, "Pruning-based acceleration").
//!
//! Following InfoBatch, the final epochs anneal back to the full dataset so
//! the last gradient steps are unbiased sample-for-sample.
//!
//! # Determinism and resume
//!
//! Pruning randomness is drawn from a **per-epoch stream**: the draws for
//! epoch `e` depend only on the state's seed and `e`, never on how many
//! draws earlier epochs made. Together with [`PruneState::snapshot`] /
//! [`PruneState::restore`] (which round-trip the loss bookkeeping), a
//! training session resumed from an epoch-`k` checkpoint replays epochs
//! `k+1..n` with exactly the pruning plans of an uninterrupted run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tslsh::SimHash;

/// Which pruning strategy the trainer uses.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PruningStrategy {
    /// Iterate over all samples every epoch (the standard framework).
    None,
    /// InfoBatch: prune below-mean samples with probability `ratio`.
    InfoBatch {
        /// Pruning probability `r`.
        ratio: f64,
        /// Fraction of final epochs trained on full data.
        anneal: f64,
    },
    /// The paper's PA: InfoBatch + LSH-bucketed pruning of redundant
    /// above-mean samples.
    Pa {
        /// Pruning probability `r`.
        ratio: f64,
        /// SimHash signature bits.
        lsh_bits: usize,
        /// Number of equi-depth average-loss bins `p`.
        bins: usize,
        /// Fraction of final epochs trained on full data.
        anneal: f64,
    },
}

impl PruningStrategy {
    /// The paper's default InfoBatch setting (r = 0.8, 12.5 % anneal).
    pub fn info_batch_default() -> Self {
        PruningStrategy::InfoBatch {
            ratio: 0.8,
            anneal: 0.125,
        }
    }

    /// The paper's default PA setting (r = 0.8, 14 bits, 8 bins).
    pub fn pa_default() -> Self {
        PruningStrategy::Pa {
            ratio: 0.8,
            lsh_bits: 14,
            bins: 8,
            anneal: 0.125,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            PruningStrategy::None => "full-data",
            PruningStrategy::InfoBatch { .. } => "InfoBatch",
            PruningStrategy::Pa { .. } => "PA",
        }
    }
}

/// The samples (and gradient weights) to use for one epoch.
#[derive(Debug, Clone)]
pub struct EpochPlan {
    /// Sample indices to iterate this epoch.
    pub indices: Vec<usize>,
    /// Gradient rescale weight per kept sample (aligned with `indices`).
    pub weights: Vec<f32>,
}

impl EpochPlan {
    fn full(n: usize) -> Self {
        Self {
            indices: (0..n).collect(),
            weights: vec![1.0; n],
        }
    }
}

/// Serialisable snapshot of the per-sample loss bookkeeping — everything a
/// checkpoint must carry to resume pruning exactly. LSH signatures and the
/// per-epoch RNG streams are *not* part of the snapshot: both are derived
/// deterministically from inputs a resumed session recomputes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PruneSnapshot {
    /// Summed past per-sample losses.
    pub loss_sum: Vec<f64>,
    /// Visit counts per sample.
    pub loss_count: Vec<u32>,
}

/// Per-sample loss bookkeeping plus the pruning logic.
pub struct PruneState {
    strategy: PruningStrategy,
    n: usize,
    loss_sum: Vec<f64>,
    loss_count: Vec<u32>,
    /// LSH signature per sample (PA only).
    signatures: Option<Vec<u64>>,
    seed: u64,
}

/// Decorrelates the pruning draws of one epoch from every other epoch's:
/// a SplitMix-style multiply keeps nearby epochs' streams unrelated.
fn epoch_stream(seed: u64, epoch: usize) -> u64 {
    seed ^ (epoch as u64)
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl PruneState {
    /// Creates the state. For PA, `lsh_inputs` provides the sample vectors
    /// `X_i` to hash; signatures are computed once here, **before** training
    /// starts, because sample values never change (§3).
    pub fn new(
        strategy: PruningStrategy,
        lsh_inputs: Option<&[Vec<f64>]>,
        n: usize,
        seed: u64,
    ) -> Self {
        let signatures = match strategy {
            PruningStrategy::Pa { lsh_bits, .. } => {
                let inputs = lsh_inputs.expect("PA requires LSH inputs");
                assert_eq!(inputs.len(), n, "LSH inputs must cover all samples");
                let dim = inputs.first().map_or(1, |v| v.len());
                let hasher = SimHash::new(dim.max(1), lsh_bits, seed ^ 0x5A5A);
                // Signatures are independent per sample; hash them on the
                // shared pool (this is the PA setup cost the paper folds
                // into training time).
                Some(tspar::par_map(inputs.len(), |i| hasher.hash(&inputs[i])))
            }
            _ => None,
        };
        Self {
            strategy,
            n,
            loss_sum: vec![0.0; n],
            loss_count: vec![0; n],
            signatures,
            seed,
        }
    }

    /// Snapshots the loss bookkeeping for checkpointing.
    pub fn snapshot(&self) -> PruneSnapshot {
        PruneSnapshot {
            loss_sum: self.loss_sum.clone(),
            loss_count: self.loss_count.clone(),
        }
    }

    /// Restores a snapshot taken by [`PruneState::snapshot`]. Subsequent
    /// [`PruneState::plan_epoch`] calls then produce exactly the plans an
    /// uninterrupted run would (per-epoch RNG streams make the draws
    /// history-free).
    ///
    /// # Errors
    /// Rejects snapshots whose length disagrees with this state's sample
    /// count.
    pub fn restore(&mut self, snapshot: &PruneSnapshot) -> Result<(), String> {
        if snapshot.loss_sum.len() != self.n || snapshot.loss_count.len() != self.n {
            return Err(format!(
                "prune snapshot covers {} sums / {} counts, state has {} samples",
                snapshot.loss_sum.len(),
                snapshot.loss_count.len(),
                self.n
            ));
        }
        self.loss_sum.clone_from(&snapshot.loss_sum);
        self.loss_count.clone_from(&snapshot.loss_count);
        Ok(())
    }

    /// Records the unweighted per-sample losses of the samples visited in
    /// the current epoch.
    pub fn record_losses(&mut self, indices: &[usize], losses: &[f64]) {
        assert_eq!(indices.len(), losses.len(), "index/loss length mismatch");
        for (&i, &l) in indices.iter().zip(losses) {
            self.loss_sum[i] += l;
            self.loss_count[i] += 1;
        }
    }

    /// Average past loss of sample `i` (`¯L_i`); `None` if never visited.
    pub fn avg_loss(&self, i: usize) -> Option<f64> {
        (self.loss_count[i] > 0).then(|| self.loss_sum[i] / self.loss_count[i] as f64)
    }

    /// Plans the sample set for `epoch` of `total_epochs`.
    ///
    /// Planning is read-only: the randomness comes from a per-epoch stream
    /// derived from the state seed and `epoch`, so the same state (same
    /// recorded losses) always yields the same plan for a given epoch —
    /// regardless of which epochs were planned before.
    pub fn plan_epoch(&self, epoch: usize, total_epochs: usize) -> EpochPlan {
        let mut rng = StdRng::seed_from_u64(epoch_stream(self.seed, epoch));
        let (ratio, anneal) = match self.strategy {
            PruningStrategy::None => return EpochPlan::full(self.n),
            PruningStrategy::InfoBatch { ratio, anneal } => (ratio, anneal),
            PruningStrategy::Pa { ratio, anneal, .. } => (ratio, anneal),
        };
        // First epoch: no loss history yet. Last `anneal` fraction: full data.
        let anneal_start = ((1.0 - anneal) * total_epochs as f64).ceil() as usize;
        if epoch == 0 || epoch >= anneal_start {
            return EpochPlan::full(self.n);
        }

        // Split by the mean of the average losses.
        let avg: Vec<f64> = (0..self.n)
            .map(|i| self.avg_loss(i).unwrap_or(f64::INFINITY))
            .collect();
        let visited: Vec<usize> = (0..self.n).filter(|&i| avg[i].is_finite()).collect();
        if visited.is_empty() {
            return EpochPlan::full(self.n);
        }
        let mean: f64 = visited.iter().map(|&i| avg[i]).sum::<f64>() / visited.len() as f64;

        let mut indices = Vec::with_capacity(self.n);
        let mut weights = Vec::with_capacity(self.n);
        let keep_weight = (1.0 / (1.0 - ratio)) as f32;

        // Below-mean samples: InfoBatch pruning (never-visited samples count
        // as high-loss and are kept).
        let mut high: Vec<usize> = Vec::new();
        for (i, &avg_i) in avg.iter().enumerate() {
            if avg_i < mean {
                if rng.random_bool(1.0 - ratio) {
                    indices.push(i);
                    weights.push(keep_weight);
                }
            } else {
                high.push(i);
            }
        }

        match self.strategy {
            PruningStrategy::InfoBatch { .. } => {
                // Above-mean samples are all kept with weight 1.
                for i in high {
                    indices.push(i);
                    weights.push(1.0);
                }
            }
            PruningStrategy::Pa { bins, .. } => {
                self.prune_high_buckets(
                    &high,
                    &avg,
                    bins,
                    ratio,
                    &mut rng,
                    &mut indices,
                    &mut weights,
                );
            }
            PruningStrategy::None => unreachable!(),
        }
        EpochPlan { indices, weights }
    }

    /// PA's above-mean handling: equi-depth bins over `¯L_i` × LSH signature
    /// → buckets; buckets with more than one member are pruned with gradient
    /// rescaling, singletons are kept untouched.
    #[allow(clippy::too_many_arguments)]
    fn prune_high_buckets(
        &self,
        high: &[usize],
        avg: &[f64],
        bins: usize,
        ratio: f64,
        rng: &mut StdRng,
        indices: &mut Vec<usize>,
        weights: &mut Vec<f32>,
    ) {
        let signatures = self.signatures.as_ref().expect("PA state has signatures");
        let keep_weight = (1.0 / (1.0 - ratio)) as f32;
        // Sort by average loss for equi-depth binning. Unvisited samples
        // (infinite avg) sort last and land in the top bin.
        let mut order: Vec<usize> = high.to_vec();
        order.sort_by(|&a, &b| {
            avg[a]
                .partial_cmp(&avg[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let m = order.len();
        let bins = bins.max(1);
        // BTreeMap iterates in key order, which is exactly the sorted-key
        // order the RNG consumption sequence depends on.
        let mut buckets: std::collections::BTreeMap<(u64, usize), Vec<usize>> =
            std::collections::BTreeMap::new();
        for (rank, &i) in order.iter().enumerate() {
            let bin = rank * bins / m.max(1);
            buckets.entry((signatures[i], bin)).or_default().push(i);
        }
        for members in buckets.values() {
            if members.len() == 1 {
                indices.push(members[0]);
                weights.push(1.0);
            } else {
                for &i in members {
                    if rng.random_bool(1.0 - ratio) {
                        indices.push(i);
                        weights.push(keep_weight);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a state with synthetic loss history: first half low losses,
    /// second half high losses.
    fn seeded_state(strategy: PruningStrategy, n: usize) -> PruneState {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                // Two clusters of very similar samples + distinct tail.
                if i % 2 == 0 {
                    vec![1.0, 2.0, 3.0, (i / 16) as f64 * 1e-4]
                } else {
                    vec![-(i as f64), 1.0, (i * i) as f64 * 0.1, 5.0]
                }
            })
            .collect();
        let mut st = PruneState::new(strategy, Some(&inputs), n, 42);
        let idx: Vec<usize> = (0..n).collect();
        let losses: Vec<f64> = (0..n).map(|i| if i < n / 2 { 0.1 } else { 2.0 }).collect();
        st.record_losses(&idx, &losses);
        st
    }

    #[test]
    fn no_pruning_keeps_everything() {
        let st = PruneState::new(PruningStrategy::None, None, 100, 0);
        let plan = st.plan_epoch(3, 10);
        assert_eq!(plan.indices.len(), 100);
        assert!(plan.weights.iter().all(|&w| w == 1.0));
    }

    #[test]
    fn first_epoch_is_always_full() {
        let st = seeded_state(PruningStrategy::info_batch_default(), 100);
        let plan = st.plan_epoch(0, 10);
        assert_eq!(plan.indices.len(), 100);
    }

    #[test]
    fn anneal_epochs_are_full() {
        let st = seeded_state(PruningStrategy::info_batch_default(), 100);
        let plan = st.plan_epoch(9, 10); // last epoch with anneal 0.125
        assert_eq!(plan.indices.len(), 100);
    }

    #[test]
    fn infobatch_prunes_only_low_loss_samples() {
        let n = 400;
        let st = seeded_state(
            PruningStrategy::InfoBatch {
                ratio: 0.8,
                anneal: 0.0,
            },
            n,
        );
        let plan = st.plan_epoch(1, 10);
        // All high-loss samples (second half) present with weight 1.
        let kept_high = plan
            .indices
            .iter()
            .zip(&plan.weights)
            .filter(|(&i, _)| i >= n / 2)
            .count();
        assert_eq!(kept_high, n / 2);
        for (&i, &w) in plan.indices.iter().zip(&plan.weights) {
            if i >= n / 2 {
                assert_eq!(w, 1.0);
            } else {
                assert!((w - 5.0).abs() < 1e-5, "rescale 1/(1-0.8) = 5");
            }
        }
        // Roughly 20% of low-loss samples survive.
        let kept_low = plan.indices.len() - kept_high;
        assert!((10..=80).contains(&kept_low), "kept_low={kept_low}");
    }

    #[test]
    fn pa_prunes_more_than_infobatch() {
        let n = 400;
        let ib = seeded_state(
            PruningStrategy::InfoBatch {
                ratio: 0.8,
                anneal: 0.0,
            },
            n,
        );
        let pa = seeded_state(
            PruningStrategy::Pa {
                ratio: 0.8,
                lsh_bits: 14,
                bins: 4,
                anneal: 0.0,
            },
            n,
        );
        let kept_ib = ib.plan_epoch(1, 10).indices.len();
        let kept_pa = pa.plan_epoch(1, 10).indices.len();
        assert!(
            kept_pa < kept_ib,
            "PA should prune redundant high-loss samples: PA={kept_pa} IB={kept_ib}"
        );
    }

    #[test]
    fn pa_keeps_singleton_buckets_untouched() {
        // All-distinct samples with distinct losses: every bucket is a
        // singleton, so PA must keep every high-loss sample with weight 1.
        let n = 64;
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..8)
                    .map(|j| ((i * 131 + j * 17) % 97) as f64 - 48.0)
                    .collect()
            })
            .collect();
        let mut st = PruneState::new(
            PruningStrategy::Pa {
                ratio: 0.8,
                lsh_bits: 16,
                bins: 8,
                anneal: 0.0,
            },
            Some(&inputs),
            n,
            3,
        );
        let idx: Vec<usize> = (0..n).collect();
        let losses: Vec<f64> = (0..n).map(|i| i as f64).collect();
        st.record_losses(&idx, &losses);
        let plan = st.plan_epoch(1, 10);
        // Kept high-loss samples in singleton buckets carry weight 1; the
        // only weight-rescaled samples come from (rare) LSH collisions.
        let high_weight_one = plan
            .indices
            .iter()
            .zip(&plan.weights)
            .filter(|(&i, &w)| i >= 32 && w == 1.0)
            .count();
        // Most high-loss samples survive untouched (a handful of 16-bit LSH
        // collisions among 64 vectors is expected).
        assert!(
            high_weight_one >= 24,
            "singleton high-loss kept: {high_weight_one}"
        );
    }

    #[test]
    fn expected_weighted_count_is_unbiased() {
        // Σ w over kept low-loss samples ≈ number of low-loss samples.
        let n = 2000;
        let st = seeded_state(
            PruningStrategy::InfoBatch {
                ratio: 0.8,
                anneal: 0.0,
            },
            n,
        );
        let plan = st.plan_epoch(1, 10);
        let weighted_low: f32 = plan
            .indices
            .iter()
            .zip(&plan.weights)
            .filter(|(&i, _)| i < n / 2)
            .map(|(_, &w)| w)
            .sum();
        let expected = (n / 2) as f32;
        assert!(
            (weighted_low - expected).abs() < expected * 0.2,
            "weighted {weighted_low} vs expected {expected}"
        );
    }

    #[test]
    fn record_losses_accumulates_running_mean() {
        let mut st = PruneState::new(PruningStrategy::None, None, 2, 0);
        st.record_losses(&[0], &[1.0]);
        st.record_losses(&[0], &[3.0]);
        assert_eq!(st.avg_loss(0), Some(2.0));
        assert_eq!(st.avg_loss(1), None);
    }
}
