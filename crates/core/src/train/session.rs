//! Resumable training sessions.
//!
//! A [`TrainSession`] owns everything one selector-training run needs — the
//! model components (encoder + classifier), the composed
//! [`Objective`], the Adam optimizer, the pruning state, and the per-epoch
//! RNG streams — and exposes the run epoch by epoch:
//!
//! * [`TrainSession::run_epoch`] executes one epoch (plan → shuffle →
//!   minibatches → optimizer steps) and returns an [`EpochReport`];
//! * [`TrainSession::checkpoint`] snapshots the complete training state at
//!   an epoch boundary ([`TrainCheckpoint`], persisted through a
//!   [`SelectorStore`]);
//! * [`TrainSession::resume`] rebuilds a session from a checkpoint such
//!   that epochs `k+1..n` are **bitwise-identical** to an uninterrupted
//!   run — weights, per-epoch losses, accuracies and examined counts all
//!   match exactly (only the wall-clock `train_seconds` differs);
//! * [`TrainSession::finish`] converts the session into a
//!   [`TrainedSelector`] ready for evaluation, persistence, or live
//!   deployment via [`crate::serve::SelectorEngine::deploy`].
//!
//! Bitwise resume works because every source of randomness is re-derivable:
//! parameter init comes from the config seed, and the shuffle and pruning
//! draws of epoch `e` come from per-epoch streams keyed on `(seed, e)` —
//! never on how many draws earlier epochs made. The checkpoint therefore
//! only carries state that *accumulates*: weights, batch-norm buffers,
//! optimizer moments, pruning loss means, and the stats so far.
//!
//! With `cfg.replicas > 1` the session delegates each minibatch to
//! [`super::dp::ReplicaSet`] for deterministic data-parallel gradient
//! accumulation; the master model then takes the optimizer step.

use super::dp::ReplicaSet;
use super::objective::{BatchContext, Objective};
use super::{TrainConfig, TrainStats, TrainedSelector};
use crate::arch::Encoder;
use crate::dataset::SelectorDataset;
use crate::manage::{SavedState, SelectorStore};
use crate::prune::{PruneSnapshot, PruneState, PruningStrategy};
use crate::selector::argmax;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsad_models::ModelId;
use tsnn::layers::{Layer, Linear};
use tsnn::optim::{clip_grad_norm, Adam, AdamState};
use tsnn::serialize::{load_params, save_params, StateDict};
use tsnn::{Param, Tensor};

/// One model replica's working set: encoder, classifier, objective, and the
/// scratch buffers batch assembly reuses (the flat input buffer travels
/// into the batch tensor and is reclaimed via [`Tensor::into_data`], so
/// steady-state training performs no per-batch input allocations).
///
/// The session's *master* core owns the canonical weights and takes the
/// optimizer steps; data-parallel replicas are [`TrainerCore::replicate`]d
/// clones that only ever compute gradients.
pub(crate) struct TrainerCore {
    pub(crate) encoder: Box<dyn Encoder>,
    pub(crate) classifier: Linear,
    pub(crate) objective: Objective,
    window: usize,
    x_buf: Vec<f32>,
    targets: Vec<usize>,
}

/// What one forward/backward pass over a (micro-)batch produced. Gradients
/// stay accumulated on the core's parameters.
pub(crate) struct StepOutput {
    /// Weighted mean loss over the batch.
    pub(crate) loss: f64,
    /// Per-sample losses for the pruning running means, batch order.
    pub(crate) per_sample: Vec<f64>,
    /// Hard-label hits (training accuracy numerator).
    pub(crate) correct: usize,
}

impl TrainerCore {
    /// Builds the master core with the trainer's canonical seed
    /// derivations (encoder from `seed`, classifier from `seed ^ 0xC1A5`,
    /// MKI projections from `seed ^ 0x17E` inside the objective).
    fn build(cfg: &TrainConfig, dataset: &SelectorDataset, window: usize) -> Self {
        let encoder = cfg.arch.build(window, cfg.width, cfg.seed);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC1A5);
        let classifier = Linear::new(encoder.feature_dim(), ModelId::ALL.len(), &mut rng);
        let objective = Objective::from_config(cfg, dataset, encoder.feature_dim());
        Self {
            encoder,
            classifier,
            objective,
            window,
            x_buf: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Every trainable parameter — encoder, classifier, then objective
    /// terms — in the stable order the optimizer and checkpoints rely on.
    pub(crate) fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.encoder.params_mut();
        p.extend(self.classifier.params_mut());
        p.extend(self.objective.params_mut());
        p
    }

    /// Read-only view of [`TrainerCore::params_mut`].
    pub(crate) fn params(&self) -> Vec<&Param> {
        let mut p = self.encoder.params();
        p.extend(self.classifier.params());
        p.extend(self.objective.params());
        p
    }

    /// The selector-model parameters only (encoder + classifier), matching
    /// [`TrainedSelector::params`] order — what checkpoints store as the
    /// model state.
    fn model_params(&self) -> Vec<&Param> {
        let mut p = self.encoder.params();
        p.extend(self.classifier.params());
        p
    }

    fn model_params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.encoder.params_mut();
        p.extend(self.classifier.params_mut());
        p
    }

    /// Non-trainable state (batch-norm running statistics).
    pub(crate) fn buffers(&self) -> Vec<&Vec<f32>> {
        self.encoder.buffers()
    }

    pub(crate) fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        self.encoder.buffers_mut()
    }

    /// Zeroes every parameter gradient.
    pub(crate) fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Copies parameter values and buffers from `src` (same architecture).
    pub(crate) fn sync_from(&mut self, src: &TrainerCore) {
        for (dst, s) in self.params_mut().into_iter().zip(src.params()) {
            dst.value.data_mut().copy_from_slice(s.value.data());
        }
        for (dst, s) in self.buffers_mut().into_iter().zip(src.buffers()) {
            dst.copy_from_slice(s);
        }
    }

    /// A data-parallel replica of this core: freshly built components with
    /// the master's weights copied in, fresh caches and scratch.
    pub(crate) fn replicate(&self, cfg: &TrainConfig) -> TrainerCore {
        let mut replica = TrainerCore {
            encoder: cfg.arch.build(self.window, cfg.width, cfg.seed),
            classifier: self.classifier.clone(),
            objective: self.objective.for_replica(),
            window: self.window,
            x_buf: Vec::new(),
            targets: Vec::new(),
        };
        replica.sync_from(self);
        replica
    }

    /// One forward/backward pass over a (micro-)batch: assembles the input
    /// tensor, evaluates the objective, backpropagates through classifier
    /// and encoder, and leaves the gradients accumulated on this core's
    /// parameters. Zeroes the gradients first.
    pub(crate) fn run_batch(
        &mut self,
        dataset: &SelectorDataset,
        indices: &[usize],
        weights: &[f32],
    ) -> StepOutput {
        let b = indices.len();
        let window = self.window;
        self.x_buf.clear();
        self.x_buf.reserve(b * window);
        for &i in indices {
            self.x_buf.extend_from_slice(&dataset.windows[i]);
        }
        let x = Tensor::from_vec(&[b, 1, window], std::mem::take(&mut self.x_buf));
        self.targets.clear();
        self.targets
            .extend(indices.iter().map(|&i| dataset.hard_labels[i]));

        self.zero_grads();
        let z_t = self.encoder.forward(&x, true);
        let logits = self.classifier.forward(&z_t, true);
        let ctx = BatchContext {
            dataset,
            indices,
            weights,
            targets: &self.targets,
            features: &z_t,
            logits: &logits,
        };
        let out = self.objective.accumulate(&ctx);
        let mut g_z = self.classifier.backward(&out.grad_logits);
        if let Some(grad_features) = &out.grad_features {
            g_z.add_assign(grad_features);
        }
        let _ = self.encoder.backward(&g_z);

        let correct = self
            .targets
            .iter()
            .enumerate()
            .filter(|&(bi, &t)| argmax(logits.row(bi)) == t)
            .count();
        // Recycle the input buffer for the next batch.
        self.x_buf = x.into_data();
        StepOutput {
            loss: out.loss,
            per_sample: out.per_sample,
            correct,
        }
    }
}

/// Summary of one completed epoch, mirroring the entries appended to
/// [`TrainStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// Zero-based epoch index that just ran.
    pub epoch: usize,
    /// Mean combined loss over the visited samples.
    pub loss: f64,
    /// Hard-label training accuracy over the visited samples.
    pub accuracy: f64,
    /// Samples examined (pruning shrinks this).
    pub examined: usize,
}

/// A complete epoch-boundary snapshot of a [`TrainSession`].
///
/// Everything except wall-clock time is restored exactly: resuming from a
/// checkpoint taken after epoch `k` replays epochs `k+1..n` with
/// bitwise-identical weights and [`TrainStats`] entries. Persist through
/// [`SelectorStore::save_checkpoint`] / [`SelectorStore::load_checkpoint`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainCheckpoint {
    /// The full training configuration (a resumed session rebuilds from
    /// this — callers don't re-supply it).
    pub config: TrainConfig,
    /// Epochs completed when the snapshot was taken.
    pub epochs_done: usize,
    /// Content fingerprint of the dataset the session trained over
    /// ([`SelectorDataset::fingerprint`]); resume rejects any other
    /// dataset, same-sized or not.
    pub dataset_fingerprint: u64,
    /// Selector model state: encoder + classifier parameters and
    /// batch-norm buffers, [`TrainedSelector::params`] order.
    pub model: SavedState,
    /// Objective-term parameters (the MKI projection MLPs; empty without
    /// MKI).
    pub objective: StateDict,
    /// Adam moments and step counter.
    pub optimizer: AdamState,
    /// Pruning loss bookkeeping (running per-sample means).
    pub prune: PruneSnapshot,
    /// Statistics accumulated so far.
    pub stats: TrainStats,
}

/// A resumable, checkpointable selector-training run. See the
/// [module docs](self) for the lifecycle.
pub struct TrainSession {
    cfg: TrainConfig,
    n: usize,
    dataset_fingerprint: u64,
    core: TrainerCore,
    opt: Adam,
    prune: PruneState,
    replicas: Option<ReplicaSet>,
    stats: TrainStats,
    next_epoch: usize,
}

/// Per-epoch shuffle stream: like the pruning module's, keyed on
/// `(seed, epoch)` so a resumed session replays the exact permutations.
fn shuffle_stream(seed: u64, epoch: usize) -> u64 {
    (seed ^ 0x5F)
        ^ (epoch as u64)
            .wrapping_add(1)
            .wrapping_mul(0xD1B5_4A32_D192_ED03)
}

fn shuffle_pair(indices: &mut [usize], weights: &mut [f32], rng: &mut StdRng) {
    debug_assert_eq!(indices.len(), weights.len());
    for i in (1..indices.len()).rev() {
        let j = rng.random_range(0..=i);
        indices.swap(i, j);
        weights.swap(i, j);
    }
}

impl TrainSession {
    /// Creates a session over `dataset`: builds the model components, the
    /// objective, the pruning state (hashing LSH signatures for PA — the
    /// setup cost the paper folds into training time), and, when
    /// `cfg.replicas > 1`, the data-parallel replica set.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn new(dataset: &SelectorDataset, cfg: &TrainConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        // kdlint: allow(wallclock): reported setup-seconds metric only —
        // training math never reads the clock.
        let start = std::time::Instant::now();
        let window = dataset.window_cfg.length;
        let n = dataset.len();
        let core = TrainerCore::build(cfg, dataset, window);
        let lsh_inputs: Option<Vec<Vec<f64>>> = match cfg.pruning {
            PruningStrategy::Pa { .. } => Some(
                (0..n)
                    .map(|i| dataset.lsh_input(i, cfg.mki.is_some()))
                    .collect(),
            ),
            _ => None,
        };
        let prune = PruneState::new(cfg.pruning, lsh_inputs.as_deref(), n, cfg.seed ^ 0x9A);
        let replicas = (cfg.replicas > 1).then(|| ReplicaSet::new(&core, cfg));
        let stats = TrainStats {
            epoch_loss: Vec::with_capacity(cfg.epochs),
            epoch_accuracy: Vec::with_capacity(cfg.epochs),
            epoch_examined: Vec::with_capacity(cfg.epochs),
            train_seconds: start.elapsed().as_secs_f64(),
            total_windows: n,
        };
        Self {
            cfg: *cfg,
            n,
            dataset_fingerprint: dataset.fingerprint(),
            core,
            opt: Adam::new(cfg.lr, cfg.weight_decay),
            prune,
            replicas,
            stats,
            next_epoch: 0,
        }
    }

    /// The configuration this session trains with.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Epochs completed so far (the next [`TrainSession::run_epoch`] runs
    /// this epoch index).
    pub fn epoch(&self) -> usize {
        self.next_epoch
    }

    /// Whether all configured epochs have run.
    pub fn is_complete(&self) -> bool {
        self.next_epoch >= self.cfg.epochs
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &TrainStats {
        &self.stats
    }

    /// Runs one epoch: pruning plan, per-epoch shuffle, minibatch
    /// forward/backward (data-parallel when configured), gradient clip and
    /// optimizer step, loss bookkeeping for the pruning running means.
    ///
    /// # Panics
    /// Panics if the session [`TrainSession::is_complete`] or `dataset` is
    /// not the one the session was created over (size check).
    pub fn run_epoch(&mut self, dataset: &SelectorDataset) -> EpochReport {
        assert!(
            !self.is_complete(),
            "session already ran all {} epochs",
            self.cfg.epochs
        );
        assert_eq!(
            dataset.len(),
            self.n,
            "dataset changed under the session (window count mismatch)"
        );
        // kdlint: allow(wallclock): reported epoch-seconds metric only —
        // training math never reads the clock.
        let t0 = std::time::Instant::now();
        kdprof::span!(kdprof::Phase::Train);
        let epoch = self.next_epoch;

        let mut plan = self.prune.plan_epoch(epoch, self.cfg.epochs);
        let mut shuffle_rng = StdRng::seed_from_u64(shuffle_stream(self.cfg.seed, epoch));
        shuffle_pair(&mut plan.indices, &mut plan.weights, &mut shuffle_rng);
        self.stats.epoch_examined.push(plan.indices.len());

        let mut epoch_loss = 0.0f64;
        let mut correct = 0usize;
        let mut seen = 0usize;
        let mut cursor = 0;
        while cursor < plan.indices.len() {
            let end = (cursor + self.cfg.batch_size).min(plan.indices.len());
            let batch_idx = &plan.indices[cursor..end];
            let batch_w = &plan.weights[cursor..end];
            let b = batch_idx.len();
            cursor = end;

            let out = match &mut self.replicas {
                Some(set) => set.step(&mut self.core, dataset, batch_idx, batch_w),
                None => self.core.run_batch(dataset, batch_idx, batch_w),
            };
            {
                let mut params = self.core.params_mut();
                clip_grad_norm(&mut params, self.cfg.grad_clip);
                self.opt.step(&mut params);
            }
            self.prune.record_losses(batch_idx, &out.per_sample);
            kdprof::incr(kdprof::Counter::TrainSteps, 1);
            epoch_loss += out.loss * b as f64;
            correct += out.correct;
            seen += b;
        }

        let loss = if seen > 0 {
            epoch_loss / seen as f64
        } else {
            0.0
        };
        let accuracy = if seen > 0 {
            correct as f64 / seen as f64
        } else {
            0.0
        };
        self.stats.epoch_loss.push(loss);
        self.stats.epoch_accuracy.push(accuracy);
        self.stats.train_seconds += t0.elapsed().as_secs_f64();
        self.next_epoch += 1;
        EpochReport {
            epoch,
            loss,
            accuracy,
            examined: seen,
        }
    }

    /// Runs every remaining epoch.
    pub fn run_to_completion(&mut self, dataset: &SelectorDataset) {
        while !self.is_complete() {
            self.run_epoch(dataset);
        }
    }

    /// Snapshots the complete training state at the current epoch
    /// boundary.
    pub fn checkpoint(&self) -> TrainCheckpoint {
        TrainCheckpoint {
            config: self.cfg,
            epochs_done: self.next_epoch,
            dataset_fingerprint: self.dataset_fingerprint,
            model: SavedState {
                params: save_params(&self.core.model_params()),
                buffers: self.core.buffers().iter().map(|b| b.to_vec()).collect(),
            },
            objective: save_params(&self.core.objective.params()),
            optimizer: self.opt.state(),
            prune: self.prune.snapshot(),
            stats: self.stats.clone(),
        }
    }

    /// Persists [`TrainSession::checkpoint`] under `name` in `store`.
    pub fn save_checkpoint(&self, store: &SelectorStore, name: &str) -> std::io::Result<()> {
        store.save_checkpoint(name, &self.checkpoint())
    }

    /// Rebuilds a session from a checkpoint over the same dataset.
    /// Continuation is bitwise-identical to the uninterrupted run (see the
    /// [module docs](self)); only `train_seconds` differs (it keeps the
    /// checkpoint's total and accumulates this process's setup and epoch
    /// wall clock on top).
    ///
    /// # Errors
    /// Rejects checkpoints whose shapes disagree with the rebuilt model,
    /// or whose sample count or content fingerprint disagrees with
    /// `dataset` — a same-sized but different dataset is a hard error,
    /// not a silent continuation over the wrong data.
    pub fn resume(dataset: &SelectorDataset, ckpt: &TrainCheckpoint) -> Result<Self, String> {
        if ckpt.stats.total_windows != dataset.len() {
            return Err(format!(
                "checkpoint was taken over {} windows, dataset has {}",
                ckpt.stats.total_windows,
                dataset.len()
            ));
        }
        if ckpt.epochs_done > ckpt.config.epochs {
            return Err(format!(
                "corrupt checkpoint: {} epochs done of {} configured",
                ckpt.epochs_done, ckpt.config.epochs
            ));
        }
        let mut session = TrainSession::new(dataset, &ckpt.config);
        // Construction already hashed the dataset once; compare against
        // that instead of paying a second full fingerprint pass.
        if ckpt.dataset_fingerprint != session.dataset_fingerprint {
            return Err(
                "checkpoint was taken over a different dataset (content fingerprint \
                 mismatch); resuming would silently corrupt the continuation"
                    .to_string(),
            );
        }
        let setup_seconds = session.stats.train_seconds;
        load_params(&mut session.core.model_params_mut(), &ckpt.model.params)?;
        {
            let mut buffers = session.core.buffers_mut();
            if buffers.len() != ckpt.model.buffers.len() {
                return Err(format!(
                    "buffer count mismatch: model has {}, checkpoint has {}",
                    buffers.len(),
                    ckpt.model.buffers.len()
                ));
            }
            for (dst, src) in buffers.iter_mut().zip(&ckpt.model.buffers) {
                if dst.len() != src.len() {
                    return Err("buffer length mismatch".to_string());
                }
                dst.copy_from_slice(src);
            }
        }
        load_params(&mut session.core.objective.params_mut(), &ckpt.objective)?;
        session.opt.load_state(ckpt.optimizer.clone())?;
        session.prune.restore(&ckpt.prune)?;
        session.stats = ckpt.stats.clone();
        session.stats.train_seconds += setup_seconds;
        session.next_epoch = ckpt.epochs_done;
        // Data-parallel replicas re-sync from the master at every step, so
        // their (stale) initial weights never need restoring.
        Ok(session)
    }

    /// Loads a checkpoint saved under `name` from `store` and resumes it
    /// over `dataset`.
    pub fn resume_from(
        store: &SelectorStore,
        name: &str,
        dataset: &SelectorDataset,
    ) -> std::io::Result<Self> {
        let ckpt = store.load_checkpoint(name)?;
        Self::resume(dataset, &ckpt)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Resumes the checkpoint saved under `name` in `store` if one exists,
    /// otherwise starts a fresh session over `dataset` with `cfg` — one
    /// code path whether a prior run was interrupted or never started,
    /// which is what makes a replayed
    /// [`crate::stream::RetrainDaemon`] land on the interrupted daemon's
    /// checkpoint and continue it bitwise. Returns the session and whether
    /// it resumed.
    ///
    /// # Errors
    /// A *missing* checkpoint is not an error (a fresh session starts). A
    /// checkpoint that exists but was taken under a different
    /// [`TrainConfig`], over a different dataset (content fingerprint), or
    /// with a mismatched window count is a hard `InvalidData` error —
    /// silently continuing under different training inputs would corrupt
    /// the run instead of reproducing it.
    pub fn resume_or_start(
        store: &SelectorStore,
        name: &str,
        dataset: &SelectorDataset,
        cfg: &TrainConfig,
    ) -> std::io::Result<(Self, bool)> {
        match store.load_checkpoint(name) {
            Ok(ckpt) => {
                if ckpt.config != *cfg {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "checkpoint {name:?} was taken under a different TrainConfig; \
                             resuming it with this configuration would not reproduce the run"
                        ),
                    ));
                }
                let session = Self::resume(dataset, &ckpt)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                Ok((session, true))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Ok((Self::new(dataset, cfg), false))
            }
            Err(e) => Err(e),
        }
    }

    /// Converts the session into its trained selector and statistics. The
    /// session may be finished early (before all configured epochs ran).
    pub fn finish(self) -> (TrainedSelector, TrainStats) {
        (
            TrainedSelector::from_parts(
                self.cfg.arch,
                self.core.window,
                self.cfg.width,
                self.cfg.seed,
                self.core.encoder,
                self.core.classifier,
            ),
            self.stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::testutil;
    use crate::train::{MkiConfig, PislConfig};

    fn toy_dataset() -> SelectorDataset {
        testutil::toy_dataset(6, 48, |i| i % 3)
    }

    fn full_cfg() -> TrainConfig {
        TrainConfig {
            arch: crate::arch::Architecture::ConvNet,
            width: 4,
            epochs: 5,
            batch_size: 16,
            lr: 5e-3,
            pisl: Some(PislConfig::default()),
            mki: Some(MkiConfig {
                hidden: 16,
                proj_dim: 8,
                ..MkiConfig::default()
            }),
            pruning: PruningStrategy::InfoBatch {
                ratio: 0.7,
                anneal: 0.2,
            },
            ..TrainConfig::default()
        }
    }

    #[test]
    fn session_lifecycle_reports_progress() {
        let ds = toy_dataset();
        let cfg = full_cfg();
        let mut session = TrainSession::new(&ds, &cfg);
        assert_eq!(session.epoch(), 0);
        assert!(!session.is_complete());
        let first = session.run_epoch(&ds);
        assert_eq!(first.epoch, 0);
        assert_eq!(first.examined, ds.len(), "epoch 0 is always full");
        assert!(first.loss.is_finite() && first.loss > 0.0);
        session.run_to_completion(&ds);
        assert!(session.is_complete());
        assert_eq!(session.stats().epoch_loss.len(), cfg.epochs);
        let (model, stats) = session.finish();
        assert_eq!(stats.epoch_loss.len(), cfg.epochs);
        assert!(stats.train_seconds > 0.0);
        assert!(model
            .predict_windows(&ds.windows[..2])
            .iter()
            .all(|&p| p < 12));
    }

    #[test]
    fn early_finish_yields_partially_trained_model() {
        let ds = toy_dataset();
        let mut session = TrainSession::new(&ds, &full_cfg());
        session.run_epoch(&ds);
        let (model, stats) = session.finish();
        assert_eq!(stats.epoch_loss.len(), 1);
        let _ = model.predict_windows(&ds.windows[..1]);
    }

    #[test]
    fn checkpoint_resume_continues_bitwise() {
        let ds = toy_dataset();
        let cfg = full_cfg();

        let mut straight = TrainSession::new(&ds, &cfg);
        straight.run_to_completion(&ds);
        let (straight_model, straight_stats) = straight.finish();

        let mut first = TrainSession::new(&ds, &cfg);
        for _ in 0..2 {
            first.run_epoch(&ds);
        }
        let ckpt = first.checkpoint();
        assert_eq!(ckpt.epochs_done, 2);
        drop(first);

        let mut resumed = TrainSession::resume(&ds, &ckpt).expect("resume");
        assert_eq!(resumed.epoch(), 2);
        resumed.run_to_completion(&ds);
        let (resumed_model, resumed_stats) = resumed.finish();

        assert_eq!(
            save_params(&straight_model.params()),
            save_params(&resumed_model.params()),
            "weights must continue bitwise"
        );
        for (a, b) in straight_model.buffers().iter().zip(resumed_model.buffers()) {
            assert_eq!(*a, b, "buffers must continue bitwise");
        }
        assert_eq!(straight_stats.epoch_loss, resumed_stats.epoch_loss);
        assert_eq!(straight_stats.epoch_accuracy, resumed_stats.epoch_accuracy);
        assert_eq!(straight_stats.epoch_examined, resumed_stats.epoch_examined);
    }

    #[test]
    fn resume_or_start_covers_fresh_resumed_and_mismatched() {
        let dir =
            std::env::temp_dir().join(format!("kdsel-resume-or-start-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SelectorStore::open(&dir).expect("store");
        let ds = toy_dataset();
        let cfg = full_cfg();

        // No checkpoint: a fresh session starts at epoch 0.
        let (mut session, resumed) =
            TrainSession::resume_or_start(&store, "daemon", &ds, &cfg).expect("fresh");
        assert!(!resumed);
        assert_eq!(session.epoch(), 0);
        for _ in 0..2 {
            session.run_epoch(&ds);
        }
        session.save_checkpoint(&store, "daemon").expect("save");

        // Checkpoint present: resumes at its epoch boundary.
        let (resumed_session, resumed) =
            TrainSession::resume_or_start(&store, "daemon", &ds, &cfg).expect("resume");
        assert!(resumed);
        assert_eq!(resumed_session.epoch(), 2);

        // Same name, different config: hard error, not a silent restart.
        let mut other_cfg = cfg;
        other_cfg.seed ^= 1;
        match TrainSession::resume_or_start(&store, "daemon", &ds, &other_cfg) {
            Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidData),
            Ok(_) => panic!("config mismatch must be a hard error"),
        }

        // Same config, different dataset content: hard error too.
        let other_ds = testutil::toy_dataset(6, 48, |i| (i + 1) % 3);
        match TrainSession::resume_or_start(&store, "daemon", &other_ds, &cfg) {
            Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidData),
            Ok(_) => panic!("dataset mismatch must be a hard error"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_mismatched_dataset() {
        let ds = toy_dataset();
        let mut session = TrainSession::new(&ds, &full_cfg());
        session.run_epoch(&ds);
        let mut ckpt = session.checkpoint();
        ckpt.stats.total_windows += 1;
        assert!(TrainSession::resume(&ds, &ckpt).is_err());
    }

    #[test]
    fn run_epoch_after_completion_panics() {
        let ds = toy_dataset();
        let mut cfg = full_cfg();
        cfg.epochs = 1;
        let mut session = TrainSession::new(&ds, &cfg);
        session.run_epoch(&ds);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.run_epoch(&ds);
        }));
        assert!(err.is_err());
    }
}
