//! The KDSelector trainer: composable objectives, resumable sessions, and
//! deterministic data-parallel gradient accumulation.
//!
//! The trainer is layered (mirroring what [`crate::serve`] does for the
//! serving side):
//!
//! * [`objective`] — the loss terms behind one [`objective::LossTerm`]
//!   trait: hard cross-entropy, **PISL** (`α · L_PISL` against
//!   `softmax(P(M_j(T_i)) / t_soft)` soft labels, hard term scaled by
//!   `1 − α`), and **MKI** (`λ · L_InfoNCE(h_T(z_T), h_K(z_K))` with frozen
//!   metadata embeddings and trainable MLP projections), composed into an
//!   [`objective::Objective`] that owns logit/feature gradient
//!   accumulation.
//! * [`session`] — [`session::TrainSession`]: owns the model components,
//!   the optimizer, the pruning state ([`crate::prune::PruneState`], the
//!   **PA / InfoBatch** module) and per-epoch RNG streams. Runs epoch by
//!   epoch, snapshots epoch-boundary checkpoints through a
//!   [`crate::manage::SelectorStore`], and resumes from a checkpoint with
//!   bitwise-identical continuation.
//! * [`dp`] — data-parallel gradient accumulation: the minibatch is split
//!   into fixed micro-partitions, each replica runs forward/backward on
//!   its own model clone on [`tspar`]'s worker pool, and gradients are
//!   reduced in partition order — results depend on the replica count but
//!   **never** on `KD_THREADS`.
//!
//! [`train`] is the one-call convenience wrapper: build a session, run all
//! epochs, return the [`TrainedSelector`] and [`TrainStats`]. The session
//! API is the entry point for everything richer — per-epoch control,
//! checkpoint/resume, and live deployment via
//! [`crate::serve::SelectorEngine::deploy`].
//!
//! The trainer reports wall-clock training time and per-epoch sample
//! counts, which the benchmark harness uses to reproduce the paper's time
//! columns (and the `micro_kernels` "train" record uses for windows/sec).

pub mod dp;
pub mod objective;
pub mod session;

#[cfg(test)]
pub(crate) mod testutil {
    //! The shared in-crate training-test fixture (one builder instead of a
    //! copy per test module).

    use crate::dataset::SelectorDataset;
    use crate::labels::PerfMatrix;
    use tsdata::{Benchmark, BenchmarkConfig, WindowConfig};
    use tstext::FrozenTextEncoder;

    /// Synthetic-label dataset (no detector runs): the first `n_series`
    /// tiny-benchmark series of 256 points, window 32/32, and perf rows
    /// peaking at model `best(i)` for series `i`.
    pub(crate) fn toy_dataset(
        n_series: usize,
        text_dim: usize,
        best: impl Fn(usize) -> usize,
    ) -> SelectorDataset {
        let mut cfg = BenchmarkConfig::tiny();
        cfg.series_length = 256;
        let b = Benchmark::generate(cfg);
        let series: Vec<_> = b.train.into_iter().take(n_series).collect();
        let rows: Vec<Vec<f64>> = (0..n_series)
            .map(|i| {
                (0..12)
                    .map(|m| if m == best(i) { 0.8 } else { 0.1 })
                    .collect()
            })
            .collect();
        let perf = PerfMatrix {
            series_ids: series.iter().map(|s| s.id.clone()).collect(),
            rows,
        };
        let enc = FrozenTextEncoder::new(text_dim, 0);
        let wc = WindowConfig {
            length: 32,
            stride: 32,
            znormalize: true,
        };
        SelectorDataset::build(&series, &perf, wc, &enc)
    }
}

pub use objective::{BatchContext, LazyGrad, LossTerm, Objective, ObjectiveOutput, TermOutput};
pub use session::{EpochReport, TrainCheckpoint, TrainSession};

use crate::arch::{Architecture, Encoder};
use crate::dataset::SelectorDataset;
use crate::prune::PruningStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsad_models::ModelId;
use tsnn::layers::{Layer, Linear};
use tsnn::Tensor;

/// PISL hyperparameters (§3, Table of §B.1).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PislConfig {
    /// Relative importance of the soft label, `α ∈ [0, 1]`.
    pub alpha: f32,
    /// Soft-label temperature `t_soft`.
    pub t_soft: f64,
}

impl Default for PislConfig {
    fn default() -> Self {
        Self {
            alpha: 0.4,
            t_soft: 0.25,
        }
    }
}

/// MKI hyperparameters (§3, §B.1).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MkiConfig {
    /// Weight `λ` of the InfoNCE term.
    pub lambda: f32,
    /// Shared projection dimension `H`.
    pub proj_dim: usize,
    /// Hidden width of the projection MLPs.
    pub hidden: usize,
    /// InfoNCE temperature.
    pub temperature: f32,
}

impl Default for MkiConfig {
    fn default() -> Self {
        // λ = 1.0 is the paper's selected value (it picks λ ∈ {0.78, 1.0}).
        // On this reproduction's deliberately small encoders MKI is
        // neutral-to-negative at any λ we tried (1.0 and 0.3 are both
        // benchmarked; see EXPERIMENTS.md, "Notes on fidelity") — the
        // default stays paper-faithful rather than tuned to our substrate.
        Self {
            lambda: 1.0,
            proj_dim: 64,
            hidden: 256,
            temperature: 0.1,
        }
    }
}

/// Full training configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    /// Selector architecture.
    pub arch: Architecture,
    /// Base channel width of the encoder.
    pub width: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip (the §A.1 boundedness assumption).
    pub grad_clip: f64,
    /// Weight decay (the §A.1 strong-convexity device).
    pub weight_decay: f32,
    /// Seed for init, shuffling and pruning randomness.
    pub seed: u64,
    /// Data-parallel replica count ([`dp`]). Each minibatch is split into
    /// this many **fixed** micro-partitions; every replica runs
    /// forward/backward on its own model clone and gradients are reduced
    /// in partition order. Results depend on this value (micro-batch
    /// normalisation and contrastive statistics) but never on
    /// `KD_THREADS`. `1` (the default) trains on the session's master
    /// model directly, with no cloning.
    pub replicas: usize,
    /// PISL module (None = hard labels only).
    pub pisl: Option<PislConfig>,
    /// MKI module (None = no knowledge integration).
    pub mki: Option<MkiConfig>,
    /// Pruning strategy.
    pub pruning: PruningStrategy,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            arch: Architecture::ResNet,
            width: 8,
            epochs: 10,
            batch_size: 64,
            lr: 3e-3,
            grad_clip: 5.0,
            weight_decay: 1e-4,
            seed: 7,
            replicas: 1,
            pisl: None,
            mki: None,
            pruning: PruningStrategy::None,
        }
    }
}

impl TrainConfig {
    /// The full KDSelector configuration: PISL + MKI + PA with the paper's
    /// defaults.
    pub fn kdselector(arch: Architecture) -> Self {
        Self {
            arch,
            pisl: Some(PislConfig::default()),
            mki: Some(MkiConfig::default()),
            pruning: PruningStrategy::pa_default(),
            ..Self::default()
        }
    }

    /// Knowledge-enhanced but unpruned (the accuracy-comparison setting the
    /// paper uses for Table 1, Fig. 4 and the AUC-PR columns of Table 3).
    pub fn knowledge_enhanced(arch: Architecture) -> Self {
        Self {
            arch,
            pisl: Some(PislConfig::default()),
            mki: Some(MkiConfig::default()),
            pruning: PruningStrategy::None,
            ..Self::default()
        }
    }
}

/// Per-training-run statistics.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainStats {
    /// Mean combined loss per epoch.
    pub epoch_loss: Vec<f64>,
    /// Training accuracy (hard label) per epoch.
    pub epoch_accuracy: Vec<f64>,
    /// Samples examined per epoch (pruning shrinks this).
    pub epoch_examined: Vec<usize>,
    /// Wall-clock training seconds (includes LSH setup for PA). The one
    /// field outside the determinism contract: a resumed session reports
    /// its own wall clock, everything else is bitwise-reproducible.
    pub train_seconds: f64,
    /// Total number of windows in the training set.
    pub total_windows: usize,
}

impl TrainStats {
    /// Fraction of sample visits saved relative to full-data training.
    pub fn examined_fraction(&self) -> f64 {
        if self.total_windows == 0 || self.epoch_examined.is_empty() {
            return 1.0;
        }
        let visited: usize = self.epoch_examined.iter().sum();
        visited as f64 / (self.total_windows * self.epoch_examined.len()) as f64
    }
}

/// A trained NN selector: encoder + linear classifier.
pub struct TrainedSelector {
    /// Architecture used.
    pub arch: Architecture,
    /// Window length the selector expects.
    pub window: usize,
    /// Encoder width.
    pub width: usize,
    /// Seed used at build time (needed to rebuild for weight loading).
    pub seed: u64,
    pub(crate) encoder: Box<dyn Encoder>,
    pub(crate) classifier: Linear,
    /// Lazily pre-packed classifier weight panels: the serving hot path
    /// multiplies against the same (frozen) weights every batch, so the
    /// GEMM packing step runs once instead of per chunk. Invalidated
    /// whenever the parameters are handed out mutably.
    packed_classifier: std::sync::OnceLock<tsnn::gemm::PackedB>,
}

impl TrainedSelector {
    /// Builds an untrained selector (used by the loader).
    pub fn build(arch: Architecture, window: usize, width: usize, seed: u64) -> Self {
        let encoder = arch.build(window, width, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A5);
        let classifier = Linear::new(encoder.feature_dim(), ModelId::ALL.len(), &mut rng);
        Self {
            arch,
            window,
            width,
            seed,
            encoder,
            classifier,
            packed_classifier: std::sync::OnceLock::new(),
        }
    }

    /// Assembles a trained selector from its parts (the session's
    /// `finish` path).
    pub(crate) fn from_parts(
        arch: Architecture,
        window: usize,
        width: usize,
        seed: u64,
        encoder: Box<dyn Encoder>,
        classifier: Linear,
    ) -> Self {
        Self {
            arch,
            window,
            width,
            seed,
            encoder,
            classifier,
            packed_classifier: std::sync::OnceLock::new(),
        }
    }

    /// All trainable parameters (encoder then classifier), stable order.
    pub fn params_mut(&mut self) -> Vec<&mut tsnn::Param> {
        // The caller may rewrite the classifier weights (weight loading);
        // drop the pre-packed panels so inference re-packs lazily.
        let _ = self.packed_classifier.take();
        let mut p = self.encoder.params_mut();
        p.extend(self.classifier.params_mut());
        p
    }

    /// Read-only view of the trainable parameters, `params_mut()` order.
    /// Persistence snapshots a trained selector through this accessor —
    /// saving is not a mutation.
    pub fn params(&self) -> Vec<&tsnn::Param> {
        let mut p = self.encoder.params();
        p.extend(self.classifier.params());
        p
    }

    /// Non-trainable state (batch-norm running statistics). Persistence must
    /// save these alongside the parameters or inference-mode normalisation
    /// breaks after a reload.
    pub fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        self.encoder.buffers_mut()
    }

    /// Read-only view of the non-trainable state, `buffers_mut()` order.
    pub fn buffers(&self) -> Vec<&Vec<f32>> {
        self.encoder.buffers()
    }

    /// Class logits for a batch of windows (inference mode, chunked).
    ///
    /// Immutable and thread-safe: the forward pass runs through the
    /// encoder's [`Encoder::infer`] path, so one trained selector can score
    /// concurrent batches from many threads.
    pub fn predict_logits(&self, windows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let rows: Vec<&[f32]> = windows.iter().map(Vec::as_slice).collect();
        self.predict_logits_rows(&rows)
    }

    /// The chunked inference kernel over borrowed window rows — one logit
    /// row per input row, in order.
    ///
    /// This is the serving hot path: input and logit staging buffers come
    /// from the per-thread [`crate::serve::ScratchArena`] (recycled via
    /// `Tensor::into_data`, so steady-state serving allocates nothing
    /// here), and the classifier multiplies against pre-packed weight
    /// panels instead of re-packing per chunk. Chunk grouping never
    /// affects results: every layer of the forward pass is
    /// per-batch-element independent and the GEMM kernels are bitwise
    /// row-independent (pinned by the `tsnn::gemm` equality sweeps), so
    /// scoring rows in one call or many yields identical bytes.
    // kdprof: hot
    pub fn predict_logits_rows(&self, rows: &[&[f32]]) -> Vec<Vec<f32>> {
        kdprof::span!(kdprof::Phase::Score);
        let packed = self.packed_classifier.get_or_init(|| {
            let w = &self.classifier.weight.value;
            tsnn::gemm::PackedB::pack(w.dim(1), w.dim(0), w.data(), tsnn::gemm::Layout::Normal)
        });
        let n_out = self.classifier.out_features();
        let bias = self.classifier.bias.value.data();
        let mut out = Vec::with_capacity(rows.len());
        for chunk in rows.chunks(256) {
            let x = {
                kdprof::span!(kdprof::Phase::Pack);
                let mut buf = crate::serve::arena::with_arena(|a| a.take_input());
                buf.reserve(chunk.len() * self.window);
                for r in chunk {
                    assert_eq!(r.len(), self.window, "window length mismatch");
                    buf.extend_from_slice(r);
                }
                Tensor::from_vec(&[chunk.len(), 1, self.window], buf)
            };
            let z = self.encoder.infer(&x);
            let mut logits = crate::serve::arena::with_arena(|a| a.take_logits());
            logits.resize(chunk.len() * n_out, 0.0);
            tsnn::gemm::gemm_prepacked(
                chunk.len(),
                z.data(),
                tsnn::gemm::Layout::Normal,
                packed,
                &mut logits,
            );
            for i in 0..chunk.len() {
                let row = &mut logits[i * n_out..(i + 1) * n_out];
                for (v, &b) in row.iter_mut().zip(bias) {
                    *v += b;
                }
                out.push(row.to_vec());
            }
            crate::serve::arena::with_arena(|a| {
                a.put_input(x.into_data());
                a.put_logits(logits);
            });
        }
        out
    }

    /// Hard class predictions for a batch of windows.
    pub fn predict_windows(&self, windows: &[Vec<f32>]) -> Vec<usize> {
        self.predict_logits(windows)
            .into_iter()
            .map(|row| crate::selector::argmax(&row))
            .collect()
    }
}

/// Trains a selector on the dataset with the given configuration.
///
/// One-call wrapper over [`TrainSession`]: build, run every epoch, finish.
/// Use the session directly for per-epoch control, checkpointing, or
/// deployment into a live [`crate::serve::SelectorEngine`].
///
/// # Panics
/// Panics if the dataset is empty or its window length is inconsistent.
pub fn train(dataset: &SelectorDataset, cfg: &TrainConfig) -> (TrainedSelector, TrainStats) {
    let mut session = TrainSession::new(dataset, cfg);
    session.run_to_completion(dataset);
    session.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small dataset with synthetic perf rows (no detector runs).
    fn toy_dataset() -> SelectorDataset {
        testutil::toy_dataset(6, 48, |i| i % 3)
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            arch: Architecture::ConvNet,
            width: 4,
            epochs: 3,
            batch_size: 16,
            lr: 5e-3,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn standard_training_decreases_loss() {
        let ds = toy_dataset();
        let mut cfg = quick_cfg();
        cfg.epochs = 6;
        let (_sel, stats) = train(&ds, &cfg);
        assert_eq!(stats.epoch_loss.len(), 6);
        assert!(
            stats.epoch_loss.last().unwrap() < stats.epoch_loss.first().unwrap(),
            "loss {:?}",
            stats.epoch_loss
        );
        assert!((stats.examined_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pisl_and_mki_paths_run_and_learn() {
        let ds = toy_dataset();
        let mut cfg = quick_cfg();
        cfg.pisl = Some(PislConfig::default());
        cfg.mki = Some(MkiConfig {
            hidden: 32,
            proj_dim: 16,
            ..MkiConfig::default()
        });
        cfg.epochs = 5;
        let (_sel, stats) = train(&ds, &cfg);
        assert!(
            stats.epoch_loss.last().unwrap() < stats.epoch_loss.first().unwrap(),
            "loss {:?}",
            stats.epoch_loss
        );
    }

    #[test]
    fn data_parallel_replicas_run_and_learn() {
        let ds = toy_dataset();
        let mut cfg = quick_cfg();
        cfg.replicas = 2;
        cfg.pisl = Some(PislConfig::default());
        cfg.epochs = 6;
        let (sel, stats) = train(&ds, &cfg);
        assert!(
            stats.epoch_loss.last().unwrap() < stats.epoch_loss.first().unwrap(),
            "loss {:?}",
            stats.epoch_loss
        );
        let preds = sel.predict_windows(&ds.windows[..4]);
        assert!(preds.iter().all(|&p| p < 12));
    }

    #[test]
    fn pruning_reduces_examined_samples() {
        let ds = toy_dataset();
        let mut cfg = quick_cfg();
        cfg.epochs = 6;
        cfg.pruning = PruningStrategy::InfoBatch {
            ratio: 0.8,
            anneal: 0.17,
        };
        let (_sel, stats) = train(&ds, &cfg);
        assert!(
            stats.examined_fraction() < 1.0,
            "{:?}",
            stats.epoch_examined
        );
        // First epoch always full.
        assert_eq!(stats.epoch_examined[0], ds.len());
        // Last (anneal) epoch full again.
        assert_eq!(*stats.epoch_examined.last().unwrap(), ds.len());
    }

    #[test]
    fn pa_examines_fewer_samples_than_infobatch() {
        let ds = toy_dataset();
        let mut cfg = quick_cfg();
        cfg.epochs = 6;
        cfg.pruning = PruningStrategy::InfoBatch {
            ratio: 0.8,
            anneal: 0.0,
        };
        let (_s, ib) = train(&ds, &cfg);
        cfg.pruning = PruningStrategy::Pa {
            ratio: 0.8,
            lsh_bits: 10,
            bins: 4,
            anneal: 0.0,
        };
        let (_s, pa) = train(&ds, &cfg);
        let ib_total: usize = ib.epoch_examined.iter().sum();
        let pa_total: usize = pa.epoch_examined.iter().sum();
        assert!(pa_total <= ib_total, "PA {pa_total} vs IB {ib_total}");
    }

    #[test]
    fn trained_selector_predicts_in_class_range() {
        let ds = toy_dataset();
        let (sel, _) = train(&ds, &quick_cfg());
        let preds = sel.predict_windows(&ds.windows[..10.min(ds.len())]);
        assert!(preds.iter().all(|&p| p < 12));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let ds = toy_dataset();
        let cfg = quick_cfg();
        let (a, _) = train(&ds, &cfg);
        let (b, _) = train(&ds, &cfg);
        assert_eq!(
            a.predict_windows(&ds.windows[..4]),
            b.predict_windows(&ds.windows[..4])
        );
        let la = a.predict_logits(&ds.windows[..2]);
        let lb = b.predict_logits(&ds.windows[..2]);
        assert_eq!(la, lb);
    }

    #[test]
    fn train_equals_manually_stepped_session() {
        let ds = toy_dataset();
        let mut cfg = quick_cfg();
        cfg.pisl = Some(PislConfig::default());
        let (direct, direct_stats) = train(&ds, &cfg);

        let mut session = TrainSession::new(&ds, &cfg);
        let mut reports = Vec::new();
        while !session.is_complete() {
            reports.push(session.run_epoch(&ds));
        }
        let (stepped, stepped_stats) = session.finish();

        let direct_params = tsnn::serialize::save_params(&direct.params());
        let stepped_params = tsnn::serialize::save_params(&stepped.params());
        assert_eq!(
            direct_params, stepped_params,
            "weights must be bitwise equal"
        );
        assert_eq!(direct_stats.epoch_loss, stepped_stats.epoch_loss);
        assert_eq!(direct_stats.epoch_accuracy, stepped_stats.epoch_accuracy);
        assert_eq!(direct_stats.epoch_examined, stepped_stats.epoch_examined);
        // Epoch reports mirror the stats vectors entry for entry.
        for (e, r) in reports.iter().enumerate() {
            assert_eq!(r.epoch, e);
            assert_eq!(r.loss, stepped_stats.epoch_loss[e]);
            assert_eq!(r.accuracy, stepped_stats.epoch_accuracy[e]);
            assert_eq!(r.examined, stepped_stats.epoch_examined[e]);
        }
    }

    #[test]
    fn learns_family_correlated_labels() {
        // Labels that correlate with the signal family (series i/2 share a
        // family and a label) are learnable from window shape alone.
        let ds = testutil::toy_dataset(6, 48, |i| i / 2);

        let mut cfg = quick_cfg();
        cfg.epochs = 25;
        cfg.lr = 5e-3;
        let (_sel, stats) = train(&ds, &cfg);
        let final_acc = *stats.epoch_accuracy.last().unwrap();
        assert!(final_acc > 0.6, "accuracy {final_acc}");
    }
}
