//! The composable training objective: every KDSelector loss term behind one
//! [`LossTerm`] trait, composed into an [`Objective`] that owns gradient
//! accumulation.
//!
//! Three terms implement the paper's framework:
//!
//! * [`HardCe`] — cross-entropy on the hard best-model labels, scaled by
//!   `1 − α` when PISL is active (`1` otherwise);
//! * [`PislSoft`] — `α · L_PISL`, soft cross-entropy against the
//!   precomputed per-series `softmax(P(M_j(T_i)) / t_soft)` distributions;
//! * [`MkiAlign`] — `λ · L_InfoNCE(h_T(z_T), h_K(z_K))`, owning the two
//!   trainable projection MLPs; the knowledge embedding `z_K` is a frozen
//!   input.
//!
//! A term sees one (micro-)batch through a [`BatchContext`] and adds its
//! **scaled** gradient contribution into the shared logit gradient (terms
//! differentiating through the classifier) and/or the shared feature
//! gradient (terms like MKI that bypass it). The [`Objective`] runs terms
//! in a fixed order and sums losses and unweighted per-sample losses — the
//! latter feed the pruning module's running means, exactly as the old
//! monolithic loop did.
//!
//! Terms own their scratch: batch-assembly buffers travel into the input
//! tensors and are reclaimed via [`Tensor::into_data`] after the term's
//! backward pass (both the PISL soft-target buffer and the MKI knowledge
//! buffer), so steady-state training performs no per-batch target/knowledge
//! allocations — in a data-parallel session each replica clones its own
//! terms and therefore its own scratch.

use super::{MkiConfig, PislConfig, TrainConfig};
use crate::dataset::SelectorDataset;
use crate::mlp::Mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tsnn::loss::{cross_entropy, info_nce, soft_cross_entropy};
use tsnn::{Param, Tensor};

/// Everything a loss term may read about the current (micro-)batch.
pub struct BatchContext<'a> {
    /// The training set (terms look up soft labels / knowledge rows).
    pub dataset: &'a SelectorDataset,
    /// Window indices of this batch, plan order.
    pub indices: &'a [usize],
    /// Pruning gradient-rescale weights, aligned with `indices`.
    pub weights: &'a [f32],
    /// Hard labels, aligned with `indices`.
    pub targets: &'a [usize],
    /// Encoder features `z_T`, shape `(B, D)`.
    pub features: &'a Tensor,
    /// Classifier logits, shape `(B, C)`.
    pub logits: &'a Tensor,
}

/// One term's contribution for one batch.
pub struct TermOutput {
    /// Weighted mean loss, already scaled by the term's coefficient.
    pub loss: f64,
    /// Per-sample losses (unweighted by pruning, scaled by the term's
    /// coefficient), aligned with the batch.
    pub per_sample: Vec<f64>,
}

/// A lazily materialised gradient accumulator: terms that bypass the
/// classifier (MKI) allocate it on first touch, so objectives without
/// such terms never pay a per-batch `(B, D)` zero-fill — the monolithic
/// loop only built the feature gradient inside the MKI branch, and the
/// composable objective keeps that property.
pub struct LazyGrad {
    shape: Vec<usize>,
    grad: Option<Tensor>,
}

impl LazyGrad {
    fn new(shape: &[usize]) -> Self {
        Self {
            shape: shape.to_vec(),
            grad: None,
        }
    }

    /// The accumulator tensor, zero-initialised on first use.
    pub fn get_or_zero(&mut self) -> &mut Tensor {
        self.grad.get_or_insert_with(|| Tensor::zeros(&self.shape))
    }

    fn into_inner(self) -> Option<Tensor> {
        self.grad
    }
}

/// One composable piece of the training objective.
///
/// `Send` so a data-parallel replica can carry its own clone of every term
/// onto a pool worker.
pub trait LossTerm: Send {
    /// Display name (diagnostics, tests).
    fn name(&self) -> &'static str;

    /// Computes this term for one batch, **adding** its scaled gradient
    /// into `grad_logits` (∂/∂ classifier logits) and/or `grad_features`
    /// (∂/∂ encoder features, for terms that bypass the classifier —
    /// touch it through [`LazyGrad::get_or_zero`] only if this term
    /// actually contributes there). Trainable term parameters accumulate
    /// their own gradients here.
    fn accumulate(
        &mut self,
        ctx: &BatchContext<'_>,
        grad_logits: &mut Tensor,
        grad_features: &mut LazyGrad,
    ) -> TermOutput;

    /// Trainable term parameters (stable order), if any.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Read-only view of the trainable parameters, `params_mut()` order.
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// An independent copy for a data-parallel replica: same weights,
    /// fresh activation caches and scratch buffers.
    fn clone_term(&self) -> Box<dyn LossTerm>;
}

/// Hard-label cross-entropy, scaled by `1 − α` under PISL.
pub struct HardCe {
    scale: f32,
}

impl HardCe {
    /// New hard-label term with the given loss scale.
    pub fn new(scale: f32) -> Self {
        Self { scale }
    }
}

impl LossTerm for HardCe {
    fn name(&self) -> &'static str {
        "hard-ce"
    }

    fn accumulate(
        &mut self,
        ctx: &BatchContext<'_>,
        grad_logits: &mut Tensor,
        _grad_features: &mut LazyGrad,
    ) -> TermOutput {
        let ce = cross_entropy(ctx.logits, ctx.targets, Some(ctx.weights));
        let mut g = ce.grad;
        g.scale_(self.scale);
        grad_logits.add_assign(&g);
        TermOutput {
            loss: ce.loss * self.scale as f64,
            per_sample: ce
                .per_sample
                .iter()
                .map(|&l| l * self.scale as f64)
                .collect(),
        }
    }

    fn clone_term(&self) -> Box<dyn LossTerm> {
        Box::new(Self { scale: self.scale })
    }
}

/// The PISL soft-label term: `α ·` soft cross-entropy against
/// `softmax(perf / t_soft)` rows, precomputed once per series and shared
/// (via `Arc`) across data-parallel replicas.
pub struct PislSoft {
    alpha: f32,
    classes: usize,
    soft_by_series: Arc<Vec<Vec<f32>>>,
    /// Scratch for batch soft-target assembly, reclaimed via
    /// [`Tensor::into_data`] each batch.
    soft_buf: Vec<f32>,
}

impl PislSoft {
    /// Precomputes the per-series soft labels from the dataset's
    /// performance rows.
    pub fn new(cfg: PislConfig, dataset: &SelectorDataset) -> Self {
        let soft_by_series: Vec<Vec<f32>> = (0..dataset.n_series())
            .map(|s| softmax_scaled_f32(&dataset.series_perf[s], cfg.t_soft))
            .collect();
        let classes = soft_by_series.first().map_or(0, |r| r.len());
        Self {
            alpha: cfg.alpha,
            classes,
            soft_by_series: Arc::new(soft_by_series),
            soft_buf: Vec::new(),
        }
    }
}

impl LossTerm for PislSoft {
    fn name(&self) -> &'static str {
        "pisl-soft"
    }

    fn accumulate(
        &mut self,
        ctx: &BatchContext<'_>,
        grad_logits: &mut Tensor,
        _grad_features: &mut LazyGrad,
    ) -> TermOutput {
        let b = ctx.indices.len();
        self.soft_buf.clear();
        self.soft_buf.reserve(b * self.classes);
        for &i in ctx.indices {
            self.soft_buf
                .extend_from_slice(&self.soft_by_series[ctx.dataset.series_index[i]]);
        }
        let soft_targets = Tensor::from_vec(&[b, self.classes], std::mem::take(&mut self.soft_buf));
        let out = soft_cross_entropy(ctx.logits, &soft_targets, Some(ctx.weights));
        let mut g = out.grad;
        g.scale_(self.alpha);
        grad_logits.add_assign(&g);
        self.soft_buf = soft_targets.into_data();
        TermOutput {
            loss: self.alpha as f64 * out.loss,
            per_sample: out
                .per_sample
                .iter()
                .map(|&l| self.alpha as f64 * l)
                .collect(),
        }
    }

    fn clone_term(&self) -> Box<dyn LossTerm> {
        Box::new(Self {
            alpha: self.alpha,
            classes: self.classes,
            soft_by_series: Arc::clone(&self.soft_by_series),
            soft_buf: Vec::new(),
        })
    }
}

/// The MKI knowledge-alignment term: `λ · L_InfoNCE` between the projected
/// encoder features and the projected frozen metadata embeddings. Owns the
/// two trainable projection MLPs `h_T` and `h_K`.
pub struct MkiAlign {
    cfg: MkiConfig,
    h_t: Mlp,
    h_k: Mlp,
    /// Scratch for batch knowledge assembly, reclaimed via
    /// [`Tensor::into_data`] each batch (the same discipline as the PISL
    /// soft-target buffer — no per-batch allocation).
    know_buf: Vec<f32>,
}

impl MkiAlign {
    /// Builds the projections with the trainer's canonical MKI seed
    /// derivation (`seed ^ 0x17E`, `h_T` drawn before `h_K`).
    pub fn new(cfg: MkiConfig, feature_dim: usize, text_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x17E);
        let h_t = Mlp::new(feature_dim, cfg.hidden, cfg.proj_dim, &mut rng);
        let h_k = Mlp::new(text_dim, cfg.hidden, cfg.proj_dim, &mut rng);
        Self {
            cfg,
            h_t,
            h_k,
            know_buf: Vec::new(),
        }
    }
}

impl LossTerm for MkiAlign {
    fn name(&self) -> &'static str {
        "mki-align"
    }

    fn accumulate(
        &mut self,
        ctx: &BatchContext<'_>,
        _grad_logits: &mut Tensor,
        grad_features: &mut LazyGrad,
    ) -> TermOutput {
        let b = ctx.indices.len();
        let text_dim = ctx.dataset.text_dim;
        self.know_buf.clear();
        self.know_buf.reserve(b * text_dim);
        for &i in ctx.indices {
            self.know_buf.extend_from_slice(ctx.dataset.knowledge(i));
        }
        let z_k = Tensor::from_vec(&[b, text_dim], std::mem::take(&mut self.know_buf));
        let zt_proj = self.h_t.forward(ctx.features, true);
        let zk_proj = self.h_k.forward(&z_k, true);
        let (nce_loss, nce_per_sample, mut g_zt_proj, mut g_zk_proj) =
            info_nce(&zt_proj, &zk_proj, self.cfg.temperature, Some(ctx.weights));
        g_zt_proj.scale_(self.cfg.lambda);
        g_zk_proj.scale_(self.cfg.lambda);
        let g_from_mki = self.h_t.backward(&g_zt_proj);
        let _ = self.h_k.backward(&g_zk_proj); // z_K is a frozen input
        grad_features.get_or_zero().add_assign(&g_from_mki);
        self.know_buf = z_k.into_data();
        TermOutput {
            loss: self.cfg.lambda as f64 * nce_loss,
            per_sample: nce_per_sample
                .iter()
                .map(|&l| self.cfg.lambda as f64 * l)
                .collect(),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.h_t.params_mut();
        p.extend(self.h_k.params_mut());
        p
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = self.h_t.params();
        p.extend(self.h_k.params());
        p
    }

    fn clone_term(&self) -> Box<dyn LossTerm> {
        Box::new(Self {
            cfg: self.cfg,
            h_t: self.h_t.clone(),
            h_k: self.h_k.clone(),
            know_buf: Vec::new(),
        })
    }
}

/// The combined result of one objective evaluation.
pub struct ObjectiveOutput {
    /// Weighted mean loss over the batch, all terms summed.
    pub loss: f64,
    /// Per-sample losses (term-scaled, pruning-unweighted) — what the
    /// pruning module's running means record.
    pub per_sample: Vec<f64>,
    /// ∂loss/∂logits, ready for the classifier's backward pass.
    pub grad_logits: Tensor,
    /// ∂loss/∂features from terms that bypass the classifier (added to the
    /// classifier's input gradient before the encoder backward). `None`
    /// when no term touched the features — no allocation was paid.
    pub grad_features: Option<Tensor>,
}

/// An ordered composition of [`LossTerm`]s owning the gradient
/// accumulation that the monolithic trainer used to hard-wire inline.
pub struct Objective {
    terms: Vec<Box<dyn LossTerm>>,
}

impl Objective {
    /// Builds the paper's objective from a training configuration:
    /// hard CE (scaled by `1 − α` when PISL is on), then PISL, then MKI.
    pub fn from_config(cfg: &TrainConfig, dataset: &SelectorDataset, feature_dim: usize) -> Self {
        let mut terms: Vec<Box<dyn LossTerm>> = Vec::new();
        let hard_scale = cfg.pisl.map_or(1.0, |p| 1.0 - p.alpha);
        terms.push(Box::new(HardCe::new(hard_scale)));
        if let Some(pisl) = cfg.pisl {
            terms.push(Box::new(PislSoft::new(pisl, dataset)));
        }
        if let Some(mki) = cfg.mki {
            terms.push(Box::new(MkiAlign::new(
                mki,
                feature_dim,
                dataset.text_dim,
                cfg.seed,
            )));
        }
        Self { terms }
    }

    /// An objective over explicit terms (composability hook for custom
    /// selector-learning experiments).
    pub fn from_terms(terms: Vec<Box<dyn LossTerm>>) -> Self {
        Self { terms }
    }

    /// The term names, composition order.
    pub fn term_names(&self) -> Vec<&'static str> {
        self.terms.iter().map(|t| t.name()).collect()
    }

    /// Runs every term over the batch in order, accumulating the logit and
    /// feature gradients and summing losses.
    pub fn accumulate(&mut self, ctx: &BatchContext<'_>) -> ObjectiveOutput {
        let b = ctx.indices.len();
        let mut grad_logits = Tensor::zeros(ctx.logits.shape());
        let mut grad_features = LazyGrad::new(ctx.features.shape());
        let mut loss = 0.0f64;
        let mut per_sample = vec![0.0f64; b];
        for term in &mut self.terms {
            let out = term.accumulate(ctx, &mut grad_logits, &mut grad_features);
            debug_assert_eq!(out.per_sample.len(), b, "{} per-sample length", term.name());
            loss += out.loss;
            for (acc, &l) in per_sample.iter_mut().zip(&out.per_sample) {
                *acc += l;
            }
        }
        ObjectiveOutput {
            loss,
            per_sample,
            grad_logits,
            grad_features: grad_features.into_inner(),
        }
    }

    /// Trainable parameters of every term, composition order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = Vec::new();
        for term in &mut self.terms {
            p.extend(term.params_mut());
        }
        p
    }

    /// Read-only view of the trainable parameters, `params_mut()` order.
    pub fn params(&self) -> Vec<&Param> {
        let mut p = Vec::new();
        for term in &self.terms {
            p.extend(term.params());
        }
        p
    }

    /// An independent copy for a data-parallel replica (same weights, fresh
    /// caches and scratch).
    pub fn for_replica(&self) -> Objective {
        Objective {
            terms: self.terms.iter().map(|t| t.clone_term()).collect(),
        }
    }
}

/// Zero-bug duplicate of the dataset's softmax (kept local to avoid
/// exposing an f32 variant publicly).
fn softmax_scaled_f32(row: &[f64], t: f64) -> Vec<f32> {
    let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = row.iter().map(|&v| ((v - max) / t).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| (e / sum) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::testutil;

    fn toy_dataset() -> SelectorDataset {
        testutil::toy_dataset(4, 32, |i| i)
    }

    fn probe_batch(ds: &SelectorDataset, b: usize) -> (Vec<usize>, Vec<f32>, Vec<usize>) {
        let indices: Vec<usize> = (0..b).collect();
        let weights = vec![1.0f32; b];
        let targets: Vec<usize> = indices.iter().map(|&i| ds.hard_labels[i]).collect();
        (indices, weights, targets)
    }

    #[test]
    fn hard_only_objective_matches_plain_cross_entropy() {
        let ds = toy_dataset();
        let cfg = TrainConfig::default();
        let (indices, weights, targets) = probe_batch(&ds, 4);
        let features = Tensor::from_vec(&[4, 3], (0..12).map(|i| i as f32 * 0.1).collect());
        let logits = Tensor::from_vec(&[4, 12], (0..48).map(|i| (i % 7) as f32 * 0.2).collect());
        let mut obj = Objective::from_config(&cfg, &ds, 3);
        assert_eq!(obj.term_names(), vec!["hard-ce"]);
        let ctx = BatchContext {
            dataset: &ds,
            indices: &indices,
            weights: &weights,
            targets: &targets,
            features: &features,
            logits: &logits,
        };
        let out = obj.accumulate(&ctx);
        let reference = cross_entropy(&logits, &targets, Some(&weights));
        assert_eq!(out.loss, reference.loss);
        assert_eq!(out.per_sample, reference.per_sample);
        assert_eq!(out.grad_logits.data(), reference.grad.data());
        assert!(
            out.grad_features.is_none(),
            "no term touched the features, so no gradient is allocated"
        );
    }

    #[test]
    fn full_objective_composes_all_three_terms() {
        let ds = toy_dataset();
        let cfg = TrainConfig {
            pisl: Some(PislConfig::default()),
            mki: Some(MkiConfig {
                hidden: 16,
                proj_dim: 8,
                ..MkiConfig::default()
            }),
            ..TrainConfig::default()
        };
        let mut obj = Objective::from_config(&cfg, &ds, 6);
        assert_eq!(obj.term_names(), vec!["hard-ce", "pisl-soft", "mki-align"]);
        // MKI owns two MLPs: 4 linear layers, 8 params.
        assert_eq!(obj.params().len(), 8);
        assert_eq!(obj.params_mut().len(), 8);

        let (indices, weights, targets) = probe_batch(&ds, 4);
        let features = Tensor::from_vec(&[4, 6], (0..24).map(|i| (i % 5) as f32 * 0.3).collect());
        let logits = Tensor::from_vec(&[4, 12], (0..48).map(|i| (i % 9) as f32 * 0.1).collect());
        let ctx = BatchContext {
            dataset: &ds,
            indices: &indices,
            weights: &weights,
            targets: &targets,
            features: &features,
            logits: &logits,
        };
        let out = obj.accumulate(&ctx);
        assert!(out.loss.is_finite() && out.loss > 0.0);
        assert_eq!(out.per_sample.len(), 4);
        // MKI must route gradient into the features, PISL+CE into logits.
        let gf = out.grad_features.expect("MKI touched the features");
        assert!(gf.data().iter().any(|&v| v != 0.0));
        assert!(out.grad_logits.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn replica_clone_computes_identically_and_independently() {
        let ds = toy_dataset();
        let cfg = TrainConfig {
            pisl: Some(PislConfig::default()),
            mki: Some(MkiConfig {
                hidden: 16,
                proj_dim: 8,
                ..MkiConfig::default()
            }),
            ..TrainConfig::default()
        };
        let mut master = Objective::from_config(&cfg, &ds, 6);
        let mut replica = master.for_replica();
        let (indices, weights, targets) = probe_batch(&ds, 3);
        let features = Tensor::from_vec(&[3, 6], (0..18).map(|i| (i % 4) as f32 * 0.2).collect());
        let logits = Tensor::from_vec(&[3, 12], (0..36).map(|i| (i % 6) as f32 * 0.1).collect());
        let ctx = BatchContext {
            dataset: &ds,
            indices: &indices,
            weights: &weights,
            targets: &targets,
            features: &features,
            logits: &logits,
        };
        let a = master.accumulate(&ctx);
        let b = replica.accumulate(&ctx);
        assert_eq!(a.loss, b.loss);
        assert_eq!(a.per_sample, b.per_sample);
        assert_eq!(a.grad_logits.data(), b.grad_logits.data());
        assert_eq!(
            a.grad_features.as_ref().map(|t| t.data().to_vec()),
            b.grad_features.as_ref().map(|t| t.data().to_vec())
        );
        // Replica gradients accumulate on the replica's own parameters.
        for (mp, rp) in master.params().iter().zip(replica.params()) {
            assert_eq!(mp.grad.data(), rp.grad.data());
        }
    }
}
