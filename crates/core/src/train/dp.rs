//! Deterministic data-parallel gradient accumulation.
//!
//! Each minibatch is split into `cfg.replicas` **fixed micro-partitions**
//! ([`micro_partitions`]): contiguous index ranges whose boundaries depend
//! only on the batch size and the replica count — never on `KD_THREADS`,
//! the execution backend, or which worker runs what. Every replica owns a
//! full clone of the model (encoder, classifier, objective terms) and runs
//! forward/backward over its partition; the fan-out executes on
//! [`tspar`]'s persistent worker pool via `par_chunks_mut` (one replica
//! per chunk, so each replica is touched by exactly one executor).
//!
//! Reduction is **ordered**: replica gradients fold into the master model
//! in partition order `0, 1, …, R−1`, each scaled by its partition's share
//! of the batch (`b_r / b`, converting the replica's micro-batch mean into
//! the batch mean), and batch-norm running statistics average over the
//! participating replicas in the same fixed order. Floating-point
//! summation order is therefore a function of the *configuration*, not the
//! schedule, which makes training bitwise-identical at any thread count:
//!
//! * `KD_THREADS=1` runs the partitions serially, in order;
//! * `KD_THREADS=N` runs them on pool workers;
//! * both produce the same per-replica results (each replica's compute is
//!   independent and the kernels are themselves scheduling-deterministic),
//!   and the ordered reduction consumes them identically.
//!
//! What the replica count *does* change is the objective itself: batch
//! normalisation and the InfoNCE contrastive term see micro-batches of
//! `b/R` samples instead of the full minibatch, so `replicas: 2` is a
//! (deterministically) different training run than `replicas: 1` — the
//! same trade every synchronous data-parallel trainer makes.

use super::session::{StepOutput, TrainerCore};
use super::TrainConfig;
use crate::dataset::SelectorDataset;
use std::ops::Range;

/// The fixed micro-partition boundaries for a batch of `batch` samples
/// over `replicas` replicas: `replicas` contiguous ranges of
/// `ceil(batch / replicas)` samples (the tail ones possibly short or
/// empty). Depends only on the two arguments.
pub fn micro_partitions(batch: usize, replicas: usize) -> Vec<Range<usize>> {
    let r = replicas.max(1);
    let chunk = batch.div_ceil(r).max(1);
    (0..r)
        .map(|i| (i * chunk).min(batch)..((i + 1) * chunk).min(batch))
        .collect()
}

/// One replica: a full model clone plus the slot its step output lands in
/// (written by the executor that runs the replica, read back in partition
/// order by the reduction).
struct Replica {
    core: TrainerCore,
    out: Option<StepOutput>,
}

/// The session's data-parallel replica set.
pub struct ReplicaSet {
    replicas: Vec<Replica>,
}

impl ReplicaSet {
    /// Clones the master core `cfg.replicas` times.
    pub(crate) fn new(master: &TrainerCore, cfg: &TrainConfig) -> Self {
        Self {
            replicas: (0..cfg.replicas.max(1))
                .map(|_| Replica {
                    core: master.replicate(cfg),
                    out: None,
                })
                .collect(),
        }
    }

    /// Replica count.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the set holds no replicas (never true for a set built by a
    /// session).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// One data-parallel training step: broadcast the master weights, run
    /// every replica over its fixed micro-partition, reduce gradients and
    /// running statistics into the master in partition order. The caller
    /// (the session) then clips and applies the optimizer step on the
    /// master.
    pub(crate) fn step(
        &mut self,
        master: &mut TrainerCore,
        dataset: &SelectorDataset,
        indices: &[usize],
        weights: &[f32],
    ) -> StepOutput {
        let b = indices.len();
        debug_assert!(b > 0, "empty minibatch");
        let parts = micro_partitions(b, self.replicas.len());

        // 1. Broadcast: every replica starts the step on the master's
        //    post-optimizer weights and buffers.
        for rep in &mut self.replicas {
            rep.core.sync_from(master);
            rep.out = None;
        }

        // 2. Fan out: one replica per chunk, so partition `r` runs on
        //    replica `r` wherever the pool schedules it. Nested parallel
        //    regions inside a replica's kernels run inline on the executor
        //    (tspar's worker rule), so the machine is never oversubscribed.
        tspar::par_chunks_mut(&mut self.replicas, 1, |ri, chunk| {
            let span = parts[ri].clone();
            if span.is_empty() {
                return;
            }
            let rep = &mut chunk[0];
            rep.out = Some(
                rep.core
                    .run_batch(dataset, &indices[span.clone()], &weights[span]),
            );
        });

        // 3. Ordered reduction. Scaling by `b_r / b` converts each
        //    replica's micro-batch-mean gradients and loss into the batch
        //    mean; per-sample losses concatenate back into batch order
        //    because partitions are contiguous.
        master.zero_grads();
        let mut loss = 0.0f64;
        let mut per_sample = Vec::with_capacity(b);
        let mut correct = 0usize;
        {
            let mut master_params = master.params_mut();
            for (ri, rep) in self.replicas.iter_mut().enumerate() {
                let Some(out) = rep.out.take() else { continue };
                let scale = parts[ri].len() as f32 / b as f32;
                for (mp, rp) in master_params.iter_mut().zip(rep.core.params()) {
                    axpy(mp.grad.data_mut(), rp.grad.data(), scale);
                }
                loss += f64::from(scale) * out.loss;
                per_sample.extend(out.per_sample);
                correct += out.correct;
            }
        }
        debug_assert_eq!(per_sample.len(), b);

        // 4. Batch-norm running statistics: average the participating
        //    replicas' buffers into the master, fixed order. (A replica
        //    with an empty partition never ran a forward pass, so its
        //    buffers still equal the master's pre-step state and are
        //    excluded.)
        let active = parts.iter().filter(|p| !p.is_empty()).count().max(1);
        {
            let mut master_buffers = master.buffers_mut();
            for buf in master_buffers.iter_mut() {
                buf.iter_mut().for_each(|v| *v = 0.0);
            }
            for (ri, rep) in self.replicas.iter().enumerate() {
                if parts[ri].is_empty() {
                    continue;
                }
                for (dst, src) in master_buffers.iter_mut().zip(rep.core.buffers()) {
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
            }
            let inv = 1.0 / active as f32;
            for buf in master_buffers.iter_mut() {
                buf.iter_mut().for_each(|v| *v *= inv);
            }
        }

        StepOutput {
            loss,
            per_sample,
            correct,
        }
    }
}

/// `dst += a * src`, elementwise.
fn axpy(dst: &mut [f32], src: &[f32], a: f32) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += a * s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_the_batch_contiguously() {
        for (b, r) in [(64, 4), (50, 4), (7, 3), (16, 1), (3, 8), (1, 2)] {
            let parts = micro_partitions(b, r);
            assert_eq!(parts.len(), r.max(1), "b={b} r={r}");
            let mut expect = 0usize;
            for p in &parts {
                assert_eq!(p.start, expect.min(b), "b={b} r={r}");
                assert!(p.end <= b);
                expect = expect.max(p.end);
            }
            assert_eq!(expect, b, "partitions must cover the batch");
            let total: usize = parts.iter().map(|p| p.len()).sum();
            assert_eq!(total, b);
        }
    }

    #[test]
    fn partitions_depend_only_on_shape() {
        // The determinism contract in one line: the split never consults
        // thread counts or any global state.
        assert_eq!(micro_partitions(10, 4), micro_partitions(10, 4));
        assert_eq!(
            micro_partitions(10, 4),
            vec![0..3, 3..6, 6..9, 9..10],
            "10 samples over 4 replicas: 3/3/3/1"
        );
        assert_eq!(
            micro_partitions(2, 4),
            vec![0..1, 1..2, 2..2, 2..2],
            "tiny batches leave tail replicas idle"
        );
    }
}
