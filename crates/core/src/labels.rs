//! Historical-data label generation.
//!
//! The "historical data" of the paper is a set of series together with the
//! detection performance of every TSAD model on each of them. This module
//! materialises it: every detector in the model set runs on every series and
//! is scored with point-wise AUC-PR against the ground truth — exactly the
//! procedure of the benchmark paper [8].
//!
//! Running 12 detectors over hundreds of series is the most expensive step
//! of every experiment, so the resulting [`PerfMatrix`] is cached on disk
//! (JSON, keyed by the benchmark fingerprint) and shared by all tables.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use tsad_models::{default_model_set, ModelId};
use tsdata::TimeSeries;
use tsmetrics::auc_pr;

/// AUC-PR of every model on every series.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PerfMatrix {
    /// Series identifiers, aligned with `rows`.
    pub series_ids: Vec<String>,
    /// `rows[series][model]` = AUC-PR of `ModelId::from_index(model)`.
    pub rows: Vec<Vec<f64>>,
}

impl PerfMatrix {
    /// Number of series.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The performance row of a series.
    pub fn row(&self, series: usize) -> &[f64] {
        &self.rows[series]
    }

    /// Hard label: the best model for a series.
    pub fn best_model(&self, series: usize) -> ModelId {
        let row = &self.rows[series];
        let best = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        ModelId::from_index(best)
    }

    /// AUC-PR achieved on a series when `model` is selected for it.
    pub fn perf_of(&self, series: usize, model: ModelId) -> f64 {
        self.rows[series][model.index()]
    }

    /// Mean AUC-PR of the oracle (always picks the best model).
    pub fn oracle_mean(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let total: f64 = (0..self.len())
            .map(|i| self.perf_of(i, self.best_model(i)))
            .sum();
        total / self.len() as f64
    }
}

/// Computes the performance matrix for a set of series, running all 12
/// detectors on each. Series are scored on the shared [`tspar`] pool (one
/// task per series, dealt round-robin across all configured workers), so
/// the full model set saturates every core instead of the previous
/// hard-coded cap of 4 threads.
pub fn compute_perf_matrix(series: &[TimeSeries], seed: u64) -> PerfMatrix {
    let rows = tspar::par_map(series.len(), |i| score_series(&series[i], seed));
    PerfMatrix {
        series_ids: series.iter().map(|s| s.id.clone()).collect(),
        rows,
    }
}

/// Runs the full model set on one series and scores each with AUC-PR.
pub fn score_series(ts: &TimeSeries, seed: u64) -> Vec<f64> {
    let labels = ts.point_labels();
    default_model_set(seed)
        .iter()
        .map(|detector| {
            let scores = detector.score(&ts.values);
            if scores.len() != labels.len() {
                return 0.0;
            }
            auc_pr(&scores, &labels)
        })
        .collect()
}

/// Loads a cached matrix or computes and stores it.
///
/// The cache key combines the benchmark fingerprint with the split name, so
/// train/test matrices of the same benchmark do not collide.
pub fn cached_perf_matrix(
    cache_dir: &Path,
    key: &str,
    series: &[TimeSeries],
    seed: u64,
) -> std::io::Result<PerfMatrix> {
    let path = cache_path(cache_dir, key);
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(matrix) = serde_json::from_slice::<PerfMatrix>(&bytes) {
            if matrix.len() == series.len()
                && matrix
                    .series_ids
                    .iter()
                    .zip(series)
                    .all(|(id, s)| *id == s.id)
            {
                return Ok(matrix);
            }
        }
    }
    let matrix = compute_perf_matrix(series, seed);
    std::fs::create_dir_all(cache_dir)?;
    std::fs::write(&path, serde_json::to_vec(&matrix)?)?;
    Ok(matrix)
}

fn cache_path(cache_dir: &Path, key: &str) -> PathBuf {
    cache_dir.join(format!("{key}.json"))
}

/// Default on-disk cache directory (under `target/` so `cargo clean` clears
/// it). Overridable with the `KDSEL_CACHE_DIR` environment variable.
pub fn default_cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("KDSEL_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from("target/kdsel-cache")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdata::{Benchmark, BenchmarkConfig};

    fn tiny_series() -> Vec<TimeSeries> {
        let mut cfg = BenchmarkConfig::tiny();
        cfg.series_length = 300;
        let b = Benchmark::generate(cfg);
        b.train.into_iter().take(3).collect()
    }

    #[test]
    fn perf_matrix_has_twelve_columns_of_valid_aucs() {
        let series = tiny_series();
        let m = compute_perf_matrix(&series, 1);
        assert_eq!(m.len(), 3);
        for row in &m.rows {
            assert_eq!(row.len(), 12);
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)), "{row:?}");
        }
    }

    #[test]
    fn best_model_is_argmax() {
        let m = PerfMatrix {
            series_ids: vec!["a".into()],
            rows: vec![vec![
                0.1, 0.9, 0.2, 0.3, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ]],
        };
        assert_eq!(m.best_model(0), ModelId::IForest1);
        assert!((m.perf_of(0, ModelId::IForest1) - 0.9).abs() < 1e-12);
        assert!((m.oracle_mean() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn cache_round_trips_and_validates_ids() {
        let series = tiny_series();
        let dir = std::env::temp_dir().join(format!("kdsel-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = cached_perf_matrix(&dir, "t1", &series, 1).unwrap();
        // Second call must hit the cache and agree exactly.
        let b = cached_perf_matrix(&dir, "t1", &series, 1).unwrap();
        assert_eq!(a, b);
        // A different series set under the same key recomputes.
        let other = vec![series[0].clone()];
        let c = cached_perf_matrix(&dir, "t1", &other, 1).unwrap();
        assert_eq!(c.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let series = tiny_series();
        let parallel = compute_perf_matrix(&series, 2);
        let serial: Vec<Vec<f64>> = series.iter().map(|ts| score_series(ts, 2)).collect();
        assert_eq!(parallel.rows, serial);
    }
}
