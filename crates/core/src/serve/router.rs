//! The supervised sharded serving tier.
//!
//! [`ShardedRouter`] places selectors on N shard workers — each its own
//! [`super::SelectorEngine`] + [`super::ServeQueue`] (see
//! [`super::shard`]) — by consistent hashing over a virtual-node ring
//! ([`HashRing`]), and wraps every request in a failure policy:
//!
//! * **Supervision.** A supervisor thread probes each shard on a fixed
//!   interval: a worker that *died* (panic escaped the group guard) or
//!   *wedged* (heartbeat stagnant across consecutive probes while work is
//!   pending or in flight) is respawned — fresh engine, selectors
//!   re-registered from their [`super::shard::SelectorSpec`]s, the dead
//!   worker's admitted backlog transplanted in FIFO order. Saved selectors
//!   round-trip bitwise through the store, so a respawned shard serves
//!   bit-identical `Selection`s.
//! * **Lifecycle policy.** Every request runs under a deadline budget
//!   ([`RouterConfig::deadline`], overridable per request). Transient
//!   failures — overload, injected rejection, worker death, selector
//!   panics — are retried up to [`super::policy::RetryPolicy::max_retries`]
//!   times with deterministic jittered backoff. A per-(shard, selector)
//!   [`super::policy::Breaker`] trips after consecutive failures and
//!   half-opens on an arrival-count probe schedule.
//! * **Degraded fallback.** When the breaker sheds a request, retries are
//!   exhausted, or the deadline expires, the router serves the request
//!   inline through a registered fallback selector (typically a cheap
//!   `nonnn` baseline) and marks each [`Selection::degraded`] — a
//!   best-effort answer instead of an error. Without a fallback the
//!   request fails with a typed [`RouteError`]; it never hangs: every
//!   wait is bounded by the deadline.
//!
//! Shards are *in-process*: the tier models the control plane of a
//! distributed selector-serving service (placement, supervision, failure
//! policy) on threads, keeping the whole failure matrix deterministic and
//! testable via [`super::fault::FaultPlan`].

use super::fault::FaultInjector;
use super::policy::{Breaker, BreakerConfig, BreakerVerdict, RetryPolicy};
use super::queue::{QueueConfig, QueueStats};
use super::shard::{SelectorSpec, Shard};
use super::{SelectRequest, Selection, ServeError};
use crate::hash::{fnv1a_mix, fnv1a_str, splitmix64};
use crate::manage::SelectorStore;
use crate::selector::Selector;
use crate::train::TrainedSelector;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
// kdlint: allow(wallclock): the router's clock use is deadline budgeting
// only — each site below carries its own annotation.
use std::time::{Duration, Instant};
use tsdata::WindowConfig;

/// A consistent-hash ring over `shards` shards with `vnodes` virtual
/// nodes per shard.
///
/// Placement is the classic successor rule: hash the key, walk clockwise
/// to the first virtual node, take its shard. Virtual nodes smooth the
/// load split (more vnodes → tighter balance), and consistency bounds
/// churn: growing the ring from N to N+1 shards only relocates keys whose
/// successor became one of the new shard's vnodes — an expected 1/(N+1)
/// of them — and never moves a key between two old shards
/// (`tests/router_placement.rs` pins both properties).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(vnode hash, shard)` sorted by hash (shard index tie-breaks equal
    /// hashes so placement is deterministic even under collisions).
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// A ring over `shards` shards (at least 1) with `vnodes` virtual
    /// nodes each (at least 1).
    pub fn new(shards: usize, vnodes: usize) -> Self {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                // FNV concentrates short-string entropy in the low bits;
                // the ring partitions by the full word, so avalanche
                // through splitmix64 before placing the point.
                let mut h = fnv1a_str(&format!("shard-{shard}"));
                fnv1a_mix(&mut h, v as u64);
                points.push((splitmix64(h), shard));
            }
        }
        points.sort_unstable();
        Self { points, shards }
    }

    /// The shard a selector name is placed on.
    pub fn place(&self, name: &str) -> usize {
        let key = splitmix64(fnv1a_str(name));
        let idx = self.points.partition_point(|&(h, _)| h < key);
        // Successor with wraparound.
        self.points[if idx == self.points.len() { 0 } else { idx }].1
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

/// Configuration for a [`ShardedRouter`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of shard workers.
    pub shards: usize,
    /// Virtual nodes per shard on the placement ring.
    pub vnodes: usize,
    /// Per-shard queue configuration.
    pub queue: QueueConfig,
    /// Per-shard window-cache capacity (`0` disables the cache).
    pub cache_capacity: usize,
    /// Retry/backoff policy for transient failures.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds, per (shard, selector).
    pub breaker: BreakerConfig,
    /// Default per-request deadline. **Mandatory** (not optional): every
    /// wait inside the router is bounded by it, which is what turns "a
    /// shard stalled" into a degraded answer instead of a hung caller.
    pub deadline: Duration,
    /// Supervisor probe interval.
    pub supervise_every: Duration,
    /// Consecutive stagnant-heartbeat probes (with work pending) before a
    /// worker is declared wedged and respawned.
    pub wedge_checks: u32,
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            vnodes: 64,
            queue: QueueConfig::default(),
            cache_capacity: 256,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            deadline: Duration::from_secs(5),
            supervise_every: Duration::from_millis(10),
            wedge_checks: 3,
            seed: 0,
        }
    }
}

/// Per-request routing options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteOptions {
    /// Overrides [`RouterConfig::deadline`] for this request.
    pub deadline: Option<Duration>,
}

/// A served route: the selections plus how they were obtained.
#[derive(Debug, Clone)]
pub struct RouteReply {
    /// One [`Selection`] per submitted series, in request order.
    pub selections: Vec<Selection>,
    /// The shard that served the request; `None` when the fallback served
    /// it inline.
    pub shard: Option<usize>,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Whether the fallback served (every selection is then marked
    /// [`Selection::degraded`]).
    pub degraded: bool,
}

/// Terminal routing failures. Transient shard errors are retried and
/// degraded internally; what escapes is typed and final — a router call
/// **never hangs**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// No selector registered under this name anywhere on the tier.
    UnknownSelector(String),
    /// The deadline expired before any attempt succeeded, and no fallback
    /// selector is registered.
    DeadlineExceeded {
        /// Attempts that ran before the budget was exhausted.
        attempts: u32,
    },
    /// Retries exhausted without success, and no fallback is registered.
    Exhausted {
        /// Attempts that ran.
        attempts: u32,
        /// The final attempt's error.
        last: ServeError,
    },
    /// The circuit breaker for the selector's shard is open (the request
    /// was shed without an attempt), and no fallback is registered.
    BreakerOpen,
    /// The router is shutting down.
    ShuttingDown,
    /// The fallback selector itself failed (panicked) while serving a
    /// degraded request.
    FallbackFailed(String),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnknownSelector(name) => {
                write!(f, "no selector registered under {name:?} on any shard")
            }
            RouteError::DeadlineExceeded { attempts } => {
                write!(f, "deadline exceeded after {attempts} attempt(s)")
            }
            RouteError::Exhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempt(s): {last}")
            }
            RouteError::BreakerOpen => {
                write!(f, "circuit breaker open and no fallback is registered")
            }
            RouteError::ShuttingDown => write!(f, "router is shutting down"),
            RouteError::FallbackFailed(msg) => {
                write!(f, "fallback selector failed: {msg}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Why an inline fallback attempt produced no reply.
enum DegradeFailure {
    NoFallback,
    FallbackPanicked(String),
}

/// One shard's health view in [`RouterStats`].
#[derive(Debug, Clone)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Whether the current worker generation is alive.
    pub alive: bool,
    /// Pending requests on the live queue.
    pub depth: usize,
    /// Worker generation (0 = never respawned).
    pub generation: u64,
    /// Respawns performed by the supervisor (== generation).
    pub respawns: u64,
    /// Lifetime queue counters across all generations.
    pub queue: QueueStats,
    /// Selector names placed on this shard.
    pub selectors: Vec<String>,
    /// Open circuit breakers on this shard.
    pub breakers_open: usize,
}

/// Cross-shard router statistics.
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// Requests routed (every `route` call that reached the attempt loop).
    pub routed: u64,
    /// Requests answered by the degraded fallback.
    pub degraded: u64,
    /// Requests that escaped with a terminal [`RouteError`].
    pub failed: u64,
    /// Retry attempts beyond first tries.
    pub retries: u64,
    /// Per-shard health.
    pub shards: Vec<ShardHealth>,
}

/// The supervised sharded serving tier. See the module docs.
///
/// Construction returns an `Arc` because the supervisor thread holds a
/// `Weak` reference to the router; dropping every `Arc` (or calling
/// [`ShardedRouter::shutdown`]) stops it.
pub struct ShardedRouter {
    config: RouterConfig,
    ring: HashRing,
    shards: Vec<Shard>,
    /// Authoritative name → spec map (a selector exists on the tier iff
    /// it is here); shards hold per-shard copies for respawn.
    specs: Mutex<BTreeMap<String, SelectorSpec>>,
    /// Placement overrides from [`ShardedRouter::migrate`], consulted
    /// before the ring.
    overrides: Mutex<BTreeMap<String, usize>>,
    fallback: Mutex<Option<Arc<dyn Selector>>>,
    /// `BTreeMap` so `stats()` aggregates in deterministic key order.
    breakers: Mutex<BTreeMap<(usize, String), Breaker>>,
    routed: AtomicU64,
    degraded: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    shutdown: AtomicBool,
    supervisor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ShardedRouter {
    /// Starts a tier with no fault injection.
    pub fn new(config: RouterConfig) -> Arc<Self> {
        Self::build(config, None)
    }

    /// Starts a tier whose shards consult `injector` at every
    /// [`super::fault::FaultPoint`] — the deterministic fault-injection
    /// entry for tests and drills.
    pub fn with_fault_injection(
        config: RouterConfig,
        injector: Arc<dyn FaultInjector>,
    ) -> Arc<Self> {
        Self::build(config, Some(injector))
    }

    fn build(mut config: RouterConfig, injector: Option<Arc<dyn FaultInjector>>) -> Arc<Self> {
        config.shards = config.shards.max(1);
        config.vnodes = config.vnodes.max(1);
        config.wedge_checks = config.wedge_checks.max(1);
        let ring = HashRing::new(config.shards, config.vnodes);
        let shards = (0..config.shards)
            .map(|i| {
                Shard::new(
                    i,
                    config.queue,
                    config.cache_capacity,
                    injector.as_ref().map(Arc::clone),
                )
            })
            .collect();
        let router = Arc::new(Self {
            ring,
            shards,
            specs: Mutex::new(BTreeMap::new()),
            overrides: Mutex::new(BTreeMap::new()),
            fallback: Mutex::new(None),
            breakers: Mutex::new(BTreeMap::new()),
            routed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            supervisor: Mutex::new(None),
            config,
        });
        let supervisor = {
            let weak = Arc::downgrade(&router);
            std::thread::Builder::new()
                .name("kdsel-router-supervisor".into())
                .spawn(move || supervisor_loop(weak))
                .expect("spawn supervisor thread")
        };
        *router.supervisor.lock().unwrap() = Some(supervisor);
        router
    }

    /// The router's configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Registers a store-backed selector on its ring-placed shard. The
    /// spec (store + window) is kept so supervision can re-register the
    /// selector after worker death — registered state survives as long as
    /// the store does.
    ///
    /// # Errors
    /// Store I/O / missing selector / window-length mismatch, exactly as
    /// [`super::SelectorEngine::load`] reports them.
    pub fn register_from_store(
        &self,
        store: &SelectorStore,
        name: &str,
        window: WindowConfig,
    ) -> std::io::Result<()> {
        if !store.contains(name) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("selector {name:?} is not saved in the store"),
            ));
        }
        let spec = SelectorSpec::Stored {
            store: store.clone(),
            window,
        };
        self.place_spec(name, spec)
    }

    /// Registers an in-memory selector (shared by handle) on its
    /// ring-placed shard. The handle survives respawn through the spec.
    pub fn register(&self, name: &str, selector: Arc<dyn Selector>) -> std::io::Result<()> {
        self.place_spec(name, SelectorSpec::Inline { selector })
    }

    /// Deploys a freshly trained selector onto its ring-placed shard (the
    /// in-memory analogue of [`ShardedRouter::register_from_store`],
    /// validating the window length like
    /// [`super::SelectorEngine::deploy`]).
    pub fn deploy(
        &self,
        name: &str,
        model: TrainedSelector,
        window: WindowConfig,
    ) -> std::io::Result<()> {
        if model.window != window.length {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "selector {name:?} was trained with window length {}, \
                     but the serving WindowConfig has length {}",
                    model.window, window.length
                ),
            ));
        }
        let selector: Arc<dyn Selector> = Arc::new(crate::selector::NnSelector::new(
            name.to_string(),
            model,
            window,
        ));
        self.register(name, selector)
    }

    fn place_spec(&self, name: &str, spec: SelectorSpec) -> std::io::Result<()> {
        let shard = self.shard_of_inner(name);
        self.shards[shard].register(name, spec.clone())?;
        self.specs.lock().unwrap().insert(name.to_string(), spec);
        Ok(())
    }

    /// Installs the degraded-mode fallback selector. It is served inline
    /// by the routing thread (no queue, no shard — it must stay available
    /// when shards aren't), so keep it cheap: a `nonnn` baseline, not a
    /// deep model.
    pub fn set_fallback(&self, selector: Arc<dyn Selector>) {
        *self.fallback.lock().unwrap() = Some(selector);
    }

    /// Removes a selector from the tier; returns whether it was
    /// registered.
    pub fn unregister(&self, name: &str) -> bool {
        let known = self.specs.lock().unwrap().remove(name).is_some();
        if known {
            let shard = self.shard_of_inner(name);
            self.shards[shard].unregister(name);
            self.overrides.lock().unwrap().remove(name);
        }
        known
    }

    /// The shard currently serving `name` (override-aware).
    pub fn shard_of(&self, name: &str) -> usize {
        self.shard_of_inner(name)
    }

    fn shard_of_inner(&self, name: &str) -> usize {
        if let Some(&shard) = self.overrides.lock().unwrap().get(name) {
            return shard;
        }
        self.ring.place(name)
    }

    /// The placement ring (for inspection and the placement tests).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Registered selector names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.specs.lock().unwrap().keys().cloned().collect()
    }

    /// Migrates a selector to `target` under live traffic, with the
    /// exactly-v1-or-exactly-v2 guarantee: the selector is installed on
    /// the target *before* the placement flip (both shards briefly serve
    /// identical registrations), and the source drains its already-queued
    /// requests before unregistering — at no point can a request observe
    /// a half-migrated state.
    ///
    /// # Errors
    /// `NotFound` for an unknown selector; `InvalidInput` for an
    /// out-of-range target; install errors from the target shard. A
    /// drain that outlives [`RouterConfig::deadline`] reports `TimedOut`
    /// (the flip has already happened; only the source-side unregister is
    /// left pending, and a respawn or re-migration clears it).
    pub fn migrate(&self, name: &str, target: usize) -> std::io::Result<()> {
        if target >= self.shards.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "target shard {target} out of range (tier has {})",
                    self.shards.len()
                ),
            ));
        }
        let Some(spec) = self.specs.lock().unwrap().get(name).cloned() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("selector {name:?} is not registered"),
            ));
        };
        let source = self.shard_of_inner(name);
        if source == target {
            return Ok(());
        }
        // 1. Install on the target first: from here on both shards can
        //    serve the selector, identically (deterministic scoring +
        //    bitwise store round-trip).
        self.shards[target].register(name, spec)?;
        // 2. Flip placement: new submits route to the target.
        self.overrides
            .lock()
            .unwrap()
            .insert(name.to_string(), target);
        // 3. Drain the source: its queue is FIFO, so once an empty-batch
        //    barrier request submitted *after* the flip completes, every
        //    request enqueued before the flip has been served. An
        //    empty batch is free (no windows to score) and cannot change
        //    any counter callers observe.
        let barrier = SelectRequest::new(name, Vec::new());
        // kdlint: allow(wallclock): drain deadline — bounds how long the
        // migration waits, never what any request computes.
        let deadline = Instant::now() + self.config.deadline;
        loop {
            let queue = self.shards[source].queue();
            match queue.submit(barrier.clone()) {
                Ok(ticket) => {
                    // kdlint: allow(wallclock): remaining drain budget.
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    match ticket.wait_for(remaining) {
                        Ok(_) => break,
                        // kdlint: allow(wallclock): deadline check only.
                        Err(_) if Instant::now() >= deadline => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                "source shard did not drain within the deadline",
                            ));
                        }
                        Err(_) => unreachable!("wait_for only times out at the deadline"),
                    }
                }
                // The source worker died or is shutting down: its backlog
                // transplant (respawn) preserves FIFO order, so retry the
                // barrier against the replacement queue.
                Err(ServeError::WorkerDied | ServeError::ShuttingDown) => {
                    // kdlint: allow(wallclock): deadline check only.
                    if Instant::now() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "source shard did not come back within the deadline",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(ServeError::Overloaded { .. } | ServeError::Rejected) => {
                    // kdlint: allow(wallclock): deadline check only.
                    if Instant::now() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "source shard stayed overloaded past the deadline",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(other) => {
                    return Err(std::io::Error::other(format!(
                        "barrier submit failed: {other}"
                    )));
                }
            }
        }
        // 4. Retire the source registration (spec stays in the tier map;
        //    the shard-local copy is gone so respawns don't resurrect it).
        self.shards[source].unregister(name);
        Ok(())
    }

    /// Routes a request with the default deadline.
    pub fn route(&self, request: &SelectRequest) -> Result<RouteReply, RouteError> {
        self.route_with(request, RouteOptions::default())
    }

    /// Routes a request: resolves placement, submits to the owning
    /// shard's queue, and applies the full lifecycle policy (deadline,
    /// retries with deterministic backoff, circuit breaker, degraded
    /// fallback). Never hangs: every internal wait is bounded by the
    /// deadline.
    pub fn route_with(
        &self,
        request: &SelectRequest,
        opts: RouteOptions,
    ) -> Result<RouteReply, RouteError> {
        kdprof::span!(kdprof::Phase::Route);
        kdprof::incr(kdprof::Counter::RouteHops, 1);
        if self.shutdown.load(Ordering::Acquire) {
            return Err(RouteError::ShuttingDown);
        }
        // Authoritative existence check: unknown names fail fast and
        // typed, without burning retries against every shard.
        if !self.specs.lock().unwrap().contains_key(&request.selector) {
            // kdlint: allow(relaxed): stat counter — snapshot-only.
            self.failed.fetch_add(1, Ordering::Relaxed);
            return Err(RouteError::UnknownSelector(request.selector.clone()));
        }
        // kdlint: allow(relaxed): stat counter — snapshot-only.
        self.routed.fetch_add(1, Ordering::Relaxed);
        // kdlint: allow(wallclock): request deadline — bounds waiting and
        // retry policy; the selections themselves never read the clock.
        let deadline = Instant::now() + opts.deadline.unwrap_or(self.config.deadline);

        // Breaker gate. The breaker is keyed on the *current* placement so
        // a migrated selector starts with a clean breaker on its new
        // shard.
        let shard = self.shard_of_inner(&request.selector);
        let verdict = self
            .breakers
            .lock()
            .unwrap()
            .entry((shard, request.selector.clone()))
            .or_insert_with(|| Breaker::new(self.config.breaker))
            .admit();
        if verdict == BreakerVerdict::Shed {
            return self.degrade(request, 0).map_err(|err| {
                // kdlint: allow(relaxed): stat counter — snapshot-only.
                self.failed.fetch_add(1, Ordering::Relaxed);
                match err {
                    DegradeFailure::NoFallback => RouteError::BreakerOpen,
                    DegradeFailure::FallbackPanicked(msg) => RouteError::FallbackFailed(msg),
                }
            });
        }

        let mut attempts = 0u32;
        let mut last_err = ServeError::ShuttingDown;
        while attempts < self.config.retry.max_attempts() {
            attempts += 1;
            if attempts > 1 {
                // kdlint: allow(relaxed): stat counter — snapshot-only.
                self.retries.fetch_add(1, Ordering::Relaxed);
                let backoff =
                    self.config
                        .retry
                        .backoff(self.config.seed, &request.selector, attempts - 1);
                // kdlint: allow(wallclock): remaining retry budget.
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                std::thread::sleep(backoff.min(remaining));
            }
            // kdlint: allow(wallclock): remaining retry budget.
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            // Re-resolve placement every attempt: a migration or respawn
            // between attempts re-routes the retry to the live owner.
            let shard = self.shard_of_inner(&request.selector);
            let queue = self.shards[shard].queue();
            let ticket = match queue.submit(request.clone()) {
                Ok(ticket) => ticket,
                Err(
                    err @ (ServeError::Overloaded { .. }
                    | ServeError::Rejected
                    | ServeError::WorkerDied
                    | ServeError::ShuttingDown),
                ) => {
                    // Transient: backpressure, injected rejection, or a
                    // dead/retiring worker the supervisor is replacing.
                    last_err = err;
                    continue;
                }
                Err(err) => {
                    last_err = err;
                    break;
                }
            };
            // kdlint: allow(wallclock): remaining wait budget.
            let remaining = deadline.saturating_duration_since(Instant::now());
            match ticket.wait_for(remaining) {
                Ok(Ok(selections)) => {
                    self.breaker_outcome(shard, &request.selector, true);
                    return Ok(RouteReply {
                        selections,
                        shard: Some(shard),
                        attempts,
                        degraded: false,
                    });
                }
                Ok(Err(err)) => {
                    match &err {
                        // Service failures count against the breaker.
                        ServeError::Panicked(_)
                        | ServeError::WorkerDied
                        | ServeError::MalformedOutput { .. } => {
                            self.breaker_outcome(shard, &request.selector, false);
                        }
                        // Shard-local UnknownSelector is transient: the
                        // respawn re-registration or a migration flip may
                        // not have landed yet (the tier-level map already
                        // vouched for the name).
                        ServeError::UnknownSelector(_) => {}
                        _ => {}
                    }
                    last_err = err;
                    continue;
                }
                Err(_abandoned) => {
                    // Deadline expired waiting on a live ticket — the
                    // shard is stalled past the budget. Count it against
                    // the breaker and degrade; the abandoned ticket's
                    // response is discarded when (if) it lands.
                    self.breaker_outcome(shard, &request.selector, false);
                    return self.degrade(request, attempts).map_err(|err| {
                        // kdlint: allow(relaxed): stat counter — snapshot-only.
                        self.failed.fetch_add(1, Ordering::Relaxed);
                        match err {
                            DegradeFailure::NoFallback => RouteError::DeadlineExceeded { attempts },
                            DegradeFailure::FallbackPanicked(msg) => {
                                RouteError::FallbackFailed(msg)
                            }
                        }
                    });
                }
            }
        }
        self.degrade_or_fail(request, attempts, last_err, deadline)
    }

    fn breaker_outcome(&self, shard: usize, selector: &str, success: bool) {
        let mut breakers = self.breakers.lock().unwrap();
        let breaker = breakers
            .entry((shard, selector.to_string()))
            .or_insert_with(|| Breaker::new(self.config.breaker));
        if success {
            breaker.on_success();
        } else {
            breaker.on_failure();
        }
    }

    fn degrade_or_fail(
        &self,
        request: &SelectRequest,
        attempts: u32,
        last: ServeError,
        // kdlint: allow(wallclock): deadline handoff for error typing.
        deadline: Instant,
    ) -> Result<RouteReply, RouteError> {
        self.degrade(request, attempts).map_err(|err| {
            // kdlint: allow(relaxed): stat counter — snapshot-only.
            self.failed.fetch_add(1, Ordering::Relaxed);
            match err {
                DegradeFailure::FallbackPanicked(msg) => RouteError::FallbackFailed(msg),
                DegradeFailure::NoFallback => {
                    // kdlint: allow(wallclock): picks the error type
                    // (deadline vs exhausted); the reply data is fixed.
                    if Instant::now() >= deadline {
                        RouteError::DeadlineExceeded { attempts }
                    } else {
                        RouteError::Exhausted { attempts, last }
                    }
                }
            }
        })
    }

    /// Serves `request` through the fallback selector inline, marking
    /// every selection degraded. The caller maps a [`DegradeFailure`] to
    /// the route error fitting its context.
    fn degrade(
        &self,
        request: &SelectRequest,
        attempts: u32,
    ) -> Result<RouteReply, DegradeFailure> {
        let Some(fallback) = self.fallback.lock().unwrap().clone() else {
            return Err(DegradeFailure::NoFallback);
        };
        let refs: Vec<&tsdata::TimeSeries> = request.batch.iter().collect();
        let scored = catch_unwind(AssertUnwindSafe(|| fallback.window_scores_refs(&refs)));
        match scored {
            Ok(scores) => {
                // kdlint: allow(relaxed): stat counter — snapshot-only.
                self.degraded.fetch_add(1, Ordering::Relaxed);
                Ok(RouteReply {
                    selections: scores
                        .iter()
                        .map(|s| Selection::from_scores(s).into_degraded())
                        .collect(),
                    shard: None,
                    attempts,
                    degraded: true,
                })
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "fallback panicked".into());
                Err(DegradeFailure::FallbackPanicked(msg))
            }
        }
    }

    /// Cross-shard statistics and per-shard health.
    pub fn stats(&self) -> RouterStats {
        let breakers = self.breakers.lock().unwrap();
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let queue = shard.queue();
                let generation = shard.generation();
                ShardHealth {
                    shard: i,
                    alive: shard.is_alive(),
                    depth: queue.depth(),
                    generation,
                    respawns: generation,
                    queue: shard.stats(),
                    selectors: shard.selector_names(),
                    breakers_open: breakers
                        .iter()
                        .filter(|((s, _), b)| *s == i && b.is_open())
                        .count(),
                }
            })
            .collect();
        RouterStats {
            // kdlint: allow(relaxed): stat snapshot — approximate reads;
            // exact-value tests quiesce the tier first.
            routed: self.routed.load(Ordering::Relaxed),
            // kdlint: allow(relaxed): stat snapshot — see `routed`.
            degraded: self.degraded.load(Ordering::Relaxed),
            // kdlint: allow(relaxed): stat snapshot — see `routed`.
            failed: self.failed.load(Ordering::Relaxed),
            // kdlint: allow(relaxed): stat snapshot — see `routed`.
            retries: self.retries.load(Ordering::Relaxed),
            shards,
        }
    }

    /// Whether `name` is currently registered on shard `shard` (migration
    /// introspection for tests).
    pub fn shard_serves(&self, shard: usize, name: &str) -> bool {
        shard < self.shards.len() && self.shards[shard].has_selector(name)
    }

    /// Stops the supervisor and shuts every shard queue down (draining
    /// admitted requests). Idempotent; also run by `Drop`.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let supervisor = self.supervisor.lock().unwrap().take();
        if let Some(handle) = supervisor {
            // kdlint: allow(unbounded-wait): bounded by the supervisor's
            // probe interval — it re-checks the shutdown flag (and its
            // Weak upgrade) every tick, so the join ends within one tick.
            let _ = handle.join();
        }
        for shard in &self.shards {
            shard.queue().shutdown();
        }
    }
}

impl Drop for ShardedRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ShardedRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRouter")
            .field("shards", &self.shards.len())
            .field("selectors", &self.names())
            .field("shutdown", &self.shutdown.load(Ordering::Acquire))
            .finish()
    }
}

/// The supervision loop: probe every shard each interval; respawn dead
/// workers immediately and wedged workers after
/// [`RouterConfig::wedge_checks`] consecutive stagnant probes. Holds only
/// a `Weak` on the router so shutdown (or the last `Arc` dropping) ends
/// it.
fn supervisor_loop(router: Weak<ShardedRouter>) {
    let (interval, wedge_checks, n_shards) = match router.upgrade() {
        Some(r) => (
            r.config.supervise_every,
            r.config.wedge_checks,
            r.shards.len(),
        ),
        None => return,
    };
    let mut prev_beats = vec![0u64; n_shards];
    let mut stagnant = vec![0u32; n_shards];
    loop {
        std::thread::sleep(interval);
        let Some(router) = router.upgrade() else {
            return;
        };
        if router.shutdown.load(Ordering::Acquire) {
            return;
        }
        for (i, shard) in router.shards.iter().enumerate() {
            if !shard.is_alive() {
                shard.respawn();
                stagnant[i] = 0;
                prev_beats[i] = 0;
                continue;
            }
            let (beats, has_work, _depth) = shard.probe();
            if has_work && beats == prev_beats[i] {
                stagnant[i] += 1;
                if stagnant[i] >= wedge_checks {
                    shard.respawn();
                    stagnant[i] = 0;
                    prev_beats[i] = 0;
                    continue;
                }
            } else {
                stagnant[i] = 0;
            }
            prev_beats[i] = beats;
        }
        // `router` (the strong ref) drops here, so shutdown's join can't
        // deadlock against a supervisor holding the last Arc.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_places_deterministically_and_in_range() {
        let ring = HashRing::new(4, 64);
        for i in 0..100 {
            let name = format!("selector-{i}");
            let a = ring.place(&name);
            assert!(a < 4);
            assert_eq!(a, ring.place(&name), "placement is a pure function");
        }
    }

    #[test]
    fn ring_spreads_names_over_all_shards() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0usize; 4];
        for i in 0..200 {
            counts[ring.place(&format!("sel-{i}"))] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "200 names must touch every one of 4 shards: {counts:?}"
        );
    }

    #[test]
    fn degenerate_ring_sizes_are_clamped() {
        let ring = HashRing::new(0, 0);
        assert_eq!(ring.shards(), 1);
        assert_eq!(ring.place("anything"), 0);
    }
}
